"""Coordinator-side cluster transport: peers, dispatch, crash re-issue.

One :class:`ClusterTransport` owns the coordinator's connections to every
cluster worker — remote processes reached by ``host:port`` address, or
local ``cluster-worker`` processes it spawns itself (the ``workers=N``
form).  It mirrors the process pool's failure contract
(:class:`repro.parallel.pool.ShardWorkerPool`): results are matched by
task id so duplicate replies are dropped, a dead peer's in-flight tasks
are re-issued — to a respawned local worker while the respawn budget
lasts, otherwise to any surviving peer — and a round that cannot complete
raises :class:`~repro.errors.ClusterError` naming the outstanding work.

Re-issue is always *correct* here because shard ownership is logical, not
physical: every peer can hold every store (the coordinator ships missing
stores on demand, and a worker answering ``missing`` triggers exactly that
re-ship + retry), so any survivor can run any shard's task.  A re-issued
``resume`` task falls back to its original full task — the dead peer's
parked remainder died with it — and the engine's per-shard candidate
de-duplication absorbs the overlap.

Every frame in and out is counted per peer; the engine turns snapshots of
those counters into the per-query ``bytes_sent``/``bytes_received`` the
bench gates compare against the BSP simulator's message volume.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.frames import read_frame, write_frame
from repro.core.deadline import active_deadline
from repro.errors import ClusterError, StaleShardError, error_from_wire

__all__ = ["ClusterPeer", "ClusterTransport", "spawn_local_worker"]

#: Seconds granted to a spawned worker to print its listen address.
_SPAWN_TIMEOUT = 30.0

#: Hard ceiling on reading one frame after the selector reported the
#: socket readable — a peer that stalls mid-frame this long is dead.
_FRAME_READ_TIMEOUT = 30.0


def _remaining_budget() -> Optional[float]:
    """Seconds left on the coordinator's active query deadline, or None.

    Shipped with every task frame as a *relative* budget: absolute
    monotonic timestamps are meaningless on another machine, so the worker
    re-anchors the budget against its own clock on receipt (the one-way
    frame latency is the scheme's slack, spent in the query's favor).
    """
    deadline_at = active_deadline()
    if deadline_at is None:
        return None
    return max(0.0, deadline_at - time.monotonic())


class ClusterPeer:
    """One worker connection: socket, shipped-store set, byte counters."""

    def __init__(
        self,
        ident: int,
        host: str,
        port: int,
        *,
        proc: Optional[subprocess.Popen] = None,
    ) -> None:
        self.ident = ident
        self.host = host
        self.port = port
        self.proc = proc
        self.sock: Optional[socket.socket] = None
        self.alive = False
        self.shipped: set = set()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def spawned(self) -> bool:
        return self.proc is not None

    def connect(self, timeout: float) -> None:
        self.sock = socket.create_connection((self.host, self.port), timeout)
        self.sock.settimeout(None)
        self.alive = True

    def send(self, header: dict, arrays: Optional[dict] = None) -> None:
        assert self.sock is not None
        try:
            nbytes = write_frame(self.sock, header, arrays)
        except (OSError, ValueError):
            self.alive = False
            raise ConnectionError(f"peer {self.address} is gone") from None
        self.bytes_sent += nbytes
        self.frames_sent += 1

    def recv(self, timeout: float = _FRAME_READ_TIMEOUT) -> Tuple[dict, dict]:
        assert self.sock is not None
        try:
            self.sock.settimeout(timeout)
            header, arrays, nbytes = read_frame(self.sock)
            self.sock.settimeout(None)
        except (OSError, ConnectionError, ValueError):
            self.alive = False
            raise ConnectionError(f"peer {self.address} is gone") from None
        self.bytes_received += nbytes
        self.frames_received += 1
        return header, arrays

    def request(self, header: dict, arrays: Optional[dict] = None) -> Tuple[dict, dict]:
        """Synchronous request/reply exchange (between rounds only)."""
        self.send(header, arrays)
        return self.recv()

    def close(self, *, shutdown: bool = True) -> None:
        if self.sock is not None:
            if shutdown and self.alive:
                try:
                    write_frame(self.sock, {"type": "shutdown"})
                except Exception:
                    pass
            try:
                self.sock.close()
            except Exception:  # pragma: no cover - teardown races
                pass
            self.sock = None
        self.alive = False
        if self.proc is not None:
            try:
                self.proc.wait(timeout=2.0)
            except Exception:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=2.0)
                except Exception:  # pragma: no cover - stuck child
                    self.proc.kill()
            if self.proc.stdout is not None:
                try:
                    self.proc.stdout.close()
                except Exception:  # pragma: no cover
                    pass


def _worker_env() -> dict:
    """A child environment where ``import repro`` resolves to this tree."""
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


def spawn_local_worker(
    ident: int, *, timeout: float = _SPAWN_TIMEOUT
) -> ClusterPeer:
    """Spawn ``cluster-worker`` on a free localhost port and connect to it."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "cluster-worker",
            "--listen",
            "127.0.0.1:0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=_worker_env(),
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + timeout
    address = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        text = line.decode("utf-8", "replace").strip()
        if text.startswith("listening on "):
            address = text[len("listening on ") :]
            break
    if address is None:
        proc.terminate()
        raise ClusterError("spawned cluster worker never reported its address")
    host, _, port = address.rpartition(":")
    peer = ClusterPeer(ident, host, int(port), proc=proc)
    peer.connect(timeout)
    return peer


class ClusterTransport:
    """The coordinator's peer set plus the round dispatch/re-issue loop."""

    def __init__(
        self,
        workers: Union[int, Sequence[str]],
        *,
        timeout: float = 120.0,
    ) -> None:
        if isinstance(workers, int):
            self._spawn_count = workers
            self._addresses: List[str] = []
        else:
            self._spawn_count = 0
            self._addresses = [str(a) for a in workers]
        self.timeout = timeout
        self.peers: List[ClusterPeer] = []
        self.started = False
        self.respawns = 0
        # Same budget rule as the process pool: each worker slot may be
        # respawned twice over the transport's lifetime before a crash is
        # treated as systematic and surfaced.
        self.respawn_budget = 2 * self._spawn_count
        self._next_ident = 0
        self._task_serial = 0
        self._abandoned: set = set()

    # ------------------------------------------------------------------
    @property
    def num_peers(self) -> int:
        """Configured peer count (valid before start)."""
        return self._spawn_count + len(self._addresses)

    @property
    def alive_peers(self) -> int:
        return sum(1 for peer in self.peers if peer.alive)

    def start(self) -> None:
        if self.started:
            return
        try:
            for address in self._addresses:
                host, _, port = address.rpartition(":")
                if not host or not port.isdigit():
                    raise ClusterError(
                        f"worker address must be host:port, got {address!r}"
                    )
                peer = ClusterPeer(self._next_ident, host, int(port))
                self._next_ident += 1
                peer.connect(self.timeout)
                self.peers.append(peer)
            for _ in range(self._spawn_count):
                self.peers.append(spawn_local_worker(self._next_ident))
                self._next_ident += 1
        except (OSError, ConnectionError) as exc:
            self.close()
            raise ClusterError(f"could not start cluster peers: {exc}") from None
        self.started = True

    def close(self) -> None:
        for peer in self.peers:
            peer.close()
        self.peers = []
        self.started = False

    def totals(self) -> Dict[str, int]:
        """Aggregate byte/frame counters over every connected peer."""
        out = {
            "bytes_sent": 0,
            "bytes_received": 0,
            "frames_sent": 0,
            "frames_received": 0,
        }
        for peer in self.peers:
            out["bytes_sent"] += peer.bytes_sent
            out["bytes_received"] += peer.bytes_received
            out["frames_sent"] += peer.frames_sent
            out["frames_received"] += peer.frames_received
        return out

    # ------------------------------------------------------------------
    # Store shipping
    # ------------------------------------------------------------------
    def ensure_stores(
        self,
        peer: ClusterPeer,
        names: Sequence[str],
        store_provider: Callable[[str], Tuple[dict, dict]],
    ) -> None:
        """Ship every store the peer lacks (puts are fire-and-forget)."""
        for name in names:
            if name in peer.shipped:
                continue
            header, arrays = store_provider(name)
            peer.send(header, arrays)
            peer.shipped.add(name)

    def drop_stores(self, names: Sequence[str]) -> None:
        """Best-effort delete of dead stores on every live peer."""
        names = [n for n in names if n]
        if not names:
            return
        for peer in self.peers:
            if not peer.alive:
                continue
            try:
                peer.send(
                    {
                        "type": "put",
                        "store": names[0],
                        "kind": "del",
                        "stores": list(names),
                    }
                )
            except ConnectionError:
                continue
            peer.shipped.difference_update(names)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: List[dict],
        store_provider: Callable[[str], Tuple[dict, dict]],
    ) -> List[Tuple[dict, dict]]:
        """Run one round of tasks; returns replies in task order.

        Each task dict carries ``task`` (the worker payload), ``ship``
        (theta/quota spec), optional ``arrays`` (e.g. a verify frontier),
        ``stores`` (names the task references, shipped on demand),
        ``peer`` (preferred peer index) and optional ``fallback`` (the
        full task to re-run when a ``resume`` cannot be served).
        """
        self.start()
        if not tasks:
            return []
        tasks = [dict(spec) for spec in tasks]
        deadline = time.monotonic() + self.timeout
        results: List[Optional[Tuple[dict, dict]]] = [None] * len(tasks)
        pending: Dict[str, int] = {}
        assignments: Dict[int, ClusterPeer] = {}
        undispatched = deque(range(len(tasks)))
        stale: Optional[StaleShardError] = None
        timed_out: Optional[BaseException] = None
        # Peers kill_peer already processed this round.  send/recv clear
        # ``peer.alive`` themselves before raising, so the alive flag can
        # NOT double as the "first kill" marker — only this set makes
        # kill_peer idempotent without losing the respawn.
        killed: set = set()

        def alive_peers() -> List[ClusterPeer]:
            return [p for p in self.peers if p.alive]

        def use_fallback(index: int) -> None:
            spec = tasks[index]
            if spec.get("fallback") is not None:
                tasks[index] = dict(spec, task=spec["fallback"], fallback=None)

        def kill_peer(dead: ClusterPeer) -> None:
            first = dead not in killed
            killed.add(dead)
            dead.alive = False
            for task_id, index in list(pending.items()):
                if assignments.get(index) is dead:
                    pending.pop(task_id, None)
                    self._abandoned.add(task_id)
                    # A parked remainder died with the peer: re-run the
                    # full task on whoever picks this up.
                    use_fallback(index)
                    undispatched.append(index)
            if first and dead.spawned and self.respawn_budget > 0:
                self.respawn_budget -= 1
                dead.close(shutdown=False)
                try:
                    replacement = spawn_local_worker(self._next_ident)
                except ClusterError:
                    return
                self._next_ident += 1
                self.respawns += 1
                slot = self.peers.index(dead)
                self.peers[slot] = replacement

        def dispatch(index: int, peer: ClusterPeer) -> None:
            spec = tasks[index]
            self._task_serial += 1
            task_id = f"t{index}.{self._task_serial}"
            self.ensure_stores(peer, spec.get("stores") or (), store_provider)
            frame = {
                "type": "task",
                "task_id": task_id,
                "task": spec["task"],
                "ship": spec.get("ship") or {},
            }
            budget = _remaining_budget()
            if budget is not None:
                frame["deadline"] = budget
            peer.send(frame, spec.get("arrays"))
            pending[task_id] = index
            assignments[index] = peer

        selector = selectors.DefaultSelector()
        try:
            while pending or undispatched:
                if time.monotonic() > deadline:
                    raise ClusterError(
                        f"cluster round timed out with "
                        f"{len(pending) + len(undispatched)} task(s) "
                        f"outstanding after {self.timeout:.1f}s"
                    )
                while undispatched:
                    index = undispatched[0]
                    pool = alive_peers()
                    if not pool:
                        raise ClusterError(
                            f"{len(undispatched)} task(s) outstanding and "
                            "no live cluster peer to issue them to"
                        )
                    hint = tasks[index].get("peer")
                    if (
                        hint is not None
                        and 0 <= hint < len(self.peers)
                        and self.peers[hint].alive
                    ):
                        peer = self.peers[hint]
                    else:
                        peer = pool[index % len(pool)]
                    try:
                        dispatch(index, peer)
                    except ConnectionError:
                        kill_peer(peer)
                        continue
                    undispatched.popleft()
                if not pending:
                    continue
                busy = {
                    peer
                    for index, peer in assignments.items()
                    if results[index] is None and peer.alive
                }
                watched = []
                for peer in busy:
                    if peer.sock is None:
                        continue
                    selector.register(peer.sock, selectors.EVENT_READ, peer)
                    watched.append(peer)
                if not watched:
                    # Every owing peer died while we weren't looking.
                    for index, peer in list(assignments.items()):
                        if results[index] is None:
                            kill_peer(peer)
                    continue
                try:
                    events = selector.select(timeout=0.25)
                finally:
                    for peer in watched:
                        try:
                            selector.unregister(peer.sock)
                        except (KeyError, ValueError):  # pragma: no cover
                            pass
                if not events:
                    # Idle tick: notice silently-dead spawned workers.
                    for peer in watched:
                        if (
                            peer.spawned
                            and peer.proc is not None
                            and peer.proc.poll() is not None
                        ):
                            kill_peer(peer)
                    continue
                for key, _mask in events:
                    peer = key.data
                    try:
                        header, arrays = peer.recv()
                    except ConnectionError:
                        kill_peer(peer)
                        continue
                    task_id = header.get("task_id")
                    if task_id in self._abandoned:
                        self._abandoned.discard(task_id)
                        continue
                    index = pending.pop(task_id, None)
                    if index is None:
                        continue  # duplicate reply from a re-issued task
                    status = header.get("status")
                    if status == "ok":
                        results[index] = (header, arrays)
                    elif status == "missing":
                        peer.shipped.difference_update(
                            header.get("stores") or ()
                        )
                        undispatched.append(index)
                    elif status == "resume_lost":
                        use_fallback(index)
                        undispatched.append(index)
                    elif status == "stale":
                        stale = StaleShardError(
                            header.get("message", "stale store")
                        )
                        for tid in list(pending):
                            self._abandoned.add(tid)
                        pending.clear()
                        undispatched.clear()
                    elif status == "deadline":
                        # A worker's local deadline scope fired mid-task:
                        # the whole query is over.  Abandon the round like
                        # a stale store and re-raise the worker's error —
                        # wire-coded, so the serving tier maps it to the
                        # same 504 an in-process timeout gets.
                        timed_out = error_from_wire(header.get("error") or {})
                        for tid in list(pending):
                            self._abandoned.add(tid)
                        pending.clear()
                        undispatched.clear()
                    else:
                        raise ClusterError(
                            "cluster worker error: "
                            + str(header.get("message"))
                            + "\n"
                            + str(header.get("traceback") or "")
                        )
                    if stale is not None or timed_out is not None:
                        break
                if stale is not None or timed_out is not None:
                    break
        finally:
            selector.close()
        if timed_out is not None:
            raise timed_out
        if stale is not None:
            raise stale
        assert all(result is not None for result in results)
        return [result for result in results if result is not None]
