"""Multi-machine execution over a dependency-free socket transport.

The paper closes with the plan to "partition large networks into
subnetworks and distribute them into multiple machines"; where
:mod:`repro.parallel` realized that on one machine's cores and
:mod:`repro.distributed` simulated the message passing, this package runs
it for real.  A :class:`~repro.cluster.engine.ClusterEngine` (the
coordinator) ships the bfs-partition shard plan to ``cluster-worker``
processes over length-prefixed JSON+binary frames
(:mod:`repro.cluster.frames`), the workers run the *same* partition-aware
numpy kernels as the parallel backend
(:data:`repro.parallel.worker._HANDLERS` — no kernel is duplicated), and
per-shard candidates merge through the same exact
:func:`~repro.parallel.merge.merge_shard_entries`.

Two communication optimizations keep bytes-on-wire below the naive
``num_shards * k`` candidate volume: per-round **θ-shipping** (workers
prune below the coordinator's current k-th bound before serializing) and
**ADiT-style adaptive per-peer k** (first-round quotas follow each shard's
score mass, with a resume protocol that retrieves parked remainders only
while they can still matter).  Exactness is never traded: θ only ever
tightens below the final threshold and the resume loop drains every
remainder whose bound could still beat it.

Selected with ``backend="cluster"`` anywhere a backend is accepted, or
with ``Network.cluster(workers=...)`` / ``serve --cluster``.  Workers are
either spawned locally (``workers=2``) or reached by address
(``workers=["host:port", ...]``).
"""

from repro.cluster.engine import DEFAULT_MIN_NODES, ClusterEngine
from repro.cluster.transport import ClusterTransport, spawn_local_worker
from repro.cluster.worker import ClusterWorker, cluster_worker_main

__all__ = [
    "DEFAULT_MIN_NODES",
    "ClusterEngine",
    "ClusterTransport",
    "ClusterWorker",
    "cluster_worker_main",
    "spawn_local_worker",
]
