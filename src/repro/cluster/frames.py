"""Length-prefixed JSON+binary frames — the cluster wire format.

One frame is::

    u32 total_length   (big-endian; everything after these 4 bytes)
    u32 header_length
    header_length bytes of UTF-8 JSON   (the frame header)
    concatenated raw array blobs        (described by header["arrays"])

The header is an arbitrary JSON object; numpy arrays ride as raw
C-contiguous blobs after it, described in order by
``header["arrays"] = [{"key", "dtype", "shape"}, ...]``.  That keeps the
transport dependency-free (no msgpack/pickle) while candidate entries ship
as flat ``int64`` node + ``float64`` value arrays — 16 bytes per entry,
which is what makes bytes-on-wire directly comparable to the BSP
simulator's per-candidate message counts.

Both blocking-socket helpers (coordinator side) and asyncio-stream helpers
(worker side) live here so the two ends can never disagree on the format.
All helpers return the frame's size in bytes alongside its content; the
transport layers accumulate those into the per-peer byte counters the
bench gates read.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Optional, Tuple

from repro.errors import ClusterError
from repro.faults import fault_frame

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "read_frame_async",
]

#: Refuse frames beyond this size — a corrupted length prefix must fail
#: fast instead of attempting a multi-GiB allocation.
MAX_FRAME_BYTES = 1 << 31

_U32 = struct.Struct(">I")


def encode_frame(header: dict, arrays: Optional[Dict[str, object]] = None) -> bytes:
    """Serialize one frame; ``arrays`` maps key -> numpy array."""
    header = dict(header)
    blobs = []
    descs = []
    if arrays:
        import numpy as np

        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            descs.append(
                {"key": key, "dtype": str(arr.dtype), "shape": list(arr.shape)}
            )
            blobs.append(arr.tobytes())
    if descs:
        header["arrays"] = descs
    raw_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
    body = b"".join([_U32.pack(len(raw_header)), raw_header] + blobs)
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(f"frame of {len(body)} bytes exceeds the frame limit")
    return _U32.pack(len(body)) + body


def decode_payload(body: bytes) -> Tuple[dict, Dict[str, object]]:
    """Decode a frame body (everything after the total-length prefix)."""
    if len(body) < 4:
        raise ClusterError("truncated frame: missing header length")
    (header_len,) = _U32.unpack_from(body, 0)
    if 4 + header_len > len(body):
        raise ClusterError("truncated frame: header exceeds body")
    try:
        header = json.loads(body[4 : 4 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterError(f"malformed frame header: {exc}") from None
    arrays: Dict[str, object] = {}
    descs = header.pop("arrays", None)
    if descs:
        import numpy as np

        offset = 4 + header_len
        for desc in descs:
            dtype = np.dtype(desc["dtype"])
            shape = tuple(desc["shape"])
            count = 1
            for dim in shape:
                count *= int(dim)
            nbytes = count * dtype.itemsize
            if offset + nbytes > len(body):
                raise ClusterError(
                    f"truncated frame: array {desc['key']!r} exceeds body"
                )
            arrays[desc["key"]] = np.frombuffer(
                body, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
            offset += nbytes
    return header, arrays


def _recv_exact(sock, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> Tuple[dict, Dict[str, object], int]:
    """Read one frame off a blocking socket -> (header, arrays, bytes)."""
    prefix = _recv_exact(sock, 4)
    (total,) = _U32.unpack(prefix)
    if total > MAX_FRAME_BYTES:
        raise ClusterError(f"incoming frame of {total} bytes exceeds the limit")
    body = _recv_exact(sock, total)
    # Body starts at the header-length word, so the JSON region begins at
    # offset 4 here (vs. 8 in a full frame).
    body = fault_frame("cluster.frame.recv", body, header_offset=4)
    header, arrays = decode_payload(body)
    return header, arrays, total + 4


def write_frame(
    sock, header: dict, arrays: Optional[Dict[str, object]] = None
) -> int:
    """Write one frame to a blocking socket; returns bytes sent."""
    frame = encode_frame(header, arrays)
    faulted = fault_frame("cluster.frame.send", frame)
    if len(faulted) < len(frame):
        # Injected mid-frame cut: ship the prefix, then fail exactly like
        # a connection that died under us — the receiver must never be
        # left waiting on bytes that will not come.
        try:
            sock.sendall(faulted)
        except OSError:
            pass
        raise ConnectionError("frame truncated mid-send (injected fault)")
    sock.sendall(faulted)
    return len(frame)


async def read_frame_async(reader) -> Tuple[dict, Dict[str, object], int]:
    """Read one frame off an asyncio StreamReader -> (header, arrays, bytes).

    Raises ``ConnectionError`` on a clean EOF at a frame boundary too, so
    the worker's serve loop has a single disconnect signal.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("peer disconnected") from exc
    (total,) = _U32.unpack(prefix)
    if total > MAX_FRAME_BYTES:
        raise ClusterError(f"incoming frame of {total} bytes exceeds the limit")
    try:
        body = await reader.readexactly(total)
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("peer disconnected mid-frame") from exc
    body = fault_frame("cluster.worker.frame.recv", body, header_offset=4)
    header, arrays = decode_payload(body)
    return header, arrays, total + 4
