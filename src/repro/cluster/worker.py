"""Worker-process side of the cluster backend.

A cluster worker is an asyncio stream server speaking the frame protocol of
:mod:`repro.cluster.frames`.  It holds a **store** — named arrays and CSR
views the coordinator shipped with ``put`` frames — and answers ``task``
frames by running the *same* partition-aware kernels as the in-process
parallel backend: task payloads are exactly the
:data:`repro.parallel.worker._HANDLERS` task dicts, with shared-memory
attachment metas replaced by ``{"store": name}`` references into the
worker-held store.  That reuse is what keeps cluster answers entry-for-entry
identical to the local backends: there is no second copy of any kernel.

What is new here is the **ship policy**.  Entry-producing tasks carry a
``ship`` spec — the coordinator's current k-th bound θ and this peer's
adaptive candidate quota — and the worker prunes its exact shard top-k
*before* serializing: entries strictly below θ are dropped (``>= θ`` ships,
so rank-k ties keep their node-id resolution), and beyond the quota the
remainder is parked in a resume cache with its best value reported as
``rest_bound``.  The coordinator resumes only the peers whose rest bound
can still beat the merged threshold, so bytes-on-wire track the candidates
that can actually matter rather than ``num_shards * k``.

Run one with ``python -m repro.cli cluster-worker --listen host:port``; the
process prints ``listening on <host>:<port>`` once bound (port 0 picks a
free port) so spawners can discover the address.
"""

from __future__ import annotations

import time
import traceback
from collections import OrderedDict
from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

from repro.cluster.frames import encode_frame, read_frame_async
from repro.core.deadline import deadline_scope
from repro.errors import (
    ClusterError,
    DeadlineExceededError,
    FaultInjectedError,
    StaleShardError,
)
from repro.faults import fault_point
from repro.graph.csr import CSRGraph

__all__ = ["ClusterWorker", "cluster_worker_main", "parse_listen"]

#: Parked remainders kept per worker (oldest dropped beyond this; a lost
#: remainder is answered with ``resume_lost`` and the coordinator re-runs
#: the original task instead).
_RESUME_CACHE_LIMIT = 64

_NEG_INF = float("-inf")


class _MissingStoreError(KeyError):
    """A task referenced a store this worker does not hold (yet)."""

    def __init__(self, names: List[str]) -> None:
        super().__init__(", ".join(names))
        self.names = names


class _CSRHolder:
    """A stored CSR view plus its graph-version stamp.

    The duck-type :data:`repro.parallel.worker._HANDLERS` expects from
    ``cache.csr(meta)``: an object exposing ``.csr``.  Freshness here is a
    version-stamp equality check against the version the task named —
    the cluster analogue of the shared-memory live stamp.
    """

    __slots__ = ("csr", "version")

    def __init__(self, csr: CSRGraph, version: int) -> None:
        self.csr = csr
        self.version = version


class _StoreCache:
    """Name-keyed store satisfying the parallel worker's cache duck-type."""

    def __init__(self) -> None:
        self._arrays: Dict[str, object] = {}
        self._csrs: Dict[str, _CSRHolder] = {}

    def put_array(self, name: str, arr) -> None:
        self._arrays[name] = arr

    def put_csr(self, name: str, holder: _CSRHolder) -> None:
        self._csrs[name] = holder

    def delete(self, names) -> None:
        for name in names:
            self._arrays.pop(name, None)
            self._csrs.pop(name, None)

    def names(self) -> List[str]:
        return sorted(list(self._arrays) + list(self._csrs))

    def array(self, meta: dict):
        name = meta["store"]
        try:
            return self._arrays[name]
        except KeyError:
            raise _MissingStoreError([name]) from None

    def csr(self, meta: dict) -> _CSRHolder:
        name = meta["store"]
        holder = self._csrs.get(name)
        if holder is None:
            raise _MissingStoreError([name])
        expected = meta.get("version")
        if expected is not None and holder.version != expected:
            raise StaleShardError(
                f"store {name!r} holds graph version {holder.version}, "
                f"task expects {expected}"
            )
        return holder


def _missing_stores_of(task: dict, cache: _StoreCache) -> List[str]:
    """Every store name the task references but the cache lacks."""
    missing = []

    def check(meta) -> None:
        if isinstance(meta, dict) and "store" in meta:
            name = meta["store"]
            if name not in cache._arrays and name not in cache._csrs:
                missing.append(name)

    for value in task.values():
        check(value)
        if isinstance(value, list):  # the batch route's scores_list
            for item in value:
                if isinstance(item, (list, tuple)) and item:
                    check(item[0])
    return missing


def _ship_entries(
    entries: List[Tuple[int, float]], ship: dict
) -> Tuple[List[Tuple[int, float]], List[Tuple[int, float]], float]:
    """Apply the θ/quota ship policy to one exact shard top-k list.

    Returns ``(shipped, remainder, rest_bound)``.  Entries with
    ``value >= θ`` survive the prune (ties at the final τ must ship so the
    merged accumulator can resolve them by node id); ``quota`` then splits
    survivors into the shipped prefix and the parked remainder, whose best
    value is the ``rest_bound`` the coordinator's resume loop tests.
    Entries are already sorted best-first, so prefix/suffix is exact.
    """
    if ship.get("mode", "threshold") == "all":
        return list(entries), [], _NEG_INF
    theta = float(ship.get("theta", _NEG_INF))
    kept = [pair for pair in entries if pair[1] >= theta]
    quota = ship.get("quota")
    if quota is None or int(quota) >= len(kept):
        return kept, [], _NEG_INF
    quota = int(quota)
    shipped, remainder = kept[:quota], kept[quota:]
    rest_bound = remainder[0][1] if remainder else _NEG_INF
    return shipped, remainder, rest_bound


def _entries_arrays(np, entries: List[Tuple[int, float]]) -> Dict[str, object]:
    nodes = np.asarray([pair[0] for pair in entries], dtype=np.int64)
    values = np.asarray([pair[1] for pair in entries], dtype=np.float64)
    return {"nodes": nodes, "values": values}


class ClusterWorker:
    """One worker's state: the store, the resume cache, message counters."""

    def __init__(self, ident: int = -1) -> None:
        import numpy as np

        self.np = np
        #: Spawner-assigned identity; fault plans match on it (``peer``
        #: labels) so a schedule can target one specific worker.
        self.ident = ident
        self.stores = _StoreCache()
        self.resume: "OrderedDict[str, List[Tuple[int, float]]]" = OrderedDict()
        self.counters = {
            "frames_received": 0,
            "frames_sent": 0,
            "bytes_received": 0,
            "bytes_sent": 0,
            "tasks": 0,
            "puts": 0,
            "candidates_total": 0,
            "candidates_shipped": 0,
        }
        self._shutdown = False

    # ------------------------------------------------------------------
    # Message handling (transport-independent, unit-testable)
    # ------------------------------------------------------------------
    def handle(
        self, header: dict, arrays: Dict[str, object]
    ) -> Optional[Tuple[dict, Dict[str, object]]]:
        """Process one frame; returns the reply frame or None (no reply)."""
        kind = header.get("type")
        if kind == "put":
            self._handle_put(header, arrays)
            return None
        if kind == "task":
            return self._handle_task(header, arrays)
        if kind == "hello":
            return {"type": "hello", "stores": self.stores.names()}, {}
        if kind == "stats":
            return {"type": "stats", "counters": dict(self.counters)}, {}
        if kind == "shutdown":
            self._shutdown = True
            return None
        return {"type": "error", "message": f"unknown frame type {kind!r}"}, {}

    def _handle_put(self, header: dict, arrays: Dict[str, object]) -> None:
        name = header["store"]
        self.counters["puts"] += 1
        store_kind = header.get("kind", "array")
        if store_kind == "del":
            self.stores.delete(header.get("stores") or [name])
        elif store_kind == "csr":
            csr = CSRGraph(
                indptr=arrays["indptr"],
                indices=arrays["indices"],
                weights=arrays.get("weights"),
                directed=bool(header.get("directed", False)),
            )
            self.stores.put_csr(
                name, _CSRHolder(csr, int(header.get("version", 0)))
            )
        else:
            self.stores.put_array(name, arrays["data"])

    def _handle_task(
        self, header: dict, arrays: Dict[str, object]
    ) -> Tuple[dict, Dict[str, object]]:
        from repro.parallel.worker import _HANDLERS

        task_id = header.get("task_id")
        ship = header.get("ship") or {}
        reply: dict = {"type": "result", "task_id": task_id}
        out_arrays: Dict[str, object] = {}
        self.counters["tasks"] += 1
        # The coordinator ships its *remaining* deadline budget in seconds
        # (absolute timestamps do not cross machines); the task runs under
        # a local deadline scope so the shared kernels' block-boundary
        # check_deadline() polls observe it (repro-check RC001).
        budget = header.get("deadline")
        scope = (
            deadline_scope(time.monotonic() + float(budget))
            if budget is not None
            else nullcontext()
        )
        try:
            with scope:
                task = header.get("task") or {}
                fault_point(
                    "cluster.worker.task",
                    peer=self.ident,
                    kind=task.get("kind"),
                )
                if task.get("kind") == "resume":
                    payload, out_arrays = self._run_resume(task, ship)
                else:
                    if "centers" in arrays:
                        task = dict(task, centers=arrays["centers"])
                    missing = _missing_stores_of(task, self.stores)
                    if missing:
                        raise _MissingStoreError(missing)
                    result = _HANDLERS[task["kind"]](self.np, self.stores, task)
                    payload, out_arrays = self._package(
                        task, result, ship, task_id
                    )
            reply["status"] = "ok"
            reply.update(payload)
        except DeadlineExceededError as exc:
            reply["status"] = "deadline"
            reply["error"] = exc.to_wire()
            out_arrays = {}
        except _MissingStoreError as exc:
            reply["status"] = "missing"
            reply["stores"] = exc.names
            out_arrays = {}
        except StaleShardError as exc:
            reply["status"] = "stale"
            reply["message"] = str(exc)
            out_arrays = {}
        except _ResumeLostError:
            reply["status"] = "resume_lost"
            out_arrays = {}
        except FaultInjectedError as exc:
            # An injected transient: typed as retryable, so the
            # coordinator re-issues (bounded) instead of failing the query.
            reply["status"] = "transient"
            reply["message"] = str(exc)
            out_arrays = {}
        except BaseException as exc:  # report, keep serving
            reply["status"] = "error"
            reply["message"] = f"{type(exc).__name__}: {exc}"
            reply["traceback"] = traceback.format_exc()
            out_arrays = {}
        return reply, out_arrays

    # ------------------------------------------------------------------
    def _park(self, key: str, remainder: List[Tuple[int, float]]) -> None:
        if not remainder:
            self.resume.pop(key, None)
            return
        self.resume[key] = remainder
        self.resume.move_to_end(key)
        while len(self.resume) > _RESUME_CACHE_LIMIT:
            self.resume.popitem(last=False)

    def _ship(
        self, entries: List[Tuple[int, float]], ship: dict, resume_key: str
    ) -> Tuple[dict, Dict[str, object]]:
        shipped, remainder, rest_bound = _ship_entries(entries, ship)
        self._park(resume_key, remainder)
        self.counters["candidates_total"] += len(entries)
        self.counters["candidates_shipped"] += len(shipped)
        payload = {
            "rest_bound": rest_bound,
            "resume": resume_key if remainder else None,
            "candidates_total": len(entries),
            "candidates_shipped": len(shipped),
        }
        return payload, _entries_arrays(self.np, shipped)

    def _run_resume(
        self, task: dict, ship: dict
    ) -> Tuple[dict, Dict[str, object]]:
        key = task.get("resume")
        remainder = self.resume.pop(key, None)
        if remainder is None:
            raise _ResumeLostError(key)
        payload, arrays = self._ship(remainder, ship, key)
        # The resumed total re-counts the parked entries; report only the
        # newly shipped ones as candidates so the coordinator's totals stay
        # one-count-per-candidate.
        payload["candidates_total"] = 0
        self.counters["candidates_total"] -= len(remainder)
        payload["counters"] = {
            "edges_scanned": 0,
            "nodes_visited": 0,
            "balls_expanded": 0,
            "nodes_evaluated": 0,
        }
        payload["evaluated"] = 0
        payload["pruned"] = 0
        return payload, arrays

    def _package(
        self, task: dict, result: dict, ship: dict, task_id: str
    ) -> Tuple[dict, Dict[str, object]]:
        """Shape one handler result into a reply (ship policy applied)."""
        kind = task["kind"]
        if kind in ("scan", "weighted"):
            payload, arrays = self._ship(result["entries"], ship, task_id)
            payload["counters"] = result["counters"]
            payload["evaluated"] = result["evaluated"]
            payload["pruned"] = result["pruned"]
            return payload, arrays
        if kind == "verify":
            entries = [
                (int(node), float(value)) for node, value in result["pairs"]
            ]
            theta = float(ship.get("theta", _NEG_INF))
            if ship.get("mode", "threshold") == "all":
                shipped = entries
            else:
                shipped = [pair for pair in entries if pair[1] >= theta]
            self.counters["candidates_total"] += len(entries)
            self.counters["candidates_shipped"] += len(shipped)
            payload = {
                "counters": result["counters"],
                "candidates_total": len(entries),
                "candidates_shipped": len(shipped),
            }
            return payload, _entries_arrays(self.np, shipped)
        if kind == "distribute":
            payload = {
                "counters": result["counters"],
                "pushes": result["pushes"],
                "distributed": result["distributed"],
            }
            arrays = {
                "touched": result["touched"],
                "partial": result["partial"],
                "covered": result["covered"],
            }
            return payload, arrays
        if kind == "batch":
            arrays = {}
            for i, entries in enumerate(result["entries_list"]):
                per = _entries_arrays(self.np, entries)
                arrays[f"nodes_{i}"] = per["nodes"]
                arrays[f"values_{i}"] = per["values"]
                self.counters["candidates_total"] += len(entries)
                self.counters["candidates_shipped"] += len(entries)
            payload = {
                "counters": result["counters"],
                "num_queries": len(result["entries_list"]),
            }
            return payload, arrays
        raise ValueError(f"unhandled task kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Asyncio serving
    # ------------------------------------------------------------------
    async def serve_client(self, reader, writer) -> None:
        """Serve one coordinator connection until EOF or shutdown."""
        try:
            while not self._shutdown:
                try:
                    header, arrays, nbytes = await read_frame_async(reader)
                except ConnectionError:
                    break
                except ClusterError:
                    # Undecodable frame (truncated/corrupted on the wire):
                    # drop the connection — resynchronizing mid-stream is
                    # impossible — and let the coordinator's kill/re-issue
                    # machinery recover.
                    break
                self.counters["frames_received"] += 1
                self.counters["bytes_received"] += nbytes
                reply = self.handle(header, arrays)
                if reply is not None:
                    reply_header, reply_arrays = reply
                    frame = encode_frame(reply_header, reply_arrays)
                    writer.write(frame)
                    await writer.drain()
                    self.counters["frames_sent"] += 1
                    self.counters["bytes_sent"] += len(frame)
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown races
                pass


class _ResumeLostError(Exception):
    """A resume request named a remainder this worker no longer holds."""


def parse_listen(listen: str) -> Tuple[str, int]:
    """Split a ``host:port`` listen spec (port may be 0 for auto-pick)."""
    host, _, port = listen.rpartition(":")
    if not host or not port.isdigit():
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(
            f"listen address must be host:port, got {listen!r}"
        )
    return host, int(port)


def cluster_worker_main(listen: str = "127.0.0.1:0", ident: int = -1) -> None:
    """Entry point of the ``cluster-worker`` CLI command.

    Binds, prints ``listening on <host>:<port>`` (flushed, so a spawning
    coordinator can parse the chosen port), then serves until a
    ``shutdown`` frame arrives.  ``ident`` is the spawner-assigned peer
    identity; fault plans use it to target a specific worker.
    """
    import asyncio

    host, port = parse_listen(listen)
    worker = ClusterWorker(ident)

    async def main() -> None:
        server = await asyncio.start_server(worker.serve_client, host, port)
        bound = server.sockets[0].getsockname()
        print(f"listening on {bound[0]}:{bound[1]}", flush=True)
        async with server:
            while not worker._shutdown:
                await asyncio.sleep(0.05)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
