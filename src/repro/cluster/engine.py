"""The cluster backend's coordinator-side engine: stores, rounds, merge.

One :class:`ClusterEngine` lives on a
:class:`~repro.core.context.GraphContext` and drives remote
``cluster-worker`` processes through a :class:`~repro.cluster.transport.ClusterTransport`.
It is the wire-transport sibling of
:class:`~repro.parallel.engine.ParallelEngine` and deliberately mirrors its
structure — same shard plan, same worker task payloads, same
:func:`~repro.parallel.merge.merge_shard_entries` at the end — so answers
stay entry-for-entry identical to the local backends.  What replaces the
shared-memory exports is a **store registry**: the CSR view (``csr@v``),
its reversal (``rev@v``), and per-shard owned arrays (``owned{i}@v``) are
named with the graph version they were built from and shipped lazily to
each peer (the transport re-ships on a worker's ``missing`` answer).  A
graph mutation moves the version, which renames those stores — the delta
re-export: only the graph-derived stores re-ship, while score-vector and
bound stores (keyed by score identity, which any score mutation replaces)
stay valid on every peer.

On top of the parallel backend's routes, this engine adds the two
communication optimizations the round protocol exists for:

* **θ-shipping** — every entry-producing task carries the coordinator's
  current k-th bound θ; workers drop candidates strictly below θ before
  serializing (``>= θ`` ships so rank-k ties keep node-id resolution).
  θ starts at a sound seed (the k-th largest self score, when the
  aggregate makes F(v) >= f(v)) and only tightens, so a dropped candidate
  can never belong to the answer.
* **ADiT-style adaptive per-peer k** — each shard's first-round candidate
  quota is allocated from its share of the total score mass instead of a
  uniform ``k``.  Quotas never cost exactness: a shard whose parked
  remainder could still beat the merged k-th value (its ``rest_bound``)
  is resumed until no remainder can matter.

Every route snapshots the transport's byte counters around its rounds and
publishes measured ``bytes_sent``/``bytes_received``/candidate counts in
``stats.extra`` — the numbers the cluster bench compares against the BSP
simulator's predicted message volume.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.aggregates.functions import AggregateKind
from repro.cluster.transport import ClusterTransport
from repro.core.deadline import check_deadline
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import ClusterError, InvalidParameterError, StaleShardError
from repro.parallel.merge import merge_counters, merge_shard_entries
from repro.parallel.shards import ShardPlan, build_shard_plan

__all__ = ["DEFAULT_MIN_NODES", "ClusterEngine"]

#: Below this many nodes the engine declines and the query runs in-process:
#: a round of socket IPC costs strictly more than the pool's queue IPC, so
#: the parallel backend's floor is the right floor here too.
DEFAULT_MIN_NODES = 8192

#: Resident score-vector stores kept per engine (LRU beyond this).
_SCORE_STORE_LIMIT = 16

#: Resident static-bound stores kept per engine (LRU beyond this).
_BOUND_STORE_LIMIT = 8

#: Candidates verified per TA round of the sharded backward pipeline.
_VERIFY_ROUND = 256

#: Wire bytes per shipped candidate entry (int64 node + float64 value).
ENTRY_BYTES = 16

_NEG_INF = float("-inf")


def _close_transport(resources: dict) -> None:
    """Finalizer target: close the peer set without reviving the engine."""
    transport = resources.get("transport")
    if transport is not None:
        try:
            transport.close()
        except Exception:  # pragma: no cover - interpreter-shutdown races
            pass
    resources["transport"] = None


class _CommScope:
    """Per-query communication accounting over one transport."""

    def __init__(self, transport: ClusterTransport) -> None:
        self.transport = transport
        self.before = transport.totals()
        self.rounds = 0
        self.shipped = 0
        self.total = 0

    def ingest(self, header: dict) -> None:
        self.shipped += int(header.get("candidates_shipped", 0))
        self.total += int(header.get("candidates_total", 0))

    def finish(self, stats: QueryStats) -> Dict[str, float]:
        after = self.transport.totals()
        comm = {
            "comm_rounds": float(self.rounds),
            "bytes_sent": float(after["bytes_sent"] - self.before["bytes_sent"]),
            "bytes_received": float(
                after["bytes_received"] - self.before["bytes_received"]
            ),
            "candidates_shipped": float(self.shipped),
            "candidates_pruned": float(max(0, self.total - self.shipped)),
            "shipped_candidate_bytes": float(self.shipped * ENTRY_BYTES),
        }
        stats.extra.update(comm)
        return comm


class ClusterEngine:
    """Socket-cluster execution over one graph context (see module doc)."""

    def __init__(
        self,
        ctx,
        *,
        workers=2,
        shards: Optional[int] = None,
        min_nodes: int = DEFAULT_MIN_NODES,
        partitioner: str = "bfs",
        seed: int = 2010,
        timeout: float = 120.0,
        connect_timeout: float = 10.0,
        io_timeout: float = 30.0,
        hedge: bool = True,
        ship_policy: str = "threshold",
    ) -> None:
        if ship_policy not in ("threshold", "all"):
            raise InvalidParameterError(
                f"ship_policy must be 'threshold' or 'all', got {ship_policy!r}"
            )
        transport = ClusterTransport(
            workers,
            timeout=timeout,
            connect_timeout=connect_timeout,
            io_timeout=io_timeout,
            hedge=hedge,
        )
        if transport.num_peers < 1:
            raise InvalidParameterError("cluster needs at least one worker")
        self.ctx = ctx
        self.workers = transport.num_peers
        self.shards = int(shards) if shards is not None else transport.num_peers
        if self.shards < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {self.shards}")
        self.min_nodes = int(min_nodes)
        self.partitioner = partitioner
        self.seed = seed
        self.timeout = timeout
        self.ship_policy = ship_policy
        self._lock = threading.RLock()
        self._closed = False
        self._resources: dict = {"transport": transport}
        self._finalizer = weakref.finalize(
            self, _close_transport, self._resources
        )
        self._plan: Optional[ShardPlan] = None
        self._version: Optional[int] = None
        # name -> ("put" header, arrays): everything shippable to a peer.
        self._payloads: Dict[str, Tuple[dict, dict]] = {}
        self._csr_store: Optional[str] = None
        self._rev_store: Optional[str] = None
        self._owned_stores: List[str] = []
        self._score_stores: "OrderedDict[int, Tuple[object, str]]" = OrderedDict()
        self._bound_stores: "OrderedDict[Tuple, Tuple[object, str]]" = OrderedDict()
        # Stores evicted from the LRUs while a round's tasks are being
        # built may already be referenced by that round; their deletion is
        # deferred until the round returns (the cluster analogue of the
        # parallel engine's deferred unlink).
        self._deferred_drops: List[str] = []
        self._store_serial = 0
        self.queries_served = 0
        self.declined = 0
        self.stale_retries = 0
        #: Measured communication of the most recent cluster-run query.
        self.last_comm: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Lifecycle / stores
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _transport(self) -> ClusterTransport:
        transport = self._resources["transport"]
        if transport is None:
            raise ClusterError("cluster engine has been closed")
        return transport

    def _graph_version(self) -> int:
        return int(getattr(self.ctx.graph, "version", 0) or 0)

    def invalidate(self) -> None:
        """Force re-export of graph-derived stores on the next query."""
        with self._lock:
            self._version = None

    def close(self) -> None:
        """Shut every peer down and forget the store registry."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._payloads.clear()
            self._score_stores.clear()
            self._bound_stores.clear()
            self._deferred_drops = []
            self._finalizer()

    def _refresh(self) -> None:
        """(Re)build the shard plan and graph-derived stores if stale."""
        if self._closed:
            raise ClusterError("cluster engine has been closed")
        version = self._graph_version()
        if self._plan is not None and self._version == version:
            return
        old = [
            name
            for name in [self._csr_store, self._rev_store, *self._owned_stores]
            if name is not None
        ]
        csr = self.ctx.csr()
        self._plan = build_shard_plan(
            self.ctx.graph,
            self.shards,
            partitioner=self.partitioner,
            seed=self.seed,
        )
        self._csr_store = f"csr@{version}"
        arrays = {"indptr": csr.indptr, "indices": csr.indices}
        if csr.weights is not None:
            arrays["weights"] = csr.weights
        self._payloads[self._csr_store] = (
            {
                "type": "put",
                "store": self._csr_store,
                "kind": "csr",
                "version": version,
                "directed": bool(csr.directed),
            },
            arrays,
        )
        rev = self.ctx.rev_csr()
        self._rev_store = None
        if rev is not None:
            self._rev_store = f"rev@{version}"
            rev_arrays = {"indptr": rev.indptr, "indices": rev.indices}
            if rev.weights is not None:
                rev_arrays["weights"] = rev.weights
            self._payloads[self._rev_store] = (
                {
                    "type": "put",
                    "store": self._rev_store,
                    "kind": "csr",
                    "version": version,
                    "directed": bool(rev.directed),
                },
                rev_arrays,
            )
        self._owned_stores = []
        for shard, owned in enumerate(self._plan.owned):
            name = f"owned{shard}@{version}"
            self._payloads[name] = (
                {"type": "put", "store": name, "kind": "array"},
                {"data": owned},
            )
            self._owned_stores.append(name)
        # Delta re-export: only the graph-derived stores are renamed and
        # dropped; score/bound stores survive the version move.
        for name in old:
            self._payloads.pop(name, None)
        self._transport().drop_stores(old)
        self._version = version

    def shard_plan(self) -> ShardPlan:
        """The current shard ownership map (builds stores if needed)."""
        with self._lock:
            self._refresh()
            assert self._plan is not None
            return self._plan

    def _store_payload(self, name: str) -> Tuple[dict, dict]:
        payload = self._payloads.get(name)
        if payload is None:
            raise ClusterError(f"store {name!r} is no longer exported")
        return payload

    def _score_store(self, scores) -> str:
        """Register (or reuse) a score vector store; key is object identity.

        Identity is value identity here for the same reason as the
        parallel engine's score exports: the session replaces score
        vectors wholesale on mutation, and the strong reference kept in
        the LRU pins the id.
        """
        import numpy as np

        key = id(scores)
        hit = self._score_stores.get(key)
        if hit is not None:
            self._score_stores.move_to_end(key)
            return hit[1]
        values = scores.values() if hasattr(scores, "values") else list(scores)
        arr = np.asarray(values, dtype=np.float64)
        self._store_serial += 1
        name = f"scores{self._store_serial}"
        self._payloads[name] = (
            {"type": "put", "store": name, "kind": "array"},
            {"data": arr},
        )
        self._score_stores[key] = (scores, name)
        while len(self._score_stores) > _SCORE_STORE_LIMIT:
            _, (_vec, dropped) = self._score_stores.popitem(last=False)
            self._deferred_drops.append(dropped)
        return name

    def _bounds_store(
        self, scores, kind: AggregateKind, include_self: bool
    ) -> str:
        """Register per-node static upper bounds for the pruned forward scan."""
        import numpy as np

        from repro.core.vectorized import static_upper_bounds_array

        key = (id(scores), kind.value, include_self)
        hit = self._bound_stores.get(key)
        if hit is not None:
            self._bound_stores.move_to_end(key)
            return hit[1]
        values = scores.values() if hasattr(scores, "values") else list(scores)
        bounds = static_upper_bounds_array(
            np, values, self.ctx.size_index(), kind, include_self
        )
        self._store_serial += 1
        name = f"bounds{self._store_serial}"
        self._payloads[name] = (
            {"type": "put", "store": name, "kind": "array"},
            {"data": bounds},
        )
        self._bound_stores[key] = (scores, name)
        while len(self._bound_stores) > _BOUND_STORE_LIMIT:
            _, (_vec, dropped) = self._bound_stores.popitem(last=False)
            self._deferred_drops.append(dropped)
        return name

    def _flush_deferred_drops(self) -> None:
        if not self._deferred_drops:
            return
        names = self._deferred_drops
        self._deferred_drops = []
        for name in names:
            self._payloads.pop(name, None)
        self._transport().drop_stores(names)

    def _block_size(self, queries: int = 1) -> int:
        from repro.core.vectorized import resolve_block_size

        csr = self.ctx.csr()
        block = resolve_block_size(
            None, self.ctx.graph.num_nodes, int(csr.num_arcs)
        )
        if queries > 1:
            block = max(4, block // queries)
        return block

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------
    def _declines(
        self, *, force: bool = False, work_items: Optional[int] = None
    ) -> bool:
        """Whether this query should run in-process instead.

        Same rule as the parallel engine, against configured peers — the
        check must not spawn workers, so it never touches live sockets.
        """
        if force:
            return False
        if self.workers < 2:
            return True
        size = self.ctx.graph.num_nodes if work_items is None else work_items
        return size < self.min_nodes

    def _run_round(self, build_tasks) -> List[Tuple[dict, dict]]:
        """Build tasks against fresh stores and run them, retrying once on
        a stale-store answer (a graph mutation racing the round)."""
        for attempt in (0, 1):
            check_deadline()  # before committing a full round of socket IPC
            self._refresh()
            tasks = build_tasks()
            try:
                return self._transport().run(tasks, self._store_payload)
            except StaleShardError:
                self.stale_retries += 1
                self._version = None
                if attempt:
                    raise
            finally:
                self._flush_deferred_drops()
        raise AssertionError("unreachable")  # pragma: no cover

    def _base_stats(self, algorithm: str, spec, elapsed: float) -> QueryStats:
        stats = QueryStats(
            algorithm=algorithm,
            aggregate=spec.aggregate.value,
            backend="cluster",
            hops=spec.hops,
            k=spec.k,
            elapsed_sec=elapsed,
        )
        assert self._plan is not None
        stats.extra["shards"] = float(self._plan.num_shards)
        stats.extra["workers"] = float(self.workers)
        return stats

    def _folded_scores(self, np, scores, kind: AggregateKind):
        values = scores.values() if hasattr(scores, "values") else list(scores)
        arr = np.asarray(values, dtype=np.float64)
        if kind is AggregateKind.COUNT:
            arr = np.where(arr > 0.0, 1.0, 0.0)
        return arr

    def _theta_seed(self, np, folded, kind: AggregateKind, spec) -> float:
        """A sound initial k-th bound from self scores, when one exists.

        With ``include_self`` every h-hop ball contains its center, so
        ``F(v) >= f(v)`` whenever self contribution cannot be diluted:
        SUM over nonnegative scores, COUNT (the folded indicator is
        nonnegative by construction), and MAX unconditionally.  The k-th
        largest self score then lower-bounds the final k-th aggregate and
        workers may prune below it from round one.
        """
        if self.ship_policy != "threshold" or not spec.include_self:
            return _NEG_INF
        k = int(spec.k)
        n = int(folded.size)
        if k < 1 or n < k:
            return _NEG_INF
        if kind is AggregateKind.SUM:
            if float(folded.min()) < 0.0:
                return _NEG_INF
        elif kind not in (AggregateKind.COUNT, AggregateKind.MAX):
            return _NEG_INF
        return float(np.partition(folded, n - k)[n - k])

    def _quotas(self, np, folded) -> List[float]:
        """Each shard's share of the (clipped) total score mass, in [0, 1]."""
        assert self._plan is not None
        mass = [
            float(np.clip(folded[owned], 0.0, None).sum())
            for owned in self._plan.owned
        ]
        total = sum(mass)
        if total <= 0.0:
            return [1.0] * len(mass)
        return [m / total for m in mass]

    def _quota_for(self, share: float, k: int) -> Optional[int]:
        """ADiT-style adaptive quota: shard share of k, clamped to [1, k]."""
        if self.ship_policy != "threshold":
            return None
        return max(1, min(int(k), int(math.ceil(share * k))))

    # ------------------------------------------------------------------
    # The shared candidate-collection loop (scan + weighted routes)
    # ------------------------------------------------------------------
    def _collect_topk(
        self,
        np,
        k: int,
        make_task: Callable[[int], Tuple[dict, List[str], Optional[dict]]],
        theta0: float,
        shares: List[float],
        comm: _CommScope,
    ) -> Tuple[List[Tuple[int, float]], List[dict]]:
        """Round-1 fan-out plus the resume loop; returns (entries, headers).

        ``make_task(shard)`` builds the full worker task (with fresh store
        names — it is re-invoked on a stale retry) plus the store names it
        references and optional frame arrays.  Candidates are kept as
        per-shard ``node -> value`` dicts so a re-issued or resumed task's
        overlap de-duplicates, then merged exactly like every sharded
        route.
        """
        assert self._plan is not None
        num_shards = self._plan.num_shards
        per_shard: List[Dict[int, float]] = [dict() for _ in range(num_shards)]
        # shard -> (resume key, rest bound) while a remainder is parked.
        parked: List[Optional[Tuple[str, float]]] = [None] * num_shards
        headers: List[dict] = []
        theta = theta0

        def ingest(shard: int, header: dict, arrays: dict) -> None:
            nodes = arrays.get("nodes")
            if nodes is not None and len(nodes):
                shard_candidates = per_shard[shard]
                values = arrays["values"]
                for node, value in zip(nodes.tolist(), values.tolist()):
                    shard_candidates[int(node)] = float(value)
            comm.ingest(header)
            headers.append(header)
            key = header.get("resume")
            if key:
                parked[shard] = (key, float(header.get("rest_bound", _NEG_INF)))
            else:
                parked[shard] = None

        def build_first() -> List[dict]:
            tasks = []
            for shard in range(num_shards):
                task, stores, arrays = make_task(shard)
                tasks.append(
                    {
                        "peer": shard % self.workers,
                        "task": task,
                        "ship": {
                            "theta": float(theta),
                            "quota": self._quota_for(shares[shard], k),
                            "mode": self.ship_policy,
                        },
                        "stores": stores,
                        "arrays": arrays,
                        "fallback": None,
                    }
                )
            return tasks

        results = self._run_round(build_first)
        comm.rounds += 1
        for shard, (header, arrays) in enumerate(results):
            ingest(shard, header, arrays)

        while True:
            entries = merge_shard_entries(
                [list(candidates.items()) for candidates in per_shard], k
            )
            full = len(entries) >= k
            tau = entries[-1][1] if full else _NEG_INF
            pending = [
                shard
                for shard in range(num_shards)
                if parked[shard] is not None
                and (not full or parked[shard][1] >= tau)
            ]
            if not pending:
                return entries, headers
            theta = max(theta, tau)

            def build_resume() -> List[dict]:
                tasks = []
                for shard in pending:
                    assert parked[shard] is not None
                    key = parked[shard][0]
                    task, stores, arrays = make_task(shard)
                    tasks.append(
                        {
                            "peer": shard % self.workers,
                            "task": {"kind": "resume", "resume": key},
                            "ship": {
                                "theta": float(theta),
                                "quota": None,
                                "mode": self.ship_policy,
                            },
                            # Stores/arrays ride along so a lost remainder
                            # can fall back to re-running the full task on
                            # any peer.
                            "stores": stores,
                            "arrays": arrays,
                            "fallback": task,
                        }
                    )
                return tasks

            results = self._run_round(build_resume)
            comm.rounds += 1
            for position, shard in enumerate(pending):
                header, arrays = results[position]
                ingest(shard, header, arrays)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def execute_scan(
        self,
        scores,
        spec,
        algorithm: str,
        *,
        candidates: Optional[Sequence[int]] = None,
        force: bool = False,
    ) -> Optional[TopKResult]:
        """Sharded Base (``algorithm="base"``) or bound-pruned Forward scan."""
        import numpy as np

        if algorithm == "forward" and not spec.aggregate.lona_supported:
            # Same front-door mirror as the parallel engine: decline so
            # forward_topk raises the canonical InvalidParameterError.
            return None
        with self._lock:
            if self._declines(
                force=force,
                work_items=None if candidates is None else len(candidates),
            ):
                self.declined += 1
                return None
            start = time.perf_counter()
            self._refresh()
            assert self._plan is not None
            block = self._block_size()
            candidate_arr = (
                None
                if candidates is None
                else np.asarray(sorted(candidates), dtype=np.int64)
            )
            folded = self._folded_scores(np, scores, spec.aggregate)
            theta0 = self._theta_seed(np, folded, spec.aggregate, spec)
            shares = self._quotas(np, folded)
            comm = _CommScope(self._transport())
            parts = self._plan.partition.as_array()

            def make_task(shard: int):
                assert self._plan is not None
                scores_name = self._score_store(scores)
                stores = [
                    self._csr_store,
                    scores_name,
                    self._owned_stores[shard],
                ]
                bounds_meta = None
                if algorithm == "forward":
                    bounds_name = self._bounds_store(
                        scores, spec.aggregate, spec.include_self
                    )
                    bounds_meta = {"store": bounds_name}
                    stores.append(bounds_name)
                task = {
                    "kind": "scan",
                    "csr": {"store": self._csr_store, "version": self._version},
                    "scores": {"store": scores_name},
                    "owned": {"store": self._owned_stores[shard]},
                    "centers": None,
                    "aggregate": spec.aggregate.value,
                    "hops": int(spec.hops),
                    "include_self": bool(spec.include_self),
                    "k": int(spec.k),
                    "block": int(block),
                    "bounds": bounds_meta,
                }
                arrays = None
                if candidate_arr is not None:
                    assert parts is not None
                    arrays = {
                        "centers": candidate_arr[parts[candidate_arr] == shard]
                    }
                return task, stores, arrays

            entries, headers = self._collect_topk(
                np, int(spec.k), make_task, theta0, shares, comm
            )
            stats = self._base_stats(
                algorithm, spec, time.perf_counter() - start
            )
            merge_counters(
                stats, (h["counters"] for h in headers if "counters" in h)
            )
            stats.pruned_nodes = sum(h.get("pruned", 0) for h in headers)
            if candidate_arr is not None:
                stats.extra["candidates"] = float(candidate_arr.size)
            self.last_comm = comm.finish(stats)
            self.queries_served += 1
            return TopKResult(entries=entries, stats=stats)

    def execute_backward(
        self,
        scores,
        spec,
        *,
        gamma="auto",
        distribution_fraction: float = 0.1,
        exact_sizes: bool = False,
        force: bool = False,
    ) -> Optional[TopKResult]:
        """Sharded LONA-Backward over the wire: remote distribution, local
        Eq. 3 bounds, TA verification rounds with θ-filtered replies."""
        import numpy as np

        from repro.core.vectorized import (
            backward_distribution_split,
            backward_eq3_bounds,
        )

        kind = spec.aggregate
        if not kind.lona_supported:
            raise InvalidParameterError(
                f"LONA-Backward supports SUM/AVG/COUNT, not {kind.value}; "
                "use algorithm='base' for MAX/MIN"
            )
        with self._lock:
            if self._declines(force=force):
                self.declined += 1
                return None
            start = time.perf_counter()
            self._refresh()
            assert self._plan is not None
            n = self.ctx.graph.num_nodes
            scores_arr = self._folded_scores(np, scores, kind)
            eff_kind = (
                AggregateKind.SUM if kind is AggregateKind.COUNT else kind
            )
            is_avg = eff_kind is AggregateKind.AVG
            include_self = spec.include_self
            sizes = self.ctx.size_index(exact=exact_sizes)

            _distributed, effective_gamma, rest_bound = (
                backward_distribution_split(
                    np, scores_arr, gamma, distribution_fraction
                )
            )
            if rest_bound == 0.0 and (not is_avg or sizes.is_exact):
                # The exact-shortcut regime: answers are sequential partial
                # sums whose float additions must not be reassociated by a
                # sharded merge (see the parallel engine).  Decline.
                self.declined += 1
                return None
            block = self._block_size()
            comm = _CommScope(self._transport())

            # --- Phase 1: remote distribution (owned high scores out) ---
            def build_distribute() -> List[dict]:
                assert self._plan is not None
                dist_store = (
                    self._rev_store
                    if self._rev_store is not None
                    else self._csr_store
                )
                scores_name = self._score_store(scores)
                tasks = []
                for shard in range(self._plan.num_shards):
                    task = {
                        "kind": "distribute",
                        "csr": {"store": dist_store, "version": self._version},
                        "scores": {"store": scores_name},
                        "owned": {"store": self._owned_stores[shard]},
                        "aggregate": kind.value,
                        "gamma": float(effective_gamma),
                        "hops": int(spec.hops),
                        "include_self": bool(include_self),
                        "block": int(block),
                    }
                    tasks.append(
                        {
                            "peer": shard % self.workers,
                            "task": task,
                            "ship": {"mode": "all"},
                            "stores": [
                                dist_store,
                                scores_name,
                                self._owned_stores[shard],
                            ],
                            "arrays": None,
                            "fallback": None,
                        }
                    )
                return tasks

            results = self._run_round(build_distribute)
            comm.rounds += 1
            partial = np.zeros(n, dtype=np.float64)
            covered = np.zeros(n, dtype=np.int64)
            pushes = 0
            distributed_count = 0
            # Shard-order summation, exactly like the parallel merge, so
            # the reassociated float partials are bit-identical to it.
            for header, arrays in results:
                touched = arrays["touched"]
                partial[touched] += arrays["partial"]
                covered[touched] += arrays["covered"]
                pushes += int(header["pushes"])
                distributed_count += int(header["distributed"])

            stats = self._base_stats("backward", spec, 0.0)
            merge_counters(stats, (header["counters"] for header, _ in results))
            stats.distribution_pushes = pushes

            # --- Phase 2: Eq. 3 bounds locally over the merged state ---
            self_distributed = np.zeros(n, dtype=bool)
            if include_self:
                self_distributed = (scores_arr > 0.0) & (
                    scores_arr >= effective_gamma
                )
            bounds = backward_eq3_bounds(
                np,
                scores_arr,
                partial,
                covered,
                self_distributed,
                sizes,
                rest_bound,
                include_self=include_self,
                is_avg=is_avg,
            )
            stats.bound_evaluations = n
            order = np.lexsort((np.arange(n), -bounds))

            # --- Phase 3: TA rounds against owning shards, θ-filtered ---
            acc = TopKAccumulator(spec.k)
            offered = 0
            verify_rounds = 0
            idx = 0
            done = False
            while idx < n and not done:
                if acc.is_full and float(bounds[order[idx]]) <= acc.threshold:
                    stats.early_terminated = True
                    break
                hi = min(idx + _VERIFY_ROUND, n)
                frontier = order[idx:hi]
                if acc.is_full:
                    frontier = frontier[bounds[frontier] > acc.threshold]
                if frontier.size == 0:
                    stats.early_terminated = True
                    break
                theta = acc.threshold if acc.is_full else _NEG_INF
                exact = self._verify_frontier(
                    scores, spec, frontier, block, stats, theta, comm
                )
                verify_rounds += 1
                stats.candidates_verified += int(frontier.size)
                for v in order[idx:hi]:
                    node = int(v)
                    if acc.is_full and float(bounds[node]) <= acc.threshold:
                        stats.early_terminated = True
                        done = True
                        break
                    # θ-pruned candidates are absent from ``exact``: their
                    # value was below the threshold at round start, so the
                    # skipped offer could never have been accepted.
                    if node in exact:
                        acc.offer(node, exact[node])
                        offered += 1
                idx = hi
            stats.pruned_nodes = n - offered
            stats.extra["gamma"] = float(effective_gamma)
            stats.extra["distributed_nodes"] = float(distributed_count)
            stats.extra["rest_bound"] = float(rest_bound)
            stats.extra["exact_shortcut"] = 0.0  # shortcut shapes declined
            stats.extra["verify_rounds"] = float(verify_rounds)
            self.last_comm = comm.finish(stats)
            stats.elapsed_sec = time.perf_counter() - start
            self.queries_served += 1
            return TopKResult(entries=acc.entries(), stats=stats)

    def _verify_frontier(
        self,
        scores,
        spec,
        frontier,
        block: int,
        stats: QueryStats,
        theta: float,
        comm: _CommScope,
    ) -> Dict[int, float]:
        """Exact values of ``frontier`` candidates, from their owning shards.

        Workers ship only pairs with value >= θ (the accumulator's current
        k-th value), which is the backward pipeline's round-level
        threshold shipping.
        """
        assert self._plan is not None
        parts = self._plan.partition.as_array()
        assert parts is not None

        def build() -> List[dict]:
            assert self._plan is not None
            scores_name = self._score_store(scores)
            tasks = []
            for shard in range(self._plan.num_shards):
                mine = frontier[parts[frontier] == shard]
                if mine.size == 0:
                    continue
                task = {
                    "kind": "verify",
                    "csr": {"store": self._csr_store, "version": self._version},
                    "scores": {"store": scores_name},
                    "aggregate": spec.aggregate.value,
                    "hops": int(spec.hops),
                    "include_self": bool(spec.include_self),
                    "block": int(block),
                }
                tasks.append(
                    {
                        "peer": shard % self.workers,
                        "task": task,
                        "ship": {
                            "theta": float(theta),
                            "mode": self.ship_policy,
                        },
                        "stores": [self._csr_store, scores_name],
                        "arrays": {"centers": mine},
                        "fallback": None,
                    }
                )
            return tasks

        results = self._run_round(build)
        comm.rounds += 1
        exact: Dict[int, float] = {}
        for header, arrays in results:
            check_deadline()  # merge boundary: one poll per shard reply
            comm.ingest(header)
            merge_counters(stats, [header["counters"]])
            nodes = arrays.get("nodes")
            if nodes is not None and len(nodes):
                values = arrays["values"]
                for node, value in zip(nodes.tolist(), values.tolist()):
                    exact[int(node)] = float(value)
        return exact

    def execute_weighted(
        self, scores, spec, profile, *, force: bool = False
    ) -> Optional[TopKResult]:
        """Sharded distance-weighted SUM with θ/quota candidate shipping."""
        import numpy as np

        from repro.aggregates.weighted import inverse_distance, precompute_weights
        from repro.core.vectorized import _check_weighted_spec

        _check_weighted_spec(spec)
        with self._lock:
            if self._declines(force=force):
                self.declined += 1
                return None
            start = time.perf_counter()
            self._refresh()
            assert self._plan is not None
            weights = precompute_weights(
                profile if profile is not None else inverse_distance, spec.hops
            )
            block = self._block_size()
            folded = self._folded_scores(np, scores, AggregateKind.SUM)
            # No sound self-score seed for arbitrary decay profiles; θ
            # still tightens to the merged k-th value on resume rounds.
            shares = self._quotas(np, folded)
            comm = _CommScope(self._transport())

            def make_task(shard: int):
                assert self._plan is not None
                scores_name = self._score_store(scores)
                task = {
                    "kind": "weighted",
                    "csr": {"store": self._csr_store, "version": self._version},
                    "scores": {"store": scores_name},
                    "owned": {"store": self._owned_stores[shard]},
                    "weights": [float(w) for w in weights],
                    "hops": int(spec.hops),
                    "include_self": bool(spec.include_self),
                    "k": int(spec.k),
                    "block": int(block),
                }
                stores = [
                    self._csr_store,
                    scores_name,
                    self._owned_stores[shard],
                ]
                return task, stores, None

            entries, headers = self._collect_topk(
                np, int(spec.k), make_task, _NEG_INF, shares, comm
            )
            stats = self._base_stats(
                "weighted-base", spec, time.perf_counter() - start
            )
            merge_counters(
                stats, (h["counters"] for h in headers if "counters" in h)
            )
            self.last_comm = comm.finish(stats)
            self.queries_served += 1
            return TopKResult(entries=entries, stats=stats)

    def run_batch(
        self,
        batch: Sequence,
        *,
        hops: int,
        include_self: bool,
        force: bool = False,
    ) -> Optional[List[TopKResult]]:
        """Fused multi-query shared scan, one remote sub-scan per shard.

        Batch replies ship each query's full shard top-k (no θ: the
        merged threshold of one query says nothing about another's), so
        bytes scale with ``shards * sum(k_i)`` exactly as the simulator
        predicts for the naive policy.
        """
        import numpy as np

        with self._lock:
            if not batch or self._declines(force=force):
                self.declined += 1 if batch else 0
                return None
            start = time.perf_counter()
            self._refresh()
            assert self._plan is not None
            block = self._block_size(queries=len(batch))
            comm = _CommScope(self._transport())

            def build() -> List[dict]:
                assert self._plan is not None
                scores_list = [
                    [
                        {"store": self._score_store(entry.scores)},
                        entry.aggregate.value,
                    ]
                    for entry in batch
                ]
                ks = [int(entry.k) for entry in batch]
                tasks = []
                for shard in range(self._plan.num_shards):
                    task = {
                        "kind": "batch",
                        "csr": {"store": self._csr_store, "version": self._version},
                        "owned": {"store": self._owned_stores[shard]},
                        "scores_list": scores_list,
                        "ks": ks,
                        "hops": int(hops),
                        "include_self": bool(include_self),
                        "block": int(block),
                    }
                    stores = [self._csr_store, self._owned_stores[shard]]
                    stores.extend(meta["store"] for meta, _agg in scores_list)
                    tasks.append(
                        {
                            "peer": shard % self.workers,
                            "task": task,
                            "ship": {"mode": "all"},
                            "stores": stores,
                            "arrays": None,
                            "fallback": None,
                        }
                    )
                return tasks

            results = self._run_round(build)
            comm.rounds += 1
            elapsed = time.perf_counter() - start
            outputs: List[TopKResult] = []
            comm_stats: Optional[Dict[str, float]] = None
            for i, entry in enumerate(batch):
                check_deadline()  # merge boundary: one poll per batch entry
                shard_entries = []
                for _header, arrays in results:
                    nodes = arrays.get(f"nodes_{i}")
                    values = arrays.get(f"values_{i}")
                    if nodes is None or not len(nodes):
                        shard_entries.append([])
                        continue
                    shard_entries.append(
                        [
                            (int(node), float(value))
                            for node, value in zip(
                                nodes.tolist(), values.tolist()
                            )
                        ]
                    )
                entries = merge_shard_entries(shard_entries, entry.k)
                stats = QueryStats(
                    algorithm="batch-base",
                    aggregate=entry.aggregate.value,
                    backend="cluster",
                    hops=hops,
                    k=entry.k,
                    elapsed_sec=elapsed,
                    nodes_evaluated=self.ctx.graph.num_nodes,
                )
                merge_counters(stats, (header["counters"] for header, _ in results))
                stats.nodes_evaluated = self.ctx.graph.num_nodes
                stats.extra["batch_size"] = float(len(batch))
                stats.extra["shards"] = float(self._plan.num_shards)
                stats.extra["workers"] = float(self.workers)
                if comm_stats is None:
                    for header, _ in results:
                        comm.ingest(header)
                    comm_stats = comm.finish(stats)
                else:
                    stats.extra.update(comm_stats)
                outputs.append(TopKResult(entries=entries, stats=stats))
            self.last_comm = comm_stats
            self.queries_served += 1
            return outputs

    # ------------------------------------------------------------------
    def worker_stats(self) -> List[dict]:
        """Per-peer message counters (a ``stats`` round trip to each)."""
        with self._lock:
            transport = self._resources["transport"]
            out: List[dict] = []
            if transport is None or not transport.started:
                return out
            health = {
                board["peer"]: board
                for board in transport.health_snapshot()
            }
            for peer in transport.peers:
                entry = {"peer": peer.address, "alive": bool(peer.alive)}
                board = health.get(peer.ident)
                if board is not None:
                    entry["health"] = {
                        k: board[k]
                        for k in ("state", "failures", "successes", "trips")
                    }
                if peer.alive:
                    try:
                        header, _ = peer.request({"type": "stats"})
                        entry.update(header.get("counters") or {})
                    except ConnectionError:
                        entry["alive"] = False
                out.append(entry)
            return out

    def stats(self) -> dict:
        """Monitoring snapshot: peers, shards, stores, measured comm."""
        with self._lock:
            transport = self._resources["transport"]
            started = bool(transport is not None and transport.started)
            return {
                "workers": self.workers,
                "shards": self.shards,
                "min_nodes": self.min_nodes,
                "ship_policy": self.ship_policy,
                "closed": self._closed,
                "started": started,
                "alive_peers": transport.alive_peers if started else 0,
                "respawns": transport.respawns if transport is not None else 0,
                "hedges": transport.hedges if transport is not None else 0,
                "hedge_wins": transport.hedge_wins
                if transport is not None
                else 0,
                "transients": transport.transients
                if transport is not None
                else 0,
                "revivals": transport.revivals if transport is not None else 0,
                "health": transport.health_snapshot() if started else [],
                "queries_served": self.queries_served,
                "declined": self.declined,
                "stale_retries": self.stale_retries,
                "stores": len(self._payloads),
                "store_version": self._version,
                "comm": transport.totals()
                if started
                else {
                    "bytes_sent": 0,
                    "bytes_received": 0,
                    "frames_sent": 0,
                    "frames_received": 0,
                },
                "last_comm": dict(self.last_comm) if self.last_comm else None,
            }
