"""Numba-jitted flat-CSR hot loops — the compiled kernel tier.

Every kernel here is the fused, loop-level form of a numpy phase in
:mod:`repro.core.vectorized`: per-center stamp-array BFS instead of the
``block x num_nodes`` visited buffer, sequential accumulation over the
sorted ball members instead of ``bincount``/``reduceat``, and an arc-level
Eq. 1 prune loop instead of the slab gather + ``np.minimum.at``.  The
accumulation *order* is the load-bearing part: members are sorted ascending
and summed left-to-right, exactly the order ``np.bincount`` (pair order over
sorted ``(owner, member)``) and ``ufunc.reduceat`` (sequential within a
segment) use, so every aggregate is bit-identical to the numpy backend's —
ties break the same way and the parity suite can assert entry-for-entry
equality.

When numba is importable the kernels compile with ``@njit(cache=True)``
(fastmath stays off: compiled float arithmetic must be IEEE-identical to
the interpreted fallback) and the on-disk cache makes the compile cost a
once-per-machine event (see :mod:`repro.native.compile_cache`).  Without
numba the decorator is the identity and the same functions run as plain
Python over numpy arrays — semantically identical, just slow; the backend
registry only offers the tier when numba is present (or the
``REPRO_NATIVE_INTERPRETED`` escape hatch is set, which the parity tests
use to exercise these exact code paths on a numba-free machine).

Kernels take caller-owned scratch (``stamp``/``member_buf``/... sized to
the graph) so per-block calls allocate nothing; generations are handed in
by the caller so one stamp array serves a whole query.
"""

from __future__ import annotations

import os

NUMBA_IMPORTABLE = False
_njit_error = None
if not os.environ.get("REPRO_NATIVE_FORCE_INTERPRETED"):
    try:  # pragma: no cover - exercised only where numba is installed
        from numba import njit as _numba_njit

        NUMBA_IMPORTABLE = True
    except Exception as exc:  # pragma: no cover - import-time probe
        _njit_error = exc

if NUMBA_IMPORTABLE:  # pragma: no cover - compiled path
    def njit(*args, **kwargs):
        return _numba_njit(*args, **kwargs)
else:
    def njit(*args, **kwargs):
        """Identity decorator: kernels run as plain Python over numpy."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap

#: How the kernels in this process execute.
KERNEL_MODE = "compiled" if NUMBA_IMPORTABLE else "interpreted"

#: Aggregate kind codes (COUNT is folded to SUM by callers, exactly like
#: the numpy backend's ``_as_scores_array``).
KIND_SUM = 0
KIND_AVG = 1
KIND_MAX = 2
KIND_MIN = 3


@njit(cache=True)
def aggregate_blocks(
    indptr,
    indices,
    scores,
    centers,
    hops,
    include_self,
    kind_code,
    stamp,
    gen0,
    member_buf,
    values_out,
    sizes_out,
):
    """Hop-ball aggregate of every center, one stamp-BFS per center.

    Fills ``values_out[i]`` / ``sizes_out[i]`` for ``centers[i]`` and
    returns ``(edges_scanned, member_pairs)`` with the numpy kernels'
    counting convention (every expanded frontier node's full degree; pairs
    after the ``include_self`` filter).  Empty balls aggregate to 0.0 for
    every kind.  ``stamp`` must be < ``gen0`` everywhere; generation
    ``gen0 + i`` marks center i's ball, so one array serves many calls.
    """
    edges = 0
    pairs = 0
    for i in range(centers.shape[0]):
        gen = gen0 + i
        center = centers[i]
        stamp[center] = gen
        member_buf[0] = center
        tail = 1
        lo = 0
        for _level in range(hops):
            hi = tail
            if lo == hi:
                break
            for fp in range(lo, hi):
                u = member_buf[fp]
                row_hi = indptr[u + 1]
                edges += row_hi - indptr[u]
                for p in range(indptr[u], row_hi):
                    v = indices[p]
                    if stamp[v] != gen:
                        stamp[v] = gen
                        member_buf[tail] = v
                        tail += 1
            if tail == hi:
                break
            lo = hi
        ball = member_buf[:tail]
        ball.sort()
        count = 0
        total = 0.0
        if kind_code <= KIND_AVG:
            for j in range(tail):
                m = ball[j]
                if include_self or m != center:
                    total += scores[m]
                    count += 1
        elif kind_code == KIND_MAX:
            for j in range(tail):
                m = ball[j]
                if include_self or m != center:
                    s = scores[m]
                    if count == 0 or s > total:
                        total = s
                    count += 1
        else:
            for j in range(tail):
                m = ball[j]
                if include_self or m != center:
                    s = scores[m]
                    if count == 0 or s < total:
                        total = s
                    count += 1
        pairs += count
        sizes_out[i] = count
        if kind_code == KIND_AVG:
            values_out[i] = total / count if count > 0 else 0.0
        else:
            values_out[i] = total
    return edges, pairs


@njit(cache=True)
def distance_aggregate_blocks(
    indptr,
    indices,
    scores,
    weights,
    centers,
    hops,
    include_self,
    stamp,
    gen0,
    member_buf,
    dist_buf,
    scaled_buf,
    values_out,
    sizes_out,
):
    """Distance-weighted SUM of every center's ball (footnote 1's form).

    Each member contributes ``weights[dist] * scores[member]`` at its exact
    BFS hop distance (first visit = minimum level).  Contributions add in
    ascending-member order via the same ``member * span + dist`` scaled
    sort the numpy kernel uses, so sums are bit-identical to
    ``np.bincount(owners, weights[dists] * scores[members])``.
    """
    edges = 0
    pairs = 0
    span = hops + 2
    for i in range(centers.shape[0]):
        gen = gen0 + i
        center = centers[i]
        stamp[center] = gen
        member_buf[0] = center
        dist_buf[0] = 0
        tail = 1
        lo = 0
        depth = 0
        for _level in range(hops):
            hi = tail
            if lo == hi:
                break
            depth += 1
            for fp in range(lo, hi):
                u = member_buf[fp]
                row_hi = indptr[u + 1]
                edges += row_hi - indptr[u]
                for p in range(indptr[u], row_hi):
                    v = indices[p]
                    if stamp[v] != gen:
                        stamp[v] = gen
                        member_buf[tail] = v
                        dist_buf[tail] = depth
                        tail += 1
            if tail == hi:
                break
            lo = hi
        for j in range(tail):
            scaled_buf[j] = member_buf[j] * span + dist_buf[j]
        packed = scaled_buf[:tail]
        packed.sort()
        total = 0.0
        count = 0
        for j in range(tail):
            m = packed[j] // span
            d = packed[j] - m * span
            if include_self or m != center:
                total += weights[d] * scores[m]
                count += 1
        pairs += count
        values_out[i] = total
        sizes_out[i] = count
    return edges, pairs


@njit(cache=True)
def batch_aggregate_blocks(
    indptr,
    indices,
    matrix,
    avg_flags,
    centers,
    hops,
    include_self,
    stamp,
    gen0,
    member_buf,
    values_out,
):
    """Fused shared scan: one BFS per center, all query rows accumulated.

    ``matrix`` is the (queries x nodes) folded score matrix; ``values_out``
    is (queries x centers).  Per-cell accumulation runs over the sorted
    ball members left-to-right — the order ``np.add.reduceat`` uses within
    a segment — and AVG rows divide by ``max(ball_size, 1)``, matching
    :func:`repro.core.batch._shared_scan_numpy` bit for bit.
    """
    edges = 0
    pairs = 0
    q = matrix.shape[0]
    for i in range(centers.shape[0]):
        gen = gen0 + i
        center = centers[i]
        stamp[center] = gen
        member_buf[0] = center
        tail = 1
        lo = 0
        for _level in range(hops):
            hi = tail
            if lo == hi:
                break
            for fp in range(lo, hi):
                u = member_buf[fp]
                row_hi = indptr[u + 1]
                edges += row_hi - indptr[u]
                for p in range(indptr[u], row_hi):
                    v = indices[p]
                    if stamp[v] != gen:
                        stamp[v] = gen
                        member_buf[tail] = v
                        tail += 1
            if tail == hi:
                break
            lo = hi
        ball = member_buf[:tail]
        ball.sort()
        for qq in range(q):
            values_out[qq, i] = 0.0
        count = 0
        for j in range(tail):
            m = ball[j]
            if include_self or m != center:
                count += 1
                for qq in range(q):
                    values_out[qq, i] += matrix[qq, m]
        pairs += count
        denom = count if count > 0 else 1
        for qq in range(q):
            if avg_flags[qq]:
                values_out[qq, i] /= denom
    return edges, pairs


@njit(cache=True)
def forward_prune_block(
    indptr,
    indices,
    deltas,
    sources,
    source_sums,
    ubound_sum,
    evaluated,
    pruned,
    threshold,
    is_avg,
    inv_size,
    stamp,
    gen,
    touched_buf,
):
    """Eq. 1 differential pruning for one evaluated block, arc-level.

    For every source u with exact sum F(u), each open neighbor v's running
    minimum bound takes ``min(ubound_sum[v], F(u) + delta(v-u))``; touched
    nodes are then pruned where the effective (AVG-divided) bound cannot
    beat ``threshold``.  Pruning happens after *all* minimum updates — the
    same two-phase order as the numpy kernel's ``np.minimum.at`` +
    unique-candidates cut — so the final pruned set is identical.
    """
    bound_evals = 0
    tcount = 0
    for i in range(sources.shape[0]):
        u = sources[i]
        fu = source_sums[i]
        for p in range(indptr[u], indptr[u + 1]):
            v = indices[p]
            if evaluated[v] or pruned[v]:
                continue
            bound_evals += 1
            b = fu + deltas[p]
            if b < ubound_sum[v]:
                ubound_sum[v] = b
            if stamp[v] != gen:
                stamp[v] = gen
                touched_buf[tcount] = v
                tcount += 1
    pruned_count = 0
    for j in range(tcount):
        v = touched_buf[j]
        eff = ubound_sum[v] * inv_size[v] if is_avg else ubound_sum[v]
        if eff <= threshold:
            pruned[v] = True
            pruned_count += 1
    return bound_evals, pruned_count


#: Every jitted kernel, for warm-up and cache management.
ALL_KERNELS = (
    aggregate_blocks,
    distance_aggregate_blocks,
    batch_aggregate_blocks,
    forward_prune_block,
)
