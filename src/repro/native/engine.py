"""Route adapters for ``backend="native"`` — numpy's route table, compiled.

One function per executor route, mirroring :mod:`repro.core.vectorized`
argument-for-argument so the front doors (:func:`repro.core.base.base_topk`
and friends) dispatch here exactly like they dispatch to the numpy twins.
The division of labor per route follows where the profile says the python
orchestration cost lives:

* **base / weighted base / batch / exact values** — fully native: each
  candidate block is one kernel call (stamp-BFS + sorted-member
  aggregation), no per-block numpy temporaries at all.
* **forward** — the numpy skeleton (ordering, lazy bound cuts, offers)
  with native kernels for the two hot phases: ball evaluation and the
  Eq. 1 arc-level prune loop.
* **backward / weighted backward** — phases 1–2 (distribution + Eq. 3
  bounds) reuse the numpy code *verbatim*: their per-block ``bincount``
  accumulation order is part of the float contract (in the exact-shortcut
  regime the partials are the answers), so re-ordering it in a kernel
  would diverge in the last ulp.  Only phase 3 — TA verification, the
  numpy backend's known weak spot (one python-driven expansion per
  candidate) — is replaced with blocked native kernels, cut at the rising
  threshold like the weighted numpy kernel's blocked verification.

Every result reports ``backend="native"`` plus kernel provenance in
``stats.extra`` (``kernel``/``kernel_mode``/``jit_compile_sec``); jit
warm-up runs *before* the query timer starts so compile cost never lands
in ``elapsed_sec``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Union

from repro.aggregates.functions import AggregateKind
from repro.core.deadline import check_deadline
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph, batched_hop_balls, to_csr
from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.graph.traversal import TraversalCounter
from repro.native import kernels
from repro.native.compile_cache import ensure_warm

__all__ = [
    "base_topk_native",
    "forward_topk_native",
    "backward_topk_native",
    "weighted_base_topk_native",
    "weighted_backward_topk_native",
    "shared_scan_native",
    "iter_exact_values_native",
]

_KIND_CODES = {
    AggregateKind.SUM: kernels.KIND_SUM,
    AggregateKind.AVG: kernels.KIND_AVG,
    AggregateKind.MAX: kernels.KIND_MAX,
    AggregateKind.MIN: kernels.KIND_MIN,
}


class _Workspace:
    """Per-query kernel scratch: stamp array, member/dist buffers, gens."""

    __slots__ = ("stamp", "member_buf", "dist_buf", "scaled_buf", "_gen", "_np")

    def __init__(self, np, n: int) -> None:
        self._np = np
        self.stamp = np.zeros(max(n, 1), dtype=np.int64)
        self.member_buf = np.empty(max(n, 1), dtype=np.int64)
        self.dist_buf = None
        self.scaled_buf = None
        self._gen = 0

    def take(self, count: int) -> int:
        """Reserve ``count`` fresh stamp generations; returns the first."""
        first = self._gen + 1
        self._gen += max(count, 1)
        return first

    def with_distances(self):
        np = self._np
        if self.dist_buf is None:
            self.dist_buf = np.empty(self.member_buf.size, dtype=np.int64)
            self.scaled_buf = np.empty(self.member_buf.size, dtype=np.int64)
        return self


def _stamp_kernel_extra(stats: QueryStats, compile_sec: float) -> None:
    stats.extra["kernel"] = "native"
    stats.extra["kernel_mode"] = kernels.KERNEL_MODE
    stats.extra["jit_compile_sec"] = compile_sec


def _native_block_size(requested, n, num_arcs, *, pruning=False):
    from repro.core.vectorized import resolve_block_size

    return resolve_block_size(
        requested, n, num_arcs, pruning=pruning, backend="native"
    )


def base_topk_native(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    node_order: Optional[Sequence[int]] = None,
    csr: Optional[CSRGraph] = None,
    block_size: Optional[int] = None,
) -> TopKResult:
    """Base (exhaustive forward processing), fully in-kernel per block."""
    import numpy as np

    compile_sec = ensure_warm()
    kind = spec.aggregate
    scores_arr = np.asarray(scores, dtype=np.float64)
    eff_kind = kind
    if kind is AggregateKind.COUNT:
        scores_arr = np.where(scores_arr > 0.0, 1.0, 0.0)
        eff_kind = AggregateKind.SUM

    start = time.perf_counter()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    n = graph.num_nodes
    order = np.asarray(
        node_order if node_order is not None else graph.nodes(), dtype=np.int64
    )
    block_size = _native_block_size(block_size, n, int(csr.num_arcs))
    include_self = spec.include_self
    kcode = _KIND_CODES[eff_kind]
    acc = TopKAccumulator(spec.k)
    ws = _Workspace(np, n)
    values_buf = np.empty(block_size, dtype=np.float64)
    sizes_buf = np.empty(block_size, dtype=np.int64)
    edges_scanned = 0
    nodes_visited = 0
    from repro.core.vectorized import _offer_block

    for lo in range(0, int(order.size), block_size):
        check_deadline()
        centers = order[lo : lo + block_size]
        count = int(centers.size)
        edges, pairs = kernels.aggregate_blocks(
            csr.indptr, csr.indices, scores_arr, centers, spec.hops,
            include_self, kcode, ws.stamp, ws.take(count), ws.member_buf,
            values_buf[:count], sizes_buf[:count],
        )
        edges_scanned += int(edges)
        nodes_visited += int(pairs) + (0 if include_self else count)
        _offer_block(np, acc, centers, values_buf[:count])
    stats = QueryStats(
        algorithm="base",
        aggregate=kind.value,
        backend="native",
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
        nodes_evaluated=int(order.size),
        edges_scanned=edges_scanned,
        nodes_visited=nodes_visited,
        balls_expanded=int(order.size),
    )
    stats.extra["block_size"] = float(block_size)
    _stamp_kernel_extra(stats, compile_sec)
    return TopKResult(entries=acc.entries(), stats=stats)


def forward_topk_native(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    diff_index: Optional[DifferentialIndex] = None,
    ordering: str = "ubound",
    seed: Optional[int] = None,
    csr: Optional[CSRGraph] = None,
    block_size: Optional[int] = None,
) -> TopKResult:
    """LONA-Forward: numpy skeleton, native ball-eval + Eq. 1 prune loop."""
    import numpy as np

    from repro.core.vectorized import _as_scores_array, _ubound_order

    compile_sec = ensure_warm()
    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Forward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    scores_arr, kind = _as_scores_array(np, scores, kind)
    is_avg = kind is AggregateKind.AVG

    build_sec = 0.0
    if diff_index is None:
        build_start = time.perf_counter()
        diff_index = build_differential_index(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start
    diff_index.check_compatible(graph, spec.hops, spec.include_self)

    start = time.perf_counter()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    deltas = np.asarray(diff_index.flat_deltas(), dtype=np.float64)
    n = graph.num_nodes
    hops = spec.hops
    include_self = spec.include_self
    sizes = np.asarray(diff_index.sizes.upper_values(), dtype=np.int64)

    if include_self:
        static_ub = np.maximum(sizes - 1, 0) + scores_arr
    else:
        static_ub = sizes.astype(np.float64)
    ubound_sum = static_ub.copy()
    inv_size = 1.0 / np.maximum(sizes, 1) if is_avg else np.ones(1)

    pruned = np.zeros(n, dtype=np.bool_)
    evaluated = np.zeros(n, dtype=np.bool_)

    stats = QueryStats(
        algorithm="forward",
        aggregate=spec.aggregate.value,
        backend="native",
        hops=hops,
        k=spec.k,
        index_build_sec=build_sec,
    )

    if ordering == "ubound":
        order = _ubound_order(np, kind, scores_arr, diff_index.sizes)
    else:
        from repro.core.ordering import make_order

        order = np.asarray(
            make_order(
                ordering, graph, scores_arr.tolist(), kind=kind,
                sizes=diff_index.sizes, seed=seed,
            ),
            dtype=np.int64,
        )

    acc = TopKAccumulator(spec.k)
    bound_evals = 0
    pruned_count = 0
    evaluated_count = 0
    edges_scanned = 0
    nodes_visited = 0
    neg_inf = float("-inf")
    block_size = _native_block_size(
        block_size, n, int(csr.num_arcs), pruning=True
    )
    ws = _Workspace(np, n)
    values_buf = np.empty(block_size, dtype=np.float64)
    sizes_buf = np.empty(block_size, dtype=np.int64)

    position = 0
    while position < order.size:
        check_deadline()
        block = order[position : position + block_size]
        position += block_size
        live = block[~(evaluated[block] | pruned[block])]
        if live.size == 0:
            continue
        threshold = acc.threshold
        effective = ubound_sum[live] * inv_size[live] if is_avg else ubound_sum[live]
        if threshold != neg_inf:
            cut = effective <= threshold
            newly_pruned = live[cut]
            pruned[newly_pruned] = True
            pruned_count += int(newly_pruned.size)
            live = live[~cut]
            if live.size == 0:
                continue

        # Exact forward processing: one native stamp-BFS pass, SUM + sizes.
        count = int(live.size)
        edges, pairs = kernels.aggregate_blocks(
            csr.indptr, csr.indices, scores_arr, live, hops, include_self,
            kernels.KIND_SUM, ws.stamp, ws.take(count), ws.member_buf,
            values_buf[:count], sizes_buf[:count],
        )
        edges_scanned += int(edges)
        nodes_visited += int(pairs) + (0 if include_self else count)
        ball_sums = values_buf[:count]
        ball_sizes = sizes_buf[:count]
        evaluated[live] = True
        evaluated_count += count
        if is_avg:
            values = np.divide(
                ball_sums,
                ball_sizes,
                out=np.zeros(count, dtype=np.float64),
                where=ball_sizes > 0,
            )
        else:
            values = ball_sums
        offer = acc.offer
        for node, value in zip(live.tolist(), values.tolist()):
            offer(node, value)
        threshold = acc.threshold

        # pruneNodes for the block, arc-level (same Eq. 1 gate as numpy).
        gate = ball_sums <= threshold
        sources = live[gate]
        if sources.size == 0:
            continue
        source_sums = np.ascontiguousarray(ball_sums[gate])
        be, pc = kernels.forward_prune_block(
            csr.indptr, csr.indices, deltas, sources, source_sums,
            ubound_sum, evaluated, pruned, float(threshold), is_avg,
            inv_size, ws.stamp, ws.take(1), ws.member_buf,
        )
        bound_evals += int(be)
        pruned_count += int(pc)

    stats.nodes_evaluated = evaluated_count
    stats.pruned_nodes = pruned_count
    stats.bound_evaluations = bound_evals
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = edges_scanned
    stats.nodes_visited = nodes_visited
    stats.balls_expanded = evaluated_count
    stats.extra["ordering"] = ordering
    stats.extra["block_size"] = float(block_size)
    _stamp_kernel_extra(stats, compile_sec)
    return TopKResult(entries=acc.entries(), stats=stats)


def backward_topk_native(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    *,
    gamma: Union[float, str] = "auto",
    distribution_fraction: float = 0.1,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    csr: Optional[CSRGraph] = None,
    rev_csr: Optional[CSRGraph] = None,
    ball_cache=None,
) -> TopKResult:
    """LONA-Backward: numpy phases 1–2, blocked native TA verification.

    ``ball_cache`` is accepted for signature parity with the numpy twin but
    unused — the blocked kernel re-expands candidates faster than the
    python-driven cache walk it replaces.
    """
    import numpy as np

    from repro.core.vectorized import (
        _as_scores_array,
        backward_distribution_split,
        backward_eq3_bounds,
        backward_shortcut_values,
        resolve_block_size,
    )

    compile_sec = ensure_warm()
    kind = spec.aggregate
    if not kind.lona_supported:
        raise InvalidParameterError(
            f"LONA-Backward supports SUM/AVG/COUNT, not {kind.value}; "
            "use algorithm='base' for MAX/MIN"
        )
    scores_arr, kind = _as_scores_array(np, scores, kind)
    is_avg = kind is AggregateKind.AVG

    build_sec = 0.0
    if sizes is None:
        build_start = time.perf_counter()
        sizes = NeighborhoodSizeIndex.estimated(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start

    start = time.perf_counter()
    counter = TraversalCounter()
    n = graph.num_nodes
    include_self = spec.include_self
    stats = QueryStats(
        algorithm="backward",
        aggregate=spec.aggregate.value,
        backend="native",
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )
    if csr is None:
        csr = to_csr(graph, use_numpy=True)

    # Phases 1–2 run the numpy code verbatim: the per-block bincount
    # accumulation order is part of the float contract (exact-shortcut
    # partials ARE the answers), so it must not be re-associated.
    distributed, effective_gamma, rest_bound = backward_distribution_split(
        np, scores_arr, gamma, distribution_fraction
    )
    if not graph.directed:
        dist_csr = csr
    elif rev_csr is not None:
        dist_csr = rev_csr
    else:
        dist_csr = to_csr(graph.reversed(), use_numpy=True)
    partial = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=np.int64)
    self_distributed = np.zeros(n, dtype=bool)
    pushes = 0
    block_size = resolve_block_size(None, n, int(dist_csr.num_arcs))
    for lo in range(0, int(distributed.size), block_size):
        check_deadline()
        block = distributed[lo : lo + block_size]
        owners, members, edges = batched_hop_balls(
            dist_csr, block, spec.hops, include_self=include_self
        )
        counter.edges_scanned += edges
        counter.nodes_visited += int(members.size) + (
            0 if include_self else int(block.size)
        )
        counter.balls_expanded += int(block.size)
        ball_sizes = np.bincount(owners, minlength=block.size)
        partial += np.bincount(
            members, weights=np.repeat(scores_arr[block], ball_sizes), minlength=n
        )
        covered += np.bincount(members, minlength=n)
        pushes += int(members.size)
    stats.distribution_pushes = pushes
    if include_self:
        self_distributed[distributed] = True

    bounds = backward_eq3_bounds(
        np,
        scores_arr,
        partial,
        covered,
        self_distributed,
        sizes,
        rest_bound,
        include_self=include_self,
        is_avg=is_avg,
    )
    stats.bound_evaluations = n
    candidate_order = np.lexsort((np.arange(n), -bounds))

    # Phase 3: blocked TA verification with the native ball kernel — the
    # cut-at-threshold pattern of the weighted numpy kernel.  Over-verified
    # candidates inside a chunk are rejected by strictly-greater
    # acceptance, so entries match the one-at-a-time numpy loop exactly.
    exact_shortcut = rest_bound == 0.0 and (not is_avg or sizes.is_exact)
    shortcut_values = None
    if exact_shortcut:
        shortcut_values = backward_shortcut_values(
            np,
            scores_arr,
            partial,
            self_distributed,
            sizes,
            include_self=include_self,
            is_avg=is_avg,
        )
    acc = TopKAccumulator(spec.k)
    offered = 0
    position = 0
    # Verification is threshold-driven: the rising topklbound is only
    # re-checked between chunks, so use the pruning block profile — a full
    # native block would swallow small graphs whole and erase the TA stop.
    vblock = _native_block_size(None, n, int(csr.num_arcs), pruning=True)
    ws = _Workspace(np, n)
    values_buf = np.empty(vblock, dtype=np.float64)
    sizes_buf = np.empty(vblock, dtype=np.int64)
    while position < n:
        check_deadline()
        chunk = candidate_order[position : position + vblock]
        position += int(chunk.size)
        if acc.is_full:
            live = bounds[chunk] > acc.threshold
            if not live.all():
                # Bounds are non-increasing along candidate_order, so the
                # survivors are a prefix; everything after is pruned.
                chunk = chunk[: int(np.argmin(live))]
                stats.early_terminated = True
        if chunk.size == 0:
            break
        count = int(chunk.size)
        if exact_shortcut:
            values = shortcut_values[chunk]
        else:
            chunk = np.ascontiguousarray(chunk)
            edges, pairs = kernels.aggregate_blocks(
                csr.indptr, csr.indices, scores_arr, chunk, spec.hops,
                include_self, kernels.KIND_SUM, ws.stamp, ws.take(count),
                ws.member_buf, values_buf[:count], sizes_buf[:count],
            )
            counter.edges_scanned += int(edges)
            counter.nodes_visited += int(pairs) + (0 if include_self else count)
            counter.balls_expanded += count
            if is_avg:
                values = np.divide(
                    values_buf[:count],
                    sizes_buf[:count],
                    out=np.zeros(count, dtype=np.float64),
                    where=sizes_buf[:count] > 0,
                )
            else:
                values = values_buf[:count]
            stats.nodes_evaluated += count
            stats.candidates_verified += count
        offer = acc.offer
        for node, value in zip(chunk.tolist(), values.tolist()):
            offer(node, value)
        offered += count
        if stats.early_terminated:
            break

    stats.pruned_nodes = n - offered
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["gamma"] = effective_gamma
    stats.extra["distributed_nodes"] = float(distributed.size)
    stats.extra["rest_bound"] = rest_bound
    stats.extra["exact_shortcut"] = float(exact_shortcut)
    _stamp_kernel_extra(stats, compile_sec)
    return TopKResult(entries=acc.entries(), stats=stats)


def weighted_base_topk_native(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    profile=None,
    *,
    csr: Optional[CSRGraph] = None,
    block_size: Optional[int] = None,
) -> TopKResult:
    """Naive weighted scan, fully in-kernel per block (footnote 1)."""
    import numpy as np

    from repro.aggregates.weighted import inverse_distance, precompute_weights
    from repro.core.vectorized import _check_weighted_spec, _offer_block

    compile_sec = ensure_warm()
    _check_weighted_spec(spec)
    if profile is None:
        profile = inverse_distance
    weights = np.asarray(precompute_weights(profile, spec.hops), dtype=np.float64)
    scores_arr = np.asarray(scores, dtype=np.float64)

    start = time.perf_counter()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    n = graph.num_nodes
    block_size = _native_block_size(block_size, n, int(csr.num_arcs))
    include_self = spec.include_self
    acc = TopKAccumulator(spec.k)
    ws = _Workspace(np, n).with_distances()
    values_buf = np.empty(block_size, dtype=np.float64)
    sizes_buf = np.empty(block_size, dtype=np.int64)
    edges_scanned = 0
    nodes_visited = 0
    for lo in range(0, n, block_size):
        check_deadline()
        centers = np.arange(lo, min(lo + block_size, n), dtype=np.int64)
        count = int(centers.size)
        edges, pairs = kernels.distance_aggregate_blocks(
            csr.indptr, csr.indices, scores_arr, weights, centers, spec.hops,
            include_self, ws.stamp, ws.take(count), ws.member_buf,
            ws.dist_buf, ws.scaled_buf, values_buf[:count], sizes_buf[:count],
        )
        edges_scanned += int(edges)
        nodes_visited += int(pairs) + (0 if include_self else count)
        _offer_block(np, acc, centers, values_buf[:count])
    stats = QueryStats(
        algorithm="weighted-base",
        aggregate="sum",
        backend="native",
        hops=spec.hops,
        k=spec.k,
        elapsed_sec=time.perf_counter() - start,
        nodes_evaluated=n,
        edges_scanned=edges_scanned,
        nodes_visited=nodes_visited,
        balls_expanded=n,
    )
    stats.extra["block_size"] = float(block_size)
    _stamp_kernel_extra(stats, compile_sec)
    return TopKResult(entries=acc.entries(), stats=stats)


def weighted_backward_topk_native(
    graph: Graph,
    scores: Sequence[float],
    spec: QuerySpec,
    profile=None,
    *,
    gamma: Union[float, str] = "auto",
    distribution_fraction: float = 0.1,
    sizes: Optional[NeighborhoodSizeIndex] = None,
    csr: Optional[CSRGraph] = None,
    rev_csr: Optional[CSRGraph] = None,
    dist_ball_cache=None,
) -> TopKResult:
    """Weighted LONA-Backward: numpy phases 1–2, blocked native verify.

    ``dist_ball_cache`` is accepted for signature parity but unused (see
    :func:`backward_topk_native`).
    """
    import numpy as np

    from repro.aggregates.weighted import inverse_distance, precompute_weights
    from repro.core.backward import resolve_gamma
    from repro.core.vectorized import _check_weighted_spec, resolve_block_size
    from repro.graph.csr import batched_hop_balls_with_distances

    compile_sec = ensure_warm()
    _check_weighted_spec(spec)
    if profile is None:
        profile = inverse_distance
    weights = np.asarray(precompute_weights(profile, spec.hops), dtype=np.float64)
    w_max = float(weights[1:].max()) if weights.size > 1 else 0.0
    scores_arr = np.asarray(scores, dtype=np.float64)

    build_sec = 0.0
    if sizes is None:
        build_start = time.perf_counter()
        sizes = NeighborhoodSizeIndex.estimated(
            graph, spec.hops, include_self=spec.include_self
        )
        build_sec = time.perf_counter() - build_start

    start = time.perf_counter()
    counter = TraversalCounter()
    n = graph.num_nodes
    include_self = spec.include_self
    stats = QueryStats(
        algorithm="weighted-backward",
        aggregate="sum",
        backend="native",
        hops=spec.hops,
        k=spec.k,
        index_build_sec=build_sec,
    )
    if csr is None:
        csr = to_csr(graph, use_numpy=True)

    # Phases 1–2: numpy code verbatim (float contract — see backward).
    nonzero_ids = np.nonzero(scores_arr > 0.0)[0]
    nonzero_scores = scores_arr[nonzero_ids]
    desc = np.lexsort((nonzero_ids, -nonzero_scores))
    ordered_ids = nonzero_ids[desc]
    ordered_scores = nonzero_scores[desc]
    effective_gamma = resolve_gamma(
        gamma, ordered_scores.tolist(), distribution_fraction=distribution_fraction
    )
    cut = int(np.searchsorted(-ordered_scores, -effective_gamma, side="right"))
    distributed = ordered_ids[:cut]
    rest_bound = float(ordered_scores[cut]) if cut < ordered_scores.size else 0.0

    if not graph.directed:
        dist_csr = csr
    elif rev_csr is not None:
        dist_csr = rev_csr
    else:
        dist_csr = to_csr(graph.reversed(), use_numpy=True)
    partial = np.zeros(n, dtype=np.float64)
    covered = np.zeros(n, dtype=np.int64)
    self_distributed = np.zeros(n, dtype=bool)
    pushes = 0
    block_size = resolve_block_size(None, n, int(dist_csr.num_arcs))
    for lo in range(0, int(distributed.size), block_size):
        check_deadline()
        block = distributed[lo : lo + block_size]
        owners, members, dists, edges = batched_hop_balls_with_distances(
            dist_csr, block, spec.hops, include_self=include_self
        )
        counter.edges_scanned += edges
        counter.nodes_visited += int(members.size) + (
            0 if include_self else int(block.size)
        )
        counter.balls_expanded += int(block.size)
        ball_sizes = np.bincount(owners, minlength=block.size)
        partial += np.bincount(
            members,
            weights=np.repeat(scores_arr[block], ball_sizes) * weights[dists],
            minlength=n,
        )
        covered += np.bincount(members, minlength=n)
        pushes += int(members.size)
    stats.distribution_pushes = pushes
    if include_self:
        self_distributed[distributed] = True

    upper = np.asarray(sizes.upper_values(), dtype=np.int64)
    self_known = self_distributed | (not include_self)
    unknown = np.where(self_known, upper - covered, upper - covered - 1)
    extra = np.where(self_known, 0.0, weights[0] * scores_arr)
    bounds = partial + (w_max * rest_bound) * np.maximum(unknown, 0) + extra
    stats.bound_evaluations = n
    candidate_order = np.lexsort((np.arange(n), -bounds))

    # Phase 3: blocked native verification (distance kernel), cut at the
    # rising threshold exactly like the numpy weighted kernel.
    exact_shortcut = rest_bound == 0.0
    acc = TopKAccumulator(spec.k)
    offered = 0
    position = 0
    # Threshold-driven chunking: same pruning profile as the unweighted
    # backward — see the comment there.
    vblock = _native_block_size(None, n, int(csr.num_arcs), pruning=True)
    ws = _Workspace(np, n).with_distances()
    values_buf = np.empty(vblock, dtype=np.float64)
    sizes_buf = np.empty(vblock, dtype=np.int64)
    while position < n:
        check_deadline()
        chunk = candidate_order[position : position + vblock]
        position += int(chunk.size)
        if acc.is_full:
            live = bounds[chunk] > acc.threshold
            if not live.all():
                chunk = chunk[: int(np.argmin(live))]
                stats.early_terminated = True
        if chunk.size == 0:
            break
        count = int(chunk.size)
        if exact_shortcut:
            values = partial[chunk] + np.where(
                self_distributed[chunk] | (not include_self),
                0.0,
                weights[0] * scores_arr[chunk],
            )
        else:
            chunk = np.ascontiguousarray(chunk)
            edges, pairs = kernels.distance_aggregate_blocks(
                csr.indptr, csr.indices, scores_arr, weights, chunk,
                spec.hops, include_self, ws.stamp, ws.take(count),
                ws.member_buf, ws.dist_buf, ws.scaled_buf,
                values_buf[:count], sizes_buf[:count],
            )
            counter.edges_scanned += int(edges)
            counter.nodes_visited += int(pairs) + (0 if include_self else count)
            counter.balls_expanded += count
            values = values_buf[:count]
            stats.nodes_evaluated += count
            stats.candidates_verified += count
        offer = acc.offer
        for node, value in zip(chunk.tolist(), values.tolist()):
            offer(node, value)
        offered += count
        if stats.early_terminated:
            break

    stats.pruned_nodes = n - offered
    stats.elapsed_sec = time.perf_counter() - start
    stats.edges_scanned = counter.edges_scanned
    stats.nodes_visited = counter.nodes_visited
    stats.balls_expanded = counter.balls_expanded
    stats.extra["gamma"] = effective_gamma
    stats.extra["distributed_nodes"] = float(distributed.size)
    stats.extra["rest_bound"] = rest_bound
    stats.extra["exact_shortcut"] = float(exact_shortcut)
    _stamp_kernel_extra(stats, compile_sec)
    return TopKResult(entries=acc.entries(), stats=stats)


def shared_scan_native(
    graph: Graph,
    batch,
    folded_scores,
    accumulators,
    hops: int,
    include_self: bool,
    counter: TraversalCounter,
    csr: Optional[CSRGraph] = None,
    block_size: Optional[int] = None,
) -> None:
    """Fused multi-query shared scan with the batch kernel.

    Drop-in twin of :func:`repro.core.batch._shared_scan_numpy`: one BFS
    per center block, every query row accumulated in-kernel, offers
    threshold-gated per query.
    """
    import numpy as np

    from repro.core.vectorized import _offer_block

    ensure_warm()
    if csr is None:
        csr = to_csr(graph, use_numpy=True)
    matrix = np.asarray(folded_scores, dtype=np.float64)
    n = graph.num_nodes
    if block_size is None:
        block_size = max(
            4,
            _native_block_size(None, n, int(csr.num_arcs))
            // max(len(batch), 1),
        )
    else:
        block_size = _native_block_size(block_size, n, int(csr.num_arcs))
    avg_flags = np.asarray(
        [entry.aggregate is AggregateKind.AVG for entry in batch], dtype=np.bool_
    )
    ws = _Workspace(np, n)
    for lo in range(0, n, block_size):
        check_deadline()
        centers = np.arange(lo, min(lo + block_size, n), dtype=np.int64)
        count = int(centers.size)
        values = np.empty((len(batch), count), dtype=np.float64)
        edges, pairs = kernels.batch_aggregate_blocks(
            csr.indptr, csr.indices, matrix, avg_flags, centers, hops,
            include_self, ws.stamp, ws.take(count), ws.member_buf, values,
        )
        counter.edges_scanned += int(edges)
        counter.nodes_visited += int(pairs) + (0 if include_self else count)
        counter.balls_expanded += count
        for i, acc in enumerate(accumulators):
            _offer_block(np, acc, centers, values[i])


def iter_exact_values_native(
    csr: CSRGraph,
    order,
    folded,
    eff_kind: AggregateKind,
    hops: int,
    include_self: bool,
    counter: TraversalCounter,
    n: int,
):
    """``(node, exact value)`` pairs for the filtered/streamed scan.

    The native arm of :func:`repro.core.executor._iter_exact_values`:
    candidate blocks evaluate with one kernel call each, all aggregate
    kinds (MAX/MIN included) via the kind-code dispatch.
    """
    import numpy as np

    ensure_warm()
    nodes = np.ascontiguousarray(np.asarray(order, dtype=np.int64))
    block = _native_block_size(None, n, int(csr.num_arcs))
    kcode = _KIND_CODES[eff_kind]
    ws = _Workspace(np, n)
    values_buf = np.empty(block, dtype=np.float64)
    sizes_buf = np.empty(block, dtype=np.int64)
    for lo in range(0, int(nodes.size), block):
        check_deadline()
        centers = nodes[lo : lo + block]
        count = int(centers.size)
        edges, pairs = kernels.aggregate_blocks(
            csr.indptr, csr.indices, folded, centers, hops, include_self,
            kcode, ws.stamp, ws.take(count), ws.member_buf,
            values_buf[:count], sizes_buf[:count],
        )
        counter.edges_scanned += int(edges)
        counter.nodes_visited += int(pairs) + (0 if include_self else count)
        counter.balls_expanded += count
        for j in range(count):
            yield int(centers[j]), float(values_buf[j])
