"""Warm-up and on-disk compile-cache management for the native tier.

Numba compiles a kernel on its first call with a new type signature, a
one-time cost of seconds that must never land inside a query's measured
``elapsed_sec`` (the paper's figures time the algorithms, not LLVM).  Two
mechanisms keep it out of the way:

* ``@njit(cache=True)`` on every kernel persists compiled machine code to
  disk, so the compile cost is once per machine, not once per process.
  :func:`configure_cache_dir` points numba's cache at
  ``REPRO_NUMBA_CACHE_DIR`` when set (CI uses a cached directory); it must
  run before :mod:`repro.native.kernels` is imported, which the package
  ``__init__`` guarantees.
* :func:`ensure_warm` calls every kernel once on a 3-node toy graph with
  the production argument types, forcing all compilation up front.  The
  first caller in a process pays (and gets the measured seconds back, for
  ``QueryStats.extra["jit_compile_sec"]``); later callers get 0.0.

Without numba the same warm-up runs the interpreted kernels (microseconds)
and reports 0.0 compile seconds — there is nothing to compile.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict

__all__ = ["configure_cache_dir", "ensure_warm", "compile_stats"]

_lock = threading.Lock()
_warmed = False
_compile_sec = 0.0


def configure_cache_dir() -> None:
    """Point numba's on-disk kernel cache at ``REPRO_NUMBA_CACHE_DIR``.

    No-op when the variable is unset (numba then caches next to the source
    tree, its default) or when numba already imported (too late to move).
    """
    cache_dir = os.environ.get("REPRO_NUMBA_CACHE_DIR")
    if cache_dir and "NUMBA_CACHE_DIR" not in os.environ:
        os.environ["NUMBA_CACHE_DIR"] = cache_dir


def ensure_warm() -> float:
    """Compile (or touch) every kernel once; return seconds spent this call.

    Thread-safe and idempotent: the first call in the process runs every
    kernel on a tiny graph with production dtypes and returns the wall
    seconds that took (== jit compile cost when numba is active, since the
    toy inputs execute in microseconds); every later call returns 0.0.
    """
    global _warmed, _compile_sec
    if _warmed:
        return 0.0
    with _lock:
        if _warmed:
            return 0.0
        start = time.perf_counter()
        _warm_all()
        elapsed = time.perf_counter() - start
        from repro.native.kernels import NUMBA_IMPORTABLE

        _compile_sec = elapsed if NUMBA_IMPORTABLE else 0.0
        _warmed = True
        return _compile_sec


def _warm_all() -> None:
    """Run every kernel once on a 3-node path graph, production dtypes."""
    import numpy as np

    from repro.native import kernels

    indptr = np.asarray([0, 1, 3, 4], dtype=np.int64)
    indices = np.asarray([1, 0, 2, 1], dtype=np.int64)
    scores = np.asarray([0.5, 1.0, 0.25], dtype=np.float64)
    weights = np.asarray([1.0, 1.0, 0.5], dtype=np.float64)
    centers = np.asarray([0, 1, 2], dtype=np.int64)
    n = 3
    stamp = np.zeros(n, dtype=np.int64)
    member_buf = np.empty(n, dtype=np.int64)
    dist_buf = np.empty(n, dtype=np.int64)
    scaled_buf = np.empty(n, dtype=np.int64)
    values = np.empty(n, dtype=np.float64)
    sizes = np.empty(n, dtype=np.int64)
    gen = 1
    for kind_code in (kernels.KIND_SUM, kernels.KIND_AVG, kernels.KIND_MAX,
                      kernels.KIND_MIN):
        kernels.aggregate_blocks(
            indptr, indices, scores, centers, 2, True, kind_code,
            stamp, gen, member_buf, values, sizes,
        )
        gen += n
    kernels.distance_aggregate_blocks(
        indptr, indices, scores, weights, centers, 2, True,
        stamp, gen, member_buf, dist_buf, scaled_buf, values, sizes,
    )
    gen += n
    matrix = np.vstack([scores, scores])
    avg_flags = np.asarray([False, True], dtype=np.bool_)
    batch_values = np.empty((2, n), dtype=np.float64)
    kernels.batch_aggregate_blocks(
        indptr, indices, matrix, avg_flags, centers, 2, True,
        stamp, gen, member_buf, batch_values,
    )
    gen += n
    deltas = np.zeros(indices.size, dtype=np.float64)
    evaluated = np.zeros(n, dtype=np.bool_)
    pruned = np.zeros(n, dtype=np.bool_)
    ubound = np.full(n, 10.0, dtype=np.float64)
    inv_size = np.ones(n, dtype=np.float64)
    for is_avg in (False, True):
        kernels.forward_prune_block(
            indptr, indices, deltas, centers, scores, ubound,
            evaluated, pruned, -1e300, is_avg, inv_size,
            stamp, gen, member_buf,
        )
        gen += 1


def compile_stats() -> Dict[str, object]:
    """Snapshot of the warm-up state for service stats / bench output."""
    from repro.native.kernels import KERNEL_MODE

    return {
        "warmed": _warmed,
        "compile_sec": _compile_sec,
        "mode": KERNEL_MODE,
    }
