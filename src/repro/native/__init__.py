"""Compiled kernel tier (``backend="native"``): Numba-jitted CSR hot loops.

Import-or-decline, exactly like numpy's ``"auto"`` contract: nothing here
requires numba at import time — :mod:`repro.native.kernels` falls back to
interpreted Python when numba is absent, and the backend registry
(:func:`repro.core.backends.native_available`) only offers the tier when
numba is importable (or ``REPRO_NATIVE_INTERPRETED`` forces the
interpreted kernels on, which the parity tests use).

The cache-dir hook must run before any kernel module import so
``NUMBA_CACHE_DIR`` is set before numba first loads.
"""

from repro.native.compile_cache import compile_stats, configure_cache_dir, ensure_warm

configure_cache_dir()

__all__ = ["compile_stats", "configure_cache_dir", "ensure_warm"]
