"""Bench: the Network session facade must be free (< 5% over the engine).

The facade's promise is *zero-cost declarativity*: a
``net.query(...).limit(k).run()`` lowers to the same executor call the
legacy ``TopKEngine.topk`` makes, plus one frozen ``QueryRequest``
allocation.  This benchmark pins that promise on the fig1 workload
(collaboration-like graph, binary blacking relevance): the guard test
interleaves facade and direct runs and asserts the facade's median is
within 5% of the engine's; the pytest-benchmark pair records both paths
for the perf-artifact trajectory.
"""

from __future__ import annotations

import statistics
import time
import warnings

from repro.bench.workloads import figure
from repro.core.engine import TopKEngine
from repro.session import Network

_CACHE = {}
K = 50
ROUNDS = 15


def _context():
    if not _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.25)
        scores = spec.build_scores(graph)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            engine = TopKEngine(graph, scores, hops=2)
        net = Network(graph, hops=2).add_scores("fig1", scores)
        builder = net.query("fig1").limit(K).aggregate("sum")
        # Warm both paths: estimated size indexes, CSR views, planner-free
        # auto dispatch — the steady state a session serves queries in.
        engine.topk(K, "sum", "auto")
        builder.run()
        _CACHE["engine"] = engine
        _CACHE["builder"] = builder
    return _CACHE


def _timed(fn) -> float:
    # Whole-call wall clock: includes the builder lowering and executor
    # dispatch the facade adds (stats.elapsed_sec would hide exactly the
    # overhead under test).
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_facade_overhead_under_5_percent():
    ctx = _context()
    engine, builder = ctx["engine"], ctx["builder"]
    direct_times = []
    facade_times = []
    # Interleave so drift (thermal, GC) hits both paths evenly.
    for _ in range(ROUNDS):
        direct_times.append(_timed(lambda: engine.topk(K, "sum", "auto")))
        facade_times.append(_timed(builder.run))
    direct = statistics.median(direct_times)
    facade = statistics.median(facade_times)
    assert facade <= direct * 1.05 + 1e-4, (
        f"facade overhead too high: facade={facade * 1e3:.3f} ms vs "
        f"direct={direct * 1e3:.3f} ms "
        f"({(facade / direct - 1) * 100:.1f}% > 5%)"
    )


def test_direct_engine(benchmark):
    ctx = _context()
    result = benchmark.pedantic(
        lambda: ctx["engine"].topk(K, "sum", "auto"), rounds=5, iterations=2
    )
    assert len(result) == K


def test_session_facade(benchmark):
    ctx = _context()
    result = benchmark.pedantic(
        lambda: ctx["builder"].run(), rounds=5, iterations=2
    )
    assert len(result) == K
