"""Parallel-backend bench: multi-core speedup over single-process numpy.

Measures, on the fig1 collaboration and fig2 citation workloads at the
full seed scale, wall-clock speedup of ``backend="parallel"`` (worker
processes over shared-memory CSR shards, pool pre-warmed and excluded from
the timed region) against the in-process numpy backend, for:

* ``base``  — the exhaustive scan, the route where sharding has the most
  surface (every owned node expands);
* ``batch`` — one fused multi-query shared scan fanned out across shards.

The acceptance gate is **>= 2x on the base cells with >= 4 workers**.
Process parallelism cannot beat one core on one core, so the gate is only
*evaluated* when the machine actually has at least ``workers`` CPUs;
on smaller machines the bench still runs, records honest numbers, and
marks the gate ``skipped`` — the CI bench-smoke job (multi-core runners)
is where the gate is exercised, as a non-blocking warning like every other
perf number on shared runners.

Two modes::

    PYTHONPATH=src python benchmarks/bench_parallel.py --write   # baseline
    PYTHONPATH=src python benchmarks/bench_parallel.py --check   # compare

``--check`` warns (GitHub annotations) when a cell regresses more than
``--tolerance`` against ``benchmarks/BENCH_parallel.json`` or when the
evaluated gate fails; ``--strict`` turns warnings into exit code 1.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = _BENCH_DIR / "BENCH_parallel.json"

FIGURES = ("fig1", "fig2")
K = 100
BATCH_QUERIES = 6
GATE = 2.0
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def measure(scale: float = 1.0, workers: int = 4) -> dict:
    from repro.bench.workloads import figure
    from repro.core.batch import BatchQuery
    from repro.relevance.mixture import MixtureRelevance
    from repro.session import Network

    cpus = os.cpu_count() or 1
    report: dict = {
        "scale": scale,
        "k": K,
        "workers": workers,
        "cpus": cpus,
        "gate": GATE,
        "gate_evaluated": cpus >= workers,
        "figures": {},
    }
    for figure_id in FIGURES:
        spec = figure(figure_id)
        graph = spec.build_graph(scale)
        net = Network(graph, hops=spec.hops)
        net.add_scores("bench", spec.build_scores(graph))
        dense = [
            MixtureRelevance(0.01, zero_fraction=0.0, seed=7 + i).scores(graph)
            for i in range(BATCH_QUERIES)
        ]
        engine = net.parallel(workers=workers, min_nodes=0)
        try:
            numpy_query = (
                net.query("bench").limit(K).algorithm("base").backend("numpy")
            )
            parallel_query = (
                net.query("bench").limit(K).algorithm("base").backend("parallel")
            )
            parallel_query.run()  # warm: spawn pool, export shards, attach
            t_numpy, r_numpy = _best_of(numpy_query.run)
            t_parallel, r_parallel = _best_of(parallel_query.run)
            assert [e[0] for e in r_numpy.entries] == [
                e[0] for e in r_parallel.entries
            ], f"{figure_id}: parallel and numpy answers diverged"

            batch = [BatchQuery(scores=vector, k=K) for vector in dense]
            t_batch_numpy, _ = _best_of(
                lambda: net._run_batch(batch, backend="numpy")
            )
            t_batch_parallel, _ = _best_of(
                lambda: net._run_batch(batch, backend="parallel")
            )
            # Read before close(): a respawn mid-measurement means a worker
            # died and the timings absorbed a spawn — the field exists to
            # expose exactly that, and stats() reports 0 once the pool is
            # gone.
            respawns = engine.stats()["respawns"]
        finally:
            net.close()
        report["figures"][figure_id] = {
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "base": {
                "numpy_sec": round(t_numpy, 4),
                "parallel_sec": round(t_parallel, 4),
                "speedup": round(t_numpy / t_parallel, 3),
            },
            "batch": {
                "queries": BATCH_QUERIES,
                "numpy_sec": round(t_batch_numpy, 4),
                "parallel_sec": round(t_batch_parallel, 4),
                "speedup": round(t_batch_numpy / t_batch_parallel, 3),
            },
            "pool_respawns": respawns,
        }
    return report


def check(report: dict, baseline: dict, tolerance: float) -> list:
    """Gate + baseline comparison; returns warning strings."""
    warnings = []
    if report["gate_evaluated"]:
        for figure_id, cells in report["figures"].items():
            speedup = cells["base"]["speedup"]
            if speedup < GATE:
                warnings.append(
                    f"{figure_id}: parallel base speedup {speedup:.2f}x is "
                    f"below the {GATE:.0f}x gate "
                    f"({report['workers']} workers, {report['cpus']} cpus)"
                )
    else:
        print(
            f"gate skipped: {report['cpus']} cpu(s) < {report['workers']} "
            "workers — multi-core speedup is unmeasurable here"
        )
    if baseline and report["gate_evaluated"]:
        # The baseline may have been written on a smaller machine (its
        # "cpus" field says so); its speedup then under-states what this
        # machine can do, which keeps the floor below sound: dropping more
        # than `tolerance` under even a 1-CPU baseline is a regression
        # anywhere.
        for figure_id, cells in baseline.get("figures", {}).items():
            recorded = cells.get("base", {}).get("speedup")
            current = (
                report["figures"].get(figure_id, {})
                .get("base", {})
                .get("speedup")
            )
            if recorded and current and current < recorded * (1 - tolerance):
                warnings.append(
                    f"{figure_id}: parallel speedup regressed "
                    f"{recorded:.2f}x -> {current:.2f}x "
                    f"(> {tolerance:.0%} drop; baseline machine had "
                    f"{baseline.get('cpus')} cpus)"
                )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="rewrite the baseline")
    mode.add_argument("--check", action="store_true", help="compare + gate")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--strict", action="store_true", help="exit 1 on warnings")
    args = parser.parse_args(argv)

    report = measure(scale=args.scale, workers=args.workers)
    print(json.dumps(report, indent=2))

    if args.write:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    if not baseline:
        print(f"::warning::no committed baseline at {BASELINE_PATH}")
    warnings = check(report, baseline, args.tolerance)
    for message in warnings:
        print(f"::warning::parallel bench: {message}")
    if not warnings:
        print("parallel bench: gate satisfied (or skipped) and no regression")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
