"""Ablation abl-weighted: distance-weighted aggregation (footnote 1).

Compares the weighted naive scan against the weighted LONA-Backward for the
inverse-distance profile the paper names, plus an exponential-decay
variant.  The weighted scan pays a distance-labeled BFS everywhere; the
backward distribution pays it only around the non-zero nodes.
"""

from __future__ import annotations

import pytest

from repro.aggregates.weighted import exponential_decay, inverse_distance
from repro.core.query import QuerySpec
from repro.core.weighted import weighted_backward_topk, weighted_base_topk

PROFILES = {
    "inverse": inverse_distance,
    "exp-decay": exponential_decay(0.5),
}


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_weighted_base(benchmark, fig_ctx, bench_k, profile_name):
    ctx = fig_ctx("fig1")
    spec = QuerySpec(k=bench_k, hops=2)
    result = benchmark.pedantic(
        lambda: weighted_base_topk(
            ctx.graph, ctx.scores, spec, PROFILES[profile_name]
        ),
        rounds=3,
        iterations=1,
    )
    assert len(result) == bench_k


@pytest.mark.parametrize("profile_name", sorted(PROFILES))
def test_weighted_backward(benchmark, fig_ctx, bench_k, profile_name):
    ctx = fig_ctx("fig1")
    spec = QuerySpec(k=bench_k, hops=2)
    result = benchmark.pedantic(
        lambda: weighted_backward_topk(
            ctx.graph,
            ctx.scores,
            spec,
            PROFILES[profile_name],
            sizes=ctx.diff_index.sizes,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["distribution_pushes"] = result.stats.distribution_pushes
    assert len(result) == bench_k
