"""Ablation abl-batch: shared scans for heavy query workloads.

Sec. II motivates LONA with "heavy query workloads"; this benchmark
measures the multi-query optimization along two axes:

* shared scan vs q sequential Base runs (per backend) — the traversal
  amortization;
* the *fused* numpy batch kernel vs q per-query numpy Base runs — the
  vectorized batch must beat even vectorized single-query execution,
  because each node block is expanded once and every query scores against
  it in a single segmented reduction.

``BatchTopKEngine`` routing (dense shared, sparse peeled to backward) is
timed on the mixed workload.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.core.backends import numpy_available
from repro.core.base import base_topk
from repro.core.batch import BatchQuery, BatchTopKEngine, batch_base_topk
from repro.core.query import QuerySpec
from repro.relevance.mixture import MixtureRelevance

_CACHE = {}
NUM_QUERIES = 6

BACKENDS = ("python", "numpy") if numpy_available() else ("python",)


def _context():
    if not _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.25)
        dense = [
            MixtureRelevance(0.01, zero_fraction=0.0, seed=40 + i).scores(graph)
            for i in range(NUM_QUERIES)
        ]
        sparse = [
            MixtureRelevance(0.01, binary=True, seed=80 + i).scores(graph)
            for i in range(NUM_QUERIES // 2)
        ]
        _CACHE["graph"] = graph
        _CACHE["dense"] = dense
        _CACHE["sparse"] = sparse
        if numpy_available():
            from repro.graph.csr import to_csr

            _CACHE["csr"] = to_csr(graph, use_numpy=True)
        else:
            _CACHE["csr"] = None
    return _CACHE


@pytest.mark.parametrize("backend", BACKENDS)
def test_sequential_base_runs(benchmark, backend):
    ctx = _context()

    def run():
        return [
            base_topk(
                ctx["graph"],
                vector.values(),
                QuerySpec(k=20, hops=2, backend=backend),
                csr=ctx["csr"] if backend == "numpy" else None,
            )
            for vector in ctx["dense"]
        ]

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["backend"] = backend
    assert len(results) == NUM_QUERIES


@pytest.mark.parametrize("backend", BACKENDS)
def test_shared_scan_batch(benchmark, backend):
    ctx = _context()
    queries = [BatchQuery(vector, k=20) for vector in ctx["dense"]]

    def run():
        return batch_base_topk(
            ctx["graph"],
            queries,
            hops=2,
            backend=backend,
            csr=ctx["csr"] if backend == "numpy" else None,
        )

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["backend"] = backend
    assert len(results) == NUM_QUERIES


def test_mixed_workload_engine(benchmark):
    ctx = _context()
    queries = [BatchQuery(vector, k=20) for vector in ctx["dense"]] + [
        BatchQuery(vector, k=20) for vector in ctx["sparse"]
    ]
    engine = BatchTopKEngine(ctx["graph"], hops=2)

    def run():
        return engine.run(queries)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == len(queries)
