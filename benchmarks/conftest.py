"""Shared fixtures for the pytest-benchmark suite.

Each figure's graph, score vector, and offline indexes are built once per
module (session-scoped, keyed by figure id) so the benchmark timings measure
query execution only — matching the paper's treatment of the differential
index as a precomputed artifact.

``BENCH_SCALE`` trades fidelity for wall-clock: 0.5 keeps the full suite in
the low minutes on a laptop while preserving every structural property the
algorithms are sensitive to.  Raise it (env var ``REPRO_BENCH_SCALE``) for
larger runs.
"""

from __future__ import annotations

import os
from typing import Dict, NamedTuple

import pytest

from repro.bench.workloads import figure
from repro.graph.diffindex import DifferentialIndex, build_differential_index
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: k at which single-point benchmarks run (mid-range of the paper's sweep).
BENCH_K = 100


class FigureContext(NamedTuple):
    """Prebuilt inputs for one figure's benchmarks."""

    graph: Graph
    scores: list
    score_vector: ScoreVector
    diff_index: DifferentialIndex


_CACHE: Dict[str, FigureContext] = {}


def figure_context(figure_id: str) -> FigureContext:
    """Build (once) and return the shared context for a figure."""
    if figure_id not in _CACHE:
        spec = figure(figure_id)
        graph = spec.build_graph(scale=BENCH_SCALE)
        score_vector = spec.build_scores(graph)
        diff_index = build_differential_index(graph, spec.hops, include_self=True)
        _CACHE[figure_id] = FigureContext(
            graph=graph,
            scores=score_vector.values(),
            score_vector=score_vector,
            diff_index=diff_index,
        )
    return _CACHE[figure_id]


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_k() -> int:
    return BENCH_K


@pytest.fixture(scope="session")
def fig_ctx():
    """Factory fixture: ``fig_ctx("fig1")`` returns the cached context."""
    return figure_context


@pytest.fixture(scope="session")
def run_algorithm():
    """Factory fixture: execute one algorithm against a figure context."""
    from repro.core.backward import backward_topk
    from repro.core.base import base_topk
    from repro.core.forward import forward_topk

    def _run(algorithm: str, ctx: FigureContext, spec):
        if algorithm == "base":
            return base_topk(ctx.graph, ctx.scores, spec)
        if algorithm == "forward":
            return forward_topk(ctx.graph, ctx.scores, spec, diff_index=ctx.diff_index)
        if algorithm == "backward":
            return backward_topk(
                ctx.graph, ctx.scores, spec, sizes=ctx.diff_index.sizes
            )
        if algorithm == "backward-indexfree":
            return backward_topk(ctx.graph, ctx.scores, spec, sizes=None)
        raise ValueError(algorithm)

    return _run
