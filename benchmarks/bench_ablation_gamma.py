"""Ablation abl-gamma: LONA-Backward's distribution threshold.

Sec. IV: "The backward processing does partial distribution on a subset of
nodes whose score is higher than a given threshold gamma."  Low gamma
distributes more nodes (higher distribution cost, tighter bounds, less
verification); high gamma does the opposite.  This sweep runs on the
continuous-mixture variant of Fig. 1, where the trade-off is live — with
binary scores every non-zero node scores 1.0 and gamma collapses to
all-or-nothing.
"""

from __future__ import annotations

import pytest

from repro.core.backward import backward_topk
from repro.core.query import QuerySpec

GAMMAS = (0.1, 0.3, 0.5, 0.8, 1.0)


@pytest.mark.parametrize("gamma", GAMMAS)
def test_backward_gamma(benchmark, fig_ctx, bench_k, gamma):
    ctx = fig_ctx("fig1-mixture")
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: backward_topk(
            ctx.graph, ctx.scores, spec, gamma=gamma, sizes=ctx.diff_index.sizes
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["distributed_nodes"] = result.stats.extra[
        "distributed_nodes"
    ]
    benchmark.extra_info["candidates_verified"] = result.stats.candidates_verified
    assert len(result) == bench_k


def test_backward_gamma_auto(benchmark, fig_ctx, bench_k):
    ctx = fig_ctx("fig1-mixture")
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: backward_topk(
            ctx.graph, ctx.scores, spec, gamma="auto", sizes=ctx.diff_index.sizes
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["resolved_gamma"] = result.stats.extra["gamma"]
    assert len(result) == bench_k
