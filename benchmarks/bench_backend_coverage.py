"""Backend-coverage bench: per-route speedups + batch fusion, as one JSON.

Measures, on the fig1 collaboration workload at the full seed scale, the
python-vs-numpy speedup of every vectorized route — Base, LONA-Forward,
LONA-Backward, weighted base, weighted backward — plus the *batch fusion
gain*: one fused shared scan answering q dense queries vs q per-query
**numpy** Base runs (the fusion must beat even vectorized single-query
execution).  Offline artifacts (differential/size index, CSR views) are
excluded from every timed region.

Two modes:

* ``--write``  — run and (re)write the committed baseline,
  ``benchmarks/BENCH_backend_coverage.json``.
* ``--check``  — run and compare against the committed baseline, emitting
  a GitHub-annotation warning for every number that regressed by more than
  ``--tolerance`` (default 20%).  Exit code stays 0 unless ``--strict``:
  shared CI runners make timings indicative, not gating.

Run with::

    PYTHONPATH=src python benchmarks/bench_backend_coverage.py --write
    PYTHONPATH=src python benchmarks/bench_backend_coverage.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = _BENCH_DIR / "BENCH_backend_coverage.json"

BATCH_QUERIES = 6
K = 100


def measure(scale: float = 1.0) -> dict:
    """Run every timed cell and return the report dict.

    The per-route runners and the best-of-N timing protocol are imported
    from the speedup gate (``bench_ablation_backend``) so the committed
    baseline and the gate can never drift apart.
    """
    sys.path.insert(0, str(_BENCH_DIR))
    from bench_ablation_backend import GATED_ROUTES, _best_of, route_runner

    from repro.bench.workloads import figure
    from repro.core.base import base_topk
    from repro.core.batch import BatchQuery, batch_base_topk
    from repro.core.query import QuerySpec
    from repro.graph.csr import to_csr
    from repro.graph.diffindex import build_differential_index
    from repro.relevance.mixture import MixtureRelevance

    spec = figure("fig1")
    graph = spec.build_graph(scale)
    scores = spec.build_scores(graph).values()
    dense = [
        MixtureRelevance(0.01, zero_fraction=0.0, seed=7 + i).scores(graph)
        for i in range(BATCH_QUERIES)
    ]
    diff_index = build_differential_index(graph, spec.hops, include_self=True)
    diff_index.flat_deltas()
    csr = to_csr(graph, use_numpy=True)
    py = QuerySpec(k=K, aggregate="sum", hops=2, backend="python")
    np_ = py.with_backend("numpy")

    timings: dict = {}
    speedups: dict = {}
    for route in GATED_ROUTES:
        run, _exact = route_runner(
            route, graph, scores, dense[0].values(), diff_index, csr
        )
        t_py, r_py = _best_of(lambda: run(py, None))
        t_np, r_np = _best_of(lambda: run(np_, csr))
        assert r_py.nodes == r_np.nodes, f"{route}: backend answers diverged"
        timings[route] = {"python": t_py, "numpy": t_np}
        speedups[route] = t_py / t_np

    batch = [BatchQuery(vector, k=K) for vector in dense]
    t_per_query, _ = _best_of(
        lambda: [
            base_topk(graph, vector.values(), np_, csr=csr) for vector in dense
        ]
    )
    t_fused, fused_results = _best_of(
        lambda: batch_base_topk(graph, batch, hops=2, backend="numpy", csr=csr)
    )
    assert len(fused_results) == BATCH_QUERIES

    return {
        "figure": "fig1",
        "scale": scale,
        "k": K,
        "speedups": {route: round(value, 3) for route, value in speedups.items()},
        "batch_fusion": {
            "queries": BATCH_QUERIES,
            "per_query_numpy_sec": round(t_per_query, 4),
            "fused_numpy_sec": round(t_fused, 4),
            "gain": round(t_per_query / t_fused, 3),
        },
        "timings_sec": {
            route: {k: round(v, 4) for k, v in cell.items()}
            for route, cell in timings.items()
        },
    }


def check(report: dict, baseline: dict, tolerance: float) -> list:
    """Compare a fresh report against the committed baseline; list warnings."""
    warnings = []
    if report["scale"] != baseline.get("scale"):
        warnings.append(
            f"scale mismatch (baseline {baseline.get('scale')}, "
            f"run {report['scale']}): ratios compared anyway"
        )
    for route, recorded in baseline.get("speedups", {}).items():
        current = report["speedups"].get(route)
        if current is None:
            warnings.append(f"route {route!r} missing from this run")
        elif current < recorded * (1.0 - tolerance):
            warnings.append(
                f"{route}: speedup regressed {recorded:.2f}x -> {current:.2f}x "
                f"(> {tolerance:.0%} drop)"
            )
    recorded_gain = baseline.get("batch_fusion", {}).get("gain")
    current_gain = report["batch_fusion"]["gain"]
    if recorded_gain is not None and current_gain < recorded_gain * (1.0 - tolerance):
        warnings.append(
            f"batch fusion gain regressed {recorded_gain:.2f}x -> "
            f"{current_gain:.2f}x (> {tolerance:.0%} drop)"
        )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="rewrite the baseline")
    mode.add_argument("--check", action="store_true", help="compare to the baseline")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--strict", action="store_true", help="exit 1 on regression")
    args = parser.parse_args(argv)

    report = measure(scale=args.scale)
    print(json.dumps(report, indent=2))

    if args.write:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"::warning::no committed baseline at {BASELINE_PATH}")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    warnings = check(report, baseline, args.tolerance)
    for message in warnings:
        print(f"::warning::backend-coverage bench: {message}")
    if not warnings:
        print("backend-coverage bench: no regression beyond tolerance")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
