"""Ablation abl-scale: speedup trend with graph size.

The paper's graphs are 40k-3M nodes; the bench default is ~2-4k.  The k
values the paper sweeps are therefore far more *selective* there (k=300 of
3M nodes is the top 0.01%).  This ablation grows the collaboration graph at
fixed k to show the LONA-over-Base speedup widening with scale — evidence
that the bench-scale numbers understate, not overstate, the paper-scale
gap.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.graph.neighborhood import NeighborhoodSizeIndex

SCALES = (0.25, 0.5, 1.0)
_CACHE = {}


def _context(scale):
    if scale not in _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=scale)
        vector = spec.build_scores(graph)
        _CACHE[scale] = {
            "graph": graph,
            "scores": vector.values(),
            "sizes": NeighborhoodSizeIndex.exact(graph, 2),
        }
    return _CACHE[scale]


@pytest.mark.parametrize("scale", SCALES)
def test_base_by_scale(benchmark, scale):
    ctx = _context(scale)
    spec = QuerySpec(k=50, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: base_topk(ctx["graph"], ctx["scores"], spec), rounds=3, iterations=1
    )
    benchmark.extra_info["graph_nodes"] = ctx["graph"].num_nodes
    assert len(result) == 50


@pytest.mark.parametrize("scale", SCALES)
def test_backward_by_scale(benchmark, scale):
    ctx = _context(scale)
    spec = QuerySpec(k=50, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: backward_topk(ctx["graph"], ctx["scores"], spec, sizes=ctx["sizes"]),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["graph_nodes"] = ctx["graph"].num_nodes
    assert len(result) == 50
