"""Ablation abl-views: the offline/online spectrum.

Positions the paper's algorithms between the two classical extremes:

* Base — zero precomputation, full scan per query;
* LONA-Backward — zero precomputation, work scales with score sparsity;
* LONA-Forward — score-agnostic structural index, amortized across
  relevance functions;
* Materialized view — full precomputation of F(u) for one fixed relevance
  function (the paper's related work [18]); queries are trivially fast but
  the view dies with any score update.

extra_info records each approach's offline build seconds next to its
online query time.
"""

from __future__ import annotations

import pytest

from repro.core.materialized import MaterializedView
from repro.core.query import QuerySpec

_VIEWS = {}


def _view(ctx):
    key = id(ctx.graph)
    if key not in _VIEWS:
        _VIEWS[key] = MaterializedView(ctx.graph, ctx.scores, hops=2)
    return _VIEWS[key]


@pytest.mark.parametrize("algorithm", ("base", "forward", "backward"))
def test_spectrum_algorithms(benchmark, fig_ctx, run_algorithm, bench_k, algorithm):
    ctx = fig_ctx("fig1")
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: run_algorithm(algorithm, ctx, spec), rounds=3, iterations=1
    )
    benchmark.extra_info["offline_build_sec"] = (
        0.0 if algorithm == "base" else "shared diff index"
    )
    assert len(result) == bench_k


def test_spectrum_materialized(benchmark, fig_ctx, bench_k):
    ctx = fig_ctx("fig1")
    view = _view(ctx)
    result = benchmark.pedantic(
        lambda: view.topk(bench_k, "sum"), rounds=3, iterations=1
    )
    benchmark.extra_info["offline_build_sec"] = view.build_sec
    assert len(result) == bench_k
