"""Ablation abl-hops: query radius h = 1, 2, 3.

The paper benchmarks h=2 ("much harder than 1-hop queries and more popular
than 3+ hop queries").  This ablation shows why: Base's cost grows roughly
with the h-hop ball volume (the m^h |V| cost model of Sec. II), while
LONA-Backward's grows only with the distributed nodes' ball volume.
Runs at a reduced scale because h=3 balls are large.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.graph.neighborhood import NeighborhoodSizeIndex

HOPS = (1, 2, 3)
_CACHE = {}


def _context():
    if not _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.25)
        vector = spec.build_scores(graph)
        _CACHE["graph"] = graph
        _CACHE["scores"] = vector.values()
        _CACHE["sizes"] = {
            h: NeighborhoodSizeIndex.exact(graph, h) for h in HOPS
        }
    return _CACHE


@pytest.mark.parametrize("hops", HOPS)
def test_base_by_hops(benchmark, hops):
    ctx = _context()
    spec = QuerySpec(k=50, aggregate="sum", hops=hops)
    result = benchmark.pedantic(
        lambda: base_topk(ctx["graph"], ctx["scores"], spec), rounds=3, iterations=1
    )
    benchmark.extra_info["edges_scanned"] = result.stats.edges_scanned
    assert len(result) == 50


@pytest.mark.parametrize("hops", HOPS)
def test_backward_by_hops(benchmark, hops):
    ctx = _context()
    spec = QuerySpec(k=50, aggregate="sum", hops=hops)
    result = benchmark.pedantic(
        lambda: backward_topk(
            ctx["graph"], ctx["scores"], spec, sizes=ctx["sizes"][hops]
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["edges_scanned"] = result.stats.edges_scanned
    assert len(result) == 50
