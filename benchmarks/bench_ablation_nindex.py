"""Ablation abl-nindex: exact vs index-free N(v) in LONA-Backward.

The paper advertises backward processing as needing no precomputed index,
yet Eq. 3 consumes the ball size ``N(v)``.  This benchmark compares the two
resolutions on both relevance regimes of Fig. 1:

* ``exact``      — precomputed exact sizes (shared with the forward index);
* ``index-free`` — degree-based upper/lower estimates built in one pass.

With binary scores the two coincide for SUM (the exact shortcut needs no
N at all); with continuous scores the looser estimates mean more
verification work.
"""

from __future__ import annotations

import pytest

from repro.core.backward import backward_topk
from repro.core.query import QuerySpec

CASES = [
    ("fig1", True),
    ("fig1", False),
    ("fig1-mixture", True),
    ("fig1-mixture", False),
]


@pytest.mark.parametrize(
    "figure_id,exact", CASES, ids=[f"{f}-{'exact' if e else 'indexfree'}" for f, e in CASES]
)
def test_backward_nindex(benchmark, fig_ctx, bench_k, figure_id, exact):
    ctx = fig_ctx(figure_id)
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2)
    sizes = ctx.diff_index.sizes if exact else None
    result = benchmark.pedantic(
        lambda: backward_topk(ctx.graph, ctx.scores, spec, sizes=sizes),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["candidates_verified"] = result.stats.candidates_verified
    assert len(result) == bench_k
