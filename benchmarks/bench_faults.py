"""Fault-injection bench: disabled-hook overhead, hedging, recovery latency.

Three measurements back the resilience layer's claims
(``repro/faults/``, PR "robustness"):

1. **Disabled-hook overhead < 1%** — fault points stay in production code
   permanently, so the disabled path (one global load + ``None`` check)
   must be invisible.  Measured as ``crossings x per_call / query_time``
   for one cluster scan on the fig1 workload: per-call cost from a tight
   disabled-path loop, crossing count from an empty counting
   :class:`~repro.faults.FaultPlan` (no rules — counts hits, injects
   nothing), scaled 3x to conservatively cover worker-side crossings the
   coordinator cannot count.
2. **Hedging >= 2x** — with one of two workers delayed 10x (a seeded
   ``delay`` rule matched to ``peer: 1``), round completion with
   ``hedge=True`` must beat ``hedge=False`` by the gate factor: the late
   task is re-issued to the idle fast peer and first-reply-wins.
3. **Recovery latency** (recorded, no gate) — wall-clock cost of
   absorbing ``preset:crash-heavy`` worker deaths across a query burst,
   relative to the same burst fault-free.

All three are sleep/counter-based, not core-count-sensitive, so the gates
are always judged (``gate_evaluated`` is always true).

Two modes::

    PYTHONPATH=src python benchmarks/bench_faults.py --write   # baseline
    PYTHONPATH=src python benchmarks/bench_faults.py --check   # compare

``--check`` warns (GitHub annotations) when a gate fails or hedging
regresses more than ``--tolerance`` against ``benchmarks/BENCH_faults.json``;
``--strict`` turns warnings into exit code 1.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = _BENCH_DIR / "BENCH_faults.json"

WORKERS = 2
K = 10
SEED = 2010
OVERHEAD_GATE = 0.01
HEDGE_GATE = 2.0

#: The slow peer's injected per-task delay (seconds) — ~10x a typical
#: worker task on this workload, and 4x the transport's minimum hedge
#: threshold so the hedger has unambiguous prey.
SLOW_TASK_DELAY = 1.0


def _scores(n: int, seed: int) -> list:
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


# ----------------------------------------------------------------------
# 1. Disabled-hook overhead
# ----------------------------------------------------------------------
def _disabled_per_call_seconds(iterations: int = 200_000) -> float:
    from repro.faults import clear_plan, fault_point

    clear_plan()
    fault_point("bench.disabled", peer=0)  # warm the import path
    started = time.perf_counter()
    for _ in range(iterations):
        fault_point("bench.disabled", peer=0)
    return (time.perf_counter() - started) / iterations


def measure_overhead(scale: float) -> dict:
    from repro.bench.workloads import figure
    from repro.faults import FaultPlan, clear_plan, install_plan
    from repro.session import Network

    spec = figure("fig1")
    graph = spec.build_graph(scale)
    scores = _scores(graph.num_nodes, 11)

    per_call = _disabled_per_call_seconds()

    net = Network(graph, hops=spec.hops)
    net.add_scores("bench", scores)
    net.cluster(workers=WORKERS, min_nodes=0, seed=SEED)
    try:
        # Warm-up spawns workers and ships stores off the clock.
        net.query("bench").limit(K).backend("cluster").run()
        counting = FaultPlan([])  # no rules: counts crossings, injects nothing
        install_plan(counting)
        started = time.perf_counter()
        net.query("bench").limit(K).backend("cluster").run()
        elapsed = time.perf_counter() - started
        clear_plan()
        coordinator_crossings = sum(counting.hits().values())
    finally:
        clear_plan()
        net.close()

    # Workers cross their own hooks (task + frame recv) — unobservable
    # from here, so charge 3x the coordinator count as a conservative
    # ceiling on total crossings.
    crossings = 3 * coordinator_crossings
    overhead_fraction = (crossings * per_call) / elapsed if elapsed else 0.0
    return {
        "per_call_ns": round(per_call * 1e9, 2),
        "coordinator_crossings": coordinator_crossings,
        "charged_crossings": crossings,
        "query_seconds": round(elapsed, 6),
        "overhead_fraction": round(overhead_fraction, 8),
        "gate": OVERHEAD_GATE,
    }


# ----------------------------------------------------------------------
# 2. Hedging vs a straggler peer
# ----------------------------------------------------------------------
def _straggler_round_seconds(hedge: bool, scale: float) -> dict:
    """Median round time with peer 1 delayed; one engine per setting."""
    from repro.bench.workloads import figure
    from repro.faults import ENV_VAR
    from repro.session import Network

    spec = figure("fig1")
    graph = spec.build_graph(scale)
    scores = _scores(graph.num_nodes, 12)

    plan_spec = json.dumps(
        {
            "seed": SEED,
            "rules": [
                {
                    "point": "cluster.worker.task",
                    "kind": "delay",
                    "delay": SLOW_TASK_DELAY,
                    "match": {"peer": 1},
                }
            ],
        }
    )
    saved = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = plan_spec
    try:
        net = Network(graph, hops=spec.hops)
        net.add_scores("bench", scores)
        net.cluster(workers=WORKERS, min_nodes=0, seed=SEED, hedge=hedge)
        try:
            # Warm-up: spawn + store shipping + latency history (the
            # hedger needs a few samples per peer before it computes a
            # threshold).  The straggler is already slow here — that is
            # exactly the history the quantile tracker should see.
            for _ in range(3):
                net.query("bench").limit(K).backend("cluster").run()
            timings = []
            for _ in range(3):
                started = time.perf_counter()
                net.query("bench").limit(K).backend("cluster").run()
                timings.append(time.perf_counter() - started)
            engine_stats = net.cluster().stats()
            return {
                "median_seconds": round(sorted(timings)[len(timings) // 2], 4),
                "timings": [round(t, 4) for t in timings],
                "hedges": engine_stats.get("hedges", 0),
                "hedge_wins": engine_stats.get("hedge_wins", 0),
            }
        finally:
            net.close()
    finally:
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved


def measure_hedging(scale: float) -> dict:
    baseline = _straggler_round_seconds(hedge=False, scale=scale)
    hedged = _straggler_round_seconds(hedge=True, scale=scale)
    speedup = (
        baseline["median_seconds"] / hedged["median_seconds"]
        if hedged["median_seconds"]
        else float("inf")
    )
    return {
        "slow_task_delay": SLOW_TASK_DELAY,
        "no_hedge": baseline,
        "hedge": hedged,
        "speedup": round(speedup, 3),
        "gate": HEDGE_GATE,
    }


# ----------------------------------------------------------------------
# 3. Recovery latency under crash chaos
# ----------------------------------------------------------------------
def _burst_seconds(chaos: bool, scale: float) -> dict:
    from repro.bench.workloads import figure
    from repro.faults import ENV_VAR, clear_plan, install_plan, preset_plan
    from repro.session import Network

    spec = figure("fig1")
    graph = spec.build_graph(scale)
    scores = _scores(graph.num_nodes, 13)

    saved = os.environ.get(ENV_VAR)
    if chaos:
        os.environ[ENV_VAR] = "preset:crash-heavy,seed=0"
        install_plan(preset_plan("crash-heavy", seed=0))
    else:
        os.environ.pop(ENV_VAR, None)
    try:
        net = Network(graph, hops=spec.hops)
        net.add_scores("bench", scores)
        net.cluster(workers=WORKERS, min_nodes=0, seed=SEED)
        try:
            net.query("bench").limit(K).backend("cluster").run()  # spawn
            # crash-heavy kills *every* worker generation at its 4th task
            # (fresh process, fresh plan), so a multi-query burst absorbs
            # several deaths; lift the systematic-crash budget so the
            # bench measures recovery cost, not budget policy.
            net.cluster()._resources["transport"].respawn_budget = 64
            started = time.perf_counter()
            for _ in range(6):
                net.query("bench").limit(K).backend("cluster").run()
            elapsed = time.perf_counter() - started
            stats = net.cluster().stats()
            return {
                "burst_seconds": round(elapsed, 4),
                "respawns": stats.get("respawns", 0),
                "transients": stats.get("transients", 0),
            }
        finally:
            net.close()
    finally:
        clear_plan()
        if saved is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = saved


def measure_recovery(scale: float) -> dict:
    clean = _burst_seconds(chaos=False, scale=scale)
    chaos = _burst_seconds(chaos=True, scale=scale)
    return {
        "preset": "crash-heavy,seed=0",
        "clean": clean,
        "chaos": chaos,
        "recovery_overhead_seconds": round(
            max(0.0, chaos["burst_seconds"] - clean["burst_seconds"]), 4
        ),
    }


# ----------------------------------------------------------------------
def measure(scale: float = 0.5) -> dict:
    overhead = measure_overhead(scale)
    hedging = measure_hedging(scale)
    recovery = measure_recovery(scale)
    return {
        "scale": scale,
        "k": K,
        "workers": WORKERS,
        # Sleep/counter-based: no spare cores required, always judged.
        "gate_evaluated": True,
        "disabled_overhead": overhead,
        "hedging": hedging,
        "recovery": recovery,
    }


def check(report: dict, baseline: dict, tolerance: float) -> list:
    warnings = []
    fraction = report["disabled_overhead"]["overhead_fraction"]
    if fraction >= OVERHEAD_GATE:
        warnings.append(
            f"disabled fault points cost {fraction:.2%} of the seed query "
            f"(gate < {OVERHEAD_GATE:.0%}): "
            f"{report['disabled_overhead']['charged_crossings']} crossings x "
            f"{report['disabled_overhead']['per_call_ns']:.0f}ns"
        )
    speedup = report["hedging"]["speedup"]
    if speedup < HEDGE_GATE:
        warnings.append(
            f"hedging sped the straggler round up only {speedup:.2f}x "
            f"(gate {HEDGE_GATE:.0f}x): "
            f"{report['hedging']['no_hedge']['median_seconds']:.2f}s -> "
            f"{report['hedging']['hedge']['median_seconds']:.2f}s"
        )
    if report["hedging"]["hedge"]["hedges"] < 1:
        warnings.append(
            "the hedged run never hedged a task — the straggler plan or "
            "latency tracking is not doing its job"
        )
    if report["recovery"]["chaos"]["respawns"] < 1:
        warnings.append(
            "the crash-heavy burst absorbed no worker death — the chaos "
            "schedule injected nothing"
        )
    recorded = baseline.get("hedging", {}).get("speedup")
    if recorded and speedup < recorded * (1 - tolerance):
        warnings.append(
            f"hedging speedup regressed {recorded:.2f}x -> {speedup:.2f}x "
            f"(> {tolerance:.0%} drop vs committed baseline)"
        )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="rewrite the baseline")
    mode.add_argument("--check", action="store_true", help="compare + gate")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--tolerance", type=float, default=0.3)
    parser.add_argument("--strict", action="store_true", help="exit 1 on warnings")
    args = parser.parse_args(argv)

    report = measure(scale=args.scale)
    print(json.dumps(report, indent=2))

    if args.write:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    if not baseline:
        print(f"::warning::no committed baseline at {BASELINE_PATH}")
    warnings = check(report, baseline, args.tolerance)
    for message in warnings:
        print(f"::warning::faults bench: {message}")
    if not warnings:
        print("faults bench: all gates passed")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
