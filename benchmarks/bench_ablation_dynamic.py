"""Ablation abl-dynamic: incremental maintenance vs recomputation.

For a dynamic network (the paper's intrusion scenario) the relevant
comparison is the cost of keeping the answer current: repairing the
maintained view after one event vs re-running Base from scratch.  The
benchmark applies a fixed mutation script per round so the work is
identical across rounds.
"""

from __future__ import annotations

import random

from repro.bench.workloads import figure
from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.dynamic import DynamicGraph, MaintainedAggregateView

_STATE = {}


def _fresh_state():
    spec = figure("fig3")  # intrusion workload
    base = spec.build_graph(scale=0.15)
    scores = spec.build_scores(base).values()
    return base, scores


def _script(graph, seed, count):
    """A deterministic list of (op, args) mutations valid for `graph`."""
    rng = random.Random(seed)
    ops = []
    present = set()
    for _ in range(count):
        u, v = rng.randrange(graph.num_nodes), rng.randrange(graph.num_nodes)
        if u != v and not graph.has_edge(u, v) and (u, v) not in present:
            present.add((u, v))
            ops.append((u, v))
    return ops


def test_maintained_view_per_event(benchmark):
    base, scores = _fresh_state()
    inserts = _script(base, seed=3, count=400)

    def run():
        graph = DynamicGraph.from_graph(base)
        view = MaintainedAggregateView(graph, scores, hops=2)
        for u, v in inserts[:25]:
            view.add_edge(u, v)
        return view.topk(20, "sum")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == 20


def test_rescan_per_event(benchmark):
    base, scores = _fresh_state()
    inserts = _script(base, seed=3, count=400)

    def run():
        graph = DynamicGraph.from_graph(base)
        last = None
        for u, v in inserts[:25]:
            graph.add_edge(u, v)
            last = base_topk(graph, scores, QuerySpec(k=20, hops=2))
        return last

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result is not None and len(result) == 20
