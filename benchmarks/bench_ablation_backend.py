"""Ablation: pure-Python vs vectorized-numpy execution backend.

Two parts:

* pytest-benchmark cells timing every (algorithm, backend) pair on the
  fig1 (collaboration, SUM) and fig2 (citation, SUM) workloads at the
  bench scale, so backend regressions show up in the recorded timings;
* a speedup gate at the full seed scale (``scale=1.0``, independent of
  ``REPRO_BENCH_SCALE``): the numpy backend must answer the fig1 top-k SUM
  query at least 3x faster than the Python backend for both LONA
  algorithms, with entry-for-entry identical results.  Offline artifacts
  (differential index, CSR view, flat deltas) are excluded from the timed
  region, matching the paper's treatment of precomputation.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ablation_backend.py -v
"""

from __future__ import annotations

import time

import pytest

from repro.core.backward import backward_topk
from repro.core.forward import forward_topk
from repro.core.query import QuerySpec

numpy = pytest.importorskip("numpy")

BACKENDS = ("python", "numpy")
ALGORITHMS = ("forward", "backward")


@pytest.mark.parametrize("figure_id", ["fig1", "fig2"])
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backend_ablation(benchmark, fig_ctx, run_algorithm, bench_k, figure_id, backend, algorithm):
    ctx = fig_ctx(figure_id)
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2, backend=backend)
    result = benchmark.pedantic(
        lambda: run_algorithm(algorithm, ctx, spec), rounds=3, iterations=1
    )
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["nodes_evaluated"] = result.stats.nodes_evaluated
    benchmark.extra_info["graph_nodes"] = ctx.graph.num_nodes
    assert result.stats.backend == backend
    assert len(result) == bench_k


@pytest.fixture(scope="module")
def full_scale_fig1():
    """fig1 at the full seed scale with all offline artifacts prebuilt."""
    from repro.bench.workloads import figure
    from repro.graph.csr import to_csr
    from repro.graph.diffindex import build_differential_index

    spec = figure("fig1")
    graph = spec.build_graph(1.0)
    scores = spec.build_scores(graph).values()
    diff_index = build_differential_index(graph, spec.hops, include_self=True)
    csr = to_csr(graph, use_numpy=True)
    diff_index.flat_deltas()
    return graph, scores, diff_index, csr


def _best_of(fn, reps=3):
    best_time = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        candidate = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_time, result = elapsed, candidate
    return best_time, result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_numpy_backend_3x_speedup_at_full_scale(full_scale_fig1, algorithm):
    """Acceptance gate: >= 3x on the fig1 collaboration-SUM workload."""
    graph, scores, diff_index, csr = full_scale_fig1
    spec_py = QuerySpec(k=100, aggregate="sum", hops=2, backend="python")
    spec_np = spec_py.with_backend("numpy")

    if algorithm == "forward":
        def run(spec, csr_arg):
            return forward_topk(graph, scores, spec, diff_index=diff_index, csr=csr_arg)
    else:
        def run(spec, csr_arg):
            return backward_topk(graph, scores, spec, sizes=diff_index.sizes, csr=csr_arg)

    python_time, python_result = _best_of(lambda: run(spec_py, None))
    numpy_time, numpy_result = _best_of(lambda: run(spec_np, csr))

    # Binary relevance makes every aggregate an exact small integer, so the
    # two backends must agree entry-for-entry, bit-for-bit.
    assert python_result.entries == numpy_result.entries
    speedup = python_time / numpy_time
    assert speedup >= 3.0, (
        f"{algorithm}: numpy backend only {speedup:.2f}x faster "
        f"({python_time * 1000:.1f}ms python vs {numpy_time * 1000:.1f}ms numpy)"
    )
