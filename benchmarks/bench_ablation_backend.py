"""Ablation: pure-Python vs vectorized-numpy execution backend.

Two parts:

* pytest-benchmark cells timing every (algorithm, backend) pair on the
  fig1 (collaboration, SUM) and fig2 (citation, SUM) workloads at the
  bench scale, so backend regressions show up in the recorded timings;
* a speedup gate at the full seed scale (``scale=1.0``, independent of
  ``REPRO_BENCH_SCALE``): the numpy backend must answer the fig1 top-k SUM
  query at least 3x faster than the Python backend for *every* vectorized
  route — Base, LONA-Forward, LONA-Backward, and the weighted base /
  backward variants — with identical node selections.  Offline artifacts
  (differential index, size index, CSR view, flat deltas) are excluded
  from the timed region, matching the paper's treatment of precomputation.
  LONA-Backward routes run on the workload that actually exercises them:
  the sparse binary fig1 scores take the exact-distribution shortcut, so
  the weighted gate uses the dense mixture variant (real verification).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_ablation_backend.py -v
"""

from __future__ import annotations

import time

import pytest

from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.forward import forward_topk
from repro.core.query import QuerySpec
from repro.core.weighted import weighted_backward_topk, weighted_base_topk

numpy = pytest.importorskip("numpy")

BACKENDS = ("python", "numpy")
ALGORITHMS = ("base", "forward", "backward")

#: Routes the full-scale 3x gate covers (superset of the bench cells).
GATED_ROUTES = (
    "base",
    "forward",
    "backward",
    "weighted-base",
    "weighted-backward",
)


@pytest.mark.parametrize("figure_id", ["fig1", "fig2"])
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backend_ablation(benchmark, fig_ctx, run_algorithm, bench_k, figure_id, backend, algorithm):
    ctx = fig_ctx(figure_id)
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2, backend=backend)
    result = benchmark.pedantic(
        lambda: run_algorithm(algorithm, ctx, spec), rounds=3, iterations=1
    )
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["nodes_evaluated"] = result.stats.nodes_evaluated
    benchmark.extra_info["graph_nodes"] = ctx.graph.num_nodes
    assert result.stats.backend == backend
    assert len(result) == bench_k


@pytest.fixture(scope="module")
def full_scale_fig1():
    """fig1 at the full seed scale with all offline artifacts prebuilt."""
    from repro.bench.workloads import figure
    from repro.graph.csr import to_csr
    from repro.graph.diffindex import build_differential_index
    from repro.relevance.mixture import MixtureRelevance

    spec = figure("fig1")
    graph = spec.build_graph(1.0)
    scores = spec.build_scores(graph).values()
    dense_scores = (
        MixtureRelevance(0.01, zero_fraction=0.0, seed=7).scores(graph).values()
    )
    diff_index = build_differential_index(graph, spec.hops, include_self=True)
    csr = to_csr(graph, use_numpy=True)
    diff_index.flat_deltas()
    return graph, scores, dense_scores, diff_index, csr


def _best_of(fn, reps=3):
    best_time = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        candidate = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best_time:
            best_time, result = elapsed, candidate
    return best_time, result


def route_runner(route, graph, scores, dense_scores, diff_index, csr):
    """``(run(spec, csr_arg), exact)`` for one gated route.

    ``exact`` flags workloads whose values are exact small rationals (so
    the backends must agree entry-for-entry, bit-for-bit); the dense
    continuous workloads compare node selections instead.
    """
    if route == "forward":
        return (
            lambda spec, csr_arg: forward_topk(
                graph, scores, spec, diff_index=diff_index, csr=csr_arg
            ),
            True,
        )
    if route == "backward":
        return (
            lambda spec, csr_arg: backward_topk(
                graph, scores, spec, sizes=diff_index.sizes, csr=csr_arg
            ),
            True,
        )
    if route == "base":
        return (
            lambda spec, csr_arg: base_topk(graph, scores, spec, csr=csr_arg),
            True,
        )
    if route == "weighted-base":
        return (
            lambda spec, csr_arg: weighted_base_topk(
                graph, dense_scores, spec, csr=csr_arg
            ),
            False,
        )
    if route == "weighted-backward":
        return (
            lambda spec, csr_arg: weighted_backward_topk(
                graph, dense_scores, spec, sizes=diff_index.sizes, csr=csr_arg
            ),
            False,
        )
    raise ValueError(route)


@pytest.mark.parametrize("route", GATED_ROUTES)
def test_numpy_backend_3x_speedup_at_full_scale(full_scale_fig1, route):
    """Acceptance gate: >= 3x on the fig1 collaboration workloads."""
    graph, scores, dense_scores, diff_index, csr = full_scale_fig1
    spec_py = QuerySpec(k=100, aggregate="sum", hops=2, backend="python")
    spec_np = spec_py.with_backend("numpy")
    run, exact = route_runner(route, graph, scores, dense_scores, diff_index, csr)

    python_time, python_result = _best_of(lambda: run(spec_py, None))
    numpy_time, numpy_result = _best_of(lambda: run(spec_np, csr))

    if exact:
        # Binary relevance makes every aggregate an exact small rational,
        # so the two backends must agree entry-for-entry, bit-for-bit.
        assert python_result.entries == numpy_result.entries
    else:
        assert python_result.nodes == numpy_result.nodes
    speedup = python_time / numpy_time
    assert speedup >= 3.0, (
        f"{route}: numpy backend only {speedup:.2f}x faster "
        f"({python_time * 1000:.1f}ms python vs {numpy_time * 1000:.1f}ms numpy)"
    )
