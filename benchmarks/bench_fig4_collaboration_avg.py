"""Benchmark for Fig. 4 — Collaboration (AVG).

Regenerates the fig4 series of the paper at the benchmark scale: runtime of
Base / LONA-Forward / LONA-Backward for the top-k avg query (collaboration network, r=0.01).
The paper sweeps k on the x-axis; pytest-benchmark measures the mid-range
point k=100, and ``python -m repro.bench.figures --figure 4`` prints the
full sweep.

Expected shape (see EXPERIMENTS.md): LONA-Backward well below Base
(paper: up to 10x), LONA-Forward at or below Base.
"""

from __future__ import annotations

import pytest

from repro.core.query import QuerySpec

ALGORITHMS = ("base", "forward", "backward")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig4_collaboration_avg(benchmark, fig_ctx, run_algorithm, bench_k, algorithm):
    ctx = fig_ctx("fig4")
    spec = QuerySpec(k=bench_k, aggregate="avg", hops=2)
    result = benchmark.pedantic(
        lambda: run_algorithm(algorithm, ctx, spec), rounds=3, iterations=1
    )
    benchmark.extra_info["nodes_evaluated"] = result.stats.nodes_evaluated
    benchmark.extra_info["pruned_nodes"] = result.stats.pruned_nodes
    benchmark.extra_info["graph_nodes"] = ctx.graph.num_nodes
    assert len(result) == bench_k
