"""Ablation abl-rdbms: the relational self-join plan vs graph Base.

Sec. II: "The performance of using a relational query engine to process
aggregation queries over networks is often costly.  For 2-hop queries, it
has to self-join two gigantic edge tables."  This benchmark measures that
claim with the mini column-store engine: the h=2 plan materializes one row
per 2-hop *walk* before DISTINCT collapses them to distinct pairs, so the
intermediate volume (reported in extra_info) dwarfs the graph traversal's
edge scans.  Runs at a small scale — that blow-up is the point.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.relational.engine import relational_topk

_CACHE = {}


def _context():
    if not _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.1)
        vector = spec.build_scores(graph)
        _CACHE["graph"] = graph
        _CACHE["scores"] = vector.values()
    return _CACHE


@pytest.mark.parametrize("hops", (1, 2))
def test_graph_base(benchmark, hops):
    ctx = _context()
    spec = QuerySpec(k=20, aggregate="sum", hops=hops)
    result = benchmark.pedantic(
        lambda: base_topk(ctx["graph"], ctx["scores"], spec), rounds=3, iterations=1
    )
    benchmark.extra_info["edges_scanned"] = result.stats.edges_scanned
    assert len(result) == 20


@pytest.mark.parametrize("hops", (1, 2))
def test_relational_plan(benchmark, hops):
    ctx = _context()
    spec = QuerySpec(k=20, aggregate="sum", hops=hops)
    result = benchmark.pedantic(
        lambda: relational_topk(ctx["graph"], ctx["scores"], spec),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["rows_scanned"] = result.stats.extra["rows_scanned"]
    benchmark.extra_info["join_matches"] = result.stats.extra["join_matches"]
    assert len(result) == 20
