"""Cluster-backend comm bench: θ-shipping volume vs naive and vs BSP.

The socket cluster's claim is not wall-clock on one box (two localhost
workers cannot beat one process on one core) — it is **bytes on the
wire**.  Candidate entries ship as flat int64+float64 pairs, 16 bytes
each, so shipped volume is deterministic and measurable on any machine,
including single-CPU CI runners; both gates below are byte-based and are
therefore always evaluated (``gate_evaluated`` is always true).

On the fig1 collaboration graph with zipf-skewed scores (the regime the
paper's threshold algorithms target — a few hub neighborhoods hold most
of the mass), one base scan at ``k=10`` over 4 bfs shards is run twice:

* ``ship_policy="threshold"`` — per-round θ-shipping plus adaptive
  per-peer quotas (the default);
* ``ship_policy="all"`` — the naive baseline: every shard ships its full
  local top-k, exactly the merge the BSP simulator models.

Gates:

1. **θ-reduction >= 2x** — the threshold run must ship at most half the
   candidate bytes of the naive run on this skewed workload.
2. **BSP oracle within 1.5x** — the naive run's measured candidate bytes
   must land within 1.5x (either side) of the BSP simulator's
   ``distributed_topk`` prediction (``candidates_shipped * 16`` over the
   identical 4-part bfs partition).  The simulator is the validation
   oracle for the real transport: if the socket path ships a materially
   different volume than the model, one of the two is wrong.

Two modes::

    PYTHONPATH=src python benchmarks/bench_cluster.py --write   # baseline
    PYTHONPATH=src python benchmarks/bench_cluster.py --check   # compare

``--check`` warns (GitHub annotations) when a gate fails or the θ
reduction regresses more than ``--tolerance`` against
``benchmarks/BENCH_cluster.json``; ``--strict`` turns warnings into exit
code 1.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = _BENCH_DIR / "BENCH_cluster.json"

SCALE = 1.0
K = 10
WORKERS = 2
SHARDS = 4
SEED = 2010
THETA_GATE = 2.0
BSP_GATE = 1.5


def _zipf_scores(n: int, *, exponent: float = 1.1, seed: int = 7) -> list:
    """Zipf-ranked positive scores assigned to a random node permutation."""
    rng = random.Random(seed)
    ranked = [1.0 / (rank + 1.0) ** exponent for rank in range(n)]
    nodes = list(range(n))
    rng.shuffle(nodes)
    scores = [0.0] * n
    for rank, node in enumerate(nodes):
        scores[node] = ranked[rank]
    return scores


def _run_cluster_scan(graph, scores, hops: int, ship_policy: str) -> dict:
    from repro.session import Network

    net = Network(graph, hops=hops)
    net.add_scores("bench", scores)
    net.cluster(
        workers=WORKERS,
        shards=SHARDS,
        min_nodes=0,
        seed=SEED,
        ship_policy=ship_policy,
    )
    try:
        result = (
            net.query("bench").limit(K).algorithm("base")
            .backend("cluster").run()
        )
        reference = (
            net.query("bench").limit(K).algorithm("base")
            .backend("numpy").run()
        )
        assert [e[0] for e in result.entries] == [
            e[0] for e in reference.entries
        ], f"ship_policy={ship_policy}: cluster and numpy answers diverged"
        extra = result.stats.extra
        return {
            "candidates_shipped": extra["candidates_shipped"],
            "candidates_pruned": extra["candidates_pruned"],
            "shipped_candidate_bytes": extra["shipped_candidate_bytes"],
            "comm_rounds": extra["comm_rounds"],
            "bytes_sent": extra["bytes_sent"],
            "bytes_received": extra["bytes_received"],
        }
    finally:
        net.close()


def _bsp_prediction(graph, scores, hops: int) -> dict:
    from repro.cluster.engine import ENTRY_BYTES
    from repro.core.query import QuerySpec
    from repro.distributed.coordinator import distributed_topk
    from repro.parallel.shards import build_shard_plan

    plan = build_shard_plan(graph, SHARDS, partitioner="bfs", seed=SEED)
    result = distributed_topk(
        graph,
        scores,
        QuerySpec(k=K, hops=hops),
        partition=plan.partition,
    )
    shipped = result.stats.extra["candidates_shipped"]
    return {
        "candidates_shipped": shipped,
        "predicted_candidate_bytes": shipped * ENTRY_BYTES,
        "supersteps": result.stats.extra.get("supersteps"),
    }


def measure(scale: float = SCALE) -> dict:
    from repro.bench.workloads import figure

    spec = figure("fig1")
    graph = spec.build_graph(scale)
    scores = _zipf_scores(graph.num_nodes)

    threshold = _run_cluster_scan(graph, scores, spec.hops, "threshold")
    naive = _run_cluster_scan(graph, scores, spec.hops, "all")
    bsp = _bsp_prediction(graph, scores, spec.hops)

    theta_reduction = (
        naive["shipped_candidate_bytes"] / threshold["shipped_candidate_bytes"]
        if threshold["shipped_candidate_bytes"]
        else float("inf")
    )
    bsp_ratio = (
        naive["shipped_candidate_bytes"] / bsp["predicted_candidate_bytes"]
        if bsp["predicted_candidate_bytes"]
        else float("inf")
    )
    return {
        "scale": scale,
        "k": K,
        "workers": WORKERS,
        "shards": SHARDS,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "theta_gate": THETA_GATE,
        "bsp_gate": BSP_GATE,
        # Byte counters need no spare cores — always judged, even on 1 CPU.
        "gate_evaluated": True,
        "threshold": threshold,
        "naive": naive,
        "bsp": bsp,
        "theta_reduction": round(theta_reduction, 3),
        "bsp_ratio": round(bsp_ratio, 3),
    }


def check(report: dict, baseline: dict, tolerance: float) -> list:
    """Gate + baseline comparison; returns warning strings."""
    warnings = []
    reduction = report["theta_reduction"]
    if reduction < THETA_GATE:
        warnings.append(
            f"θ-shipping shipped only {reduction:.2f}x fewer candidate "
            f"bytes than ship_policy='all' (gate {THETA_GATE:.0f}x): "
            f"{report['threshold']['shipped_candidate_bytes']:.0f} vs "
            f"{report['naive']['shipped_candidate_bytes']:.0f}"
        )
    ratio = report["bsp_ratio"]
    if not (1.0 / BSP_GATE <= ratio <= BSP_GATE):
        warnings.append(
            f"measured naive candidate bytes are {ratio:.2f}x the BSP "
            f"simulator's prediction (gate: within {BSP_GATE:.1f}x): "
            f"{report['naive']['shipped_candidate_bytes']:.0f} measured vs "
            f"{report['bsp']['predicted_candidate_bytes']:.0f} predicted"
        )
    recorded = baseline.get("theta_reduction")
    if recorded and reduction < recorded * (1 - tolerance):
        warnings.append(
            f"θ reduction regressed {recorded:.2f}x -> {reduction:.2f}x "
            f"(> {tolerance:.0%} drop vs committed baseline)"
        )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="rewrite the baseline")
    mode.add_argument("--check", action="store_true", help="compare + gate")
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--strict", action="store_true", help="exit 1 on warnings")
    args = parser.parse_args(argv)

    report = measure(scale=args.scale)
    print(json.dumps(report, indent=2))

    if args.write:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    if not baseline:
        print(f"::warning::no committed baseline at {BASELINE_PATH}")
    warnings = check(report, baseline, args.tolerance)
    for message in warnings:
        print(f"::warning::cluster bench: {message}")
    if not warnings:
        print("cluster bench: all gates passed")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
