"""Bench: the serving scheduler must amortize concurrent identical-shape queries.

The acceptance gate for the serving layer: N concurrent queries of the
same shape (different relevance functions — the paper's "heavy query
workloads"), submitted through ``Network.service(workers=...)``, must run
**>= 2x faster** than the same N queries as sequential ``.run()`` calls at
full seed scale, with entry-for-entry identical results.  The speedup is
*coalescing*, not thread parallelism: a held worker pool lets the queue
fill, then one worker drains all compatible requests into a single fused
batch shared scan (PR 3's ``np.add.reduceat`` kernel), so each node block
is expanded once for the whole group.

The fig1 workload uses binary blacking relevance, so every aggregate is an
exact small-integer float and reduction order cannot introduce last-ULP
drift — "identical" means ``==``, not approx.

The pytest-benchmark pair below the gate records both paths for the
perf-artifact trajectory.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.workloads import figure
from repro.core.backends import numpy_available
from repro.relevance.mixture import MixtureRelevance
from repro.session import Network

_CACHE = {}
NUM_QUERIES = 8
K = 100
#: Full seed scale: the gate must hold on the paper-sized workload.
GATE_SCALE = 1.0
SPEEDUP_GATE = 2.0


def _context():
    if not _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=GATE_SCALE)
        net = Network(graph, hops=spec.hops)
        for i in range(NUM_QUERIES):
            # Dense binary relevance: density 0.5 routes auto to Base (the
            # shape shared scans amortize), and every aggregate is an exact
            # small-integer float, so coalesced == sequential bit-for-bit.
            net.add_scores(
                f"q{i}", MixtureRelevance(0.5, binary=True, seed=300 + i)
            )
        # Warm the shared artifacts (CSR view, size index) so both sides
        # measure query execution, not one-time cache builds.
        net.query("q0").limit(K).run()
        _CACHE["net"] = net
    return _CACHE


def _sequential(net):
    return [net.query(f"q{i}").limit(K).run() for i in range(NUM_QUERIES)]


def _concurrent(net):
    # cached=False: the gate measures scheduling + execution, never the
    # result cache (which would trivialize repeat rounds).
    handles = [
        net.query(f"q{i}").limit(K).submit(cached=False)
        for i in range(NUM_QUERIES)
    ]
    return [handle.result(timeout=120) for handle in handles]


@pytest.mark.skipif(not numpy_available(), reason="fused shared scan needs numpy")
def test_concurrent_coalesced_2x_over_sequential():
    net = _context()["net"]
    sequential_times = []
    concurrent_times = []
    service = net.service(workers=2)
    try:
        baseline = _sequential(net)
        # Interleave rounds so drift (thermal, GC) hits both paths evenly.
        for _ in range(3):
            start = time.perf_counter()
            seq_results = _sequential(net)
            sequential_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            con_results = _concurrent(net)
            concurrent_times.append(time.perf_counter() - start)

            # Entry-for-entry identity, every query, every round.
            for a, b, c in zip(baseline, seq_results, con_results):
                assert a.entries == b.entries == c.entries
        assert service.stats()["coalesced_queries"] > 0, (
            "scheduler never coalesced — the gate would be measuring threads"
        )
    finally:
        service.shutdown()
    sequential = min(sequential_times)
    concurrent = min(concurrent_times)
    speedup = sequential / concurrent
    assert speedup >= SPEEDUP_GATE, (
        f"coalesced serving too slow: {NUM_QUERIES} concurrent queries took "
        f"{concurrent * 1e3:.1f} ms vs {sequential * 1e3:.1f} ms sequential "
        f"({speedup:.2f}x < {SPEEDUP_GATE}x)"
    )


def test_sequential_runs(benchmark):
    net = _context()["net"]
    results = benchmark.pedantic(lambda: _sequential(net), rounds=3, iterations=1)
    assert len(results) == NUM_QUERIES


@pytest.mark.skipif(not numpy_available(), reason="fused shared scan needs numpy")
def test_concurrent_coalesced(benchmark):
    net = _context()["net"]
    net.service(workers=2)
    try:
        results = benchmark.pedantic(
            lambda: _concurrent(net), rounds=3, iterations=1
        )
    finally:
        net.service().shutdown()
    assert len(results) == NUM_QUERIES
