"""Ablation abl-order: LONA-Forward queue-ordering strategies.

Algorithm 1 leaves the queue order unspecified; this benchmark quantifies
the choice on the Fig. 1 workload.  ``ubound`` (descending static bound)
raises the top-k threshold fastest and is the library default; ``random``
is the pessimistic control.
"""

from __future__ import annotations

import pytest

from repro.core.forward import forward_topk
from repro.core.ordering import ORDERINGS
from repro.core.query import QuerySpec


@pytest.mark.parametrize("ordering", ORDERINGS)
def test_forward_ordering(benchmark, fig_ctx, bench_k, ordering):
    ctx = fig_ctx("fig1")
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: forward_topk(
            ctx.graph,
            ctx.scores,
            spec,
            diff_index=ctx.diff_index,
            ordering=ordering,
            seed=7,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["nodes_evaluated"] = result.stats.nodes_evaluated
    benchmark.extra_info["pruned_nodes"] = result.stats.pruned_nodes
    assert len(result) == bench_k
