"""Ablation abl-mixture: binary vs continuous relevance regimes.

The paper's mixture function is described but not fully parameterized; the
two defensible readings bracket the algorithms' behaviour (EXPERIMENTS.md
discusses this in depth):

* **binary** (the default figure regime): scores are 0/1 with ratio r.
  Backward's zero-skipping shines (the exact-shortcut path, no
  verification); Forward's Eq. 1 bound is far above the tiny thresholds
  and prunes only cheap nodes.
* **mixture** (continuous): every node has an exponential-tail score.
  Thresholds are large relative to ball sizes, so Forward's static and
  differential pruning engage; Backward must verify candidates.

This benchmark runs both regimes side by side on the collaboration
workload.
"""

from __future__ import annotations

import pytest

from repro.core.query import QuerySpec

REGIMES = ("fig1", "fig1-mixture")
ALGORITHMS = ("base", "forward", "backward")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("figure_id", REGIMES, ids=("binary", "mixture"))
def test_relevance_regimes(
    benchmark, fig_ctx, run_algorithm, bench_k, figure_id, algorithm
):
    ctx = fig_ctx(figure_id)
    spec = QuerySpec(k=bench_k, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: run_algorithm(algorithm, ctx, spec), rounds=3, iterations=1
    )
    benchmark.extra_info["score_density"] = ctx.score_vector.density
    benchmark.extra_info["nodes_evaluated"] = result.stats.nodes_evaluated
    assert len(result) == bench_k
