"""Ablation abl-dist: partitioned BSP execution and partitioner quality.

The paper's conclusion announces a partition-and-distribute infrastructure;
this benchmark exercises the simulated build of it.  Wall-clock in a
single-process simulation is *not* the interesting number — the remote
message count (the would-be network traffic) is, and it is reported in
extra_info.  BFS region-growing should cut remote messages substantially
relative to hash partitioning at equal answer quality.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.distributed.coordinator import DistributedTopKEngine

_CACHE = {}


def _context():
    if not _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.25)
        vector = spec.build_scores(graph)
        _CACHE["graph"] = graph
        _CACHE["scores"] = vector.values()
    return _CACHE


@pytest.mark.parametrize("partitioner", ("hash", "bfs"))
@pytest.mark.parametrize("num_parts", (2, 8))
def test_distributed_topk(benchmark, partitioner, num_parts):
    ctx = _context()
    engine = DistributedTopKEngine(
        ctx["graph"],
        ctx["scores"],
        hops=2,
        num_parts=num_parts,
        partitioner=partitioner,
        seed=11,
    )
    result = benchmark.pedantic(lambda: engine.topk(50, "sum"), rounds=3, iterations=1)
    benchmark.extra_info["messages_remote"] = result.stats.extra["messages_remote"]
    benchmark.extra_info["messages_local"] = result.stats.extra["messages_local"]
    benchmark.extra_info["edge_cut"] = result.stats.extra["edge_cut"]
    assert len(result) == 50
