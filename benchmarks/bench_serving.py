"""Serving bench: closed-loop load through the HTTP front door.

Drives the full network path — wire protocol, replica routing, admission
control — with concurrent closed-loop clients against a live
:class:`repro.serving.QueryServer`, and records what the front door is for:

* **throughput** (successful queries/sec) and latency (p50/p99 of
  successful requests) under concurrency;
* **shed behavior**: a mixed workload of cheap (planner-cheap backward)
  and expensive (pinned exhaustive base) queries, with the cost budget set
  so that under load the expensive class is rejected while the cheap class
  keeps flowing.

The acceptance gate encodes the load-shedding contract: **under saturating
closed-loop load, shedding must engage before tail latency blows up** —
either the shed counter is nonzero, or p99 stayed within ``GATE_P99`` x
the unloaded p50.  A front door that neither sheds nor holds its tail is
failing at its one job.

Clients back off on typed admission errors using the server-provided
``retry_after`` — the wire contract this bench also exercises end to end.

Two modes::

    PYTHONPATH=src python benchmarks/bench_serving.py --write   # baseline
    PYTHONPATH=src python benchmarks/bench_serving.py --check   # compare

``--check`` warns (GitHub annotations) when throughput regresses more than
``--tolerance`` against ``benchmarks/BENCH_serving.json`` or the gate
fails; ``--strict`` turns warnings into exit code 1.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = _BENCH_DIR / "BENCH_serving.json"

K_CHEAP = 10
K_EXPENSIVE = 100
GATE_P99 = 5.0


def _percentile(samples, q):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class _ClosedLoopClient(threading.Thread):
    """One closed-loop client: issue, wait, back off on admission errors."""

    def __init__(self, url, stop_at, expensive):
        super().__init__(daemon=True)
        self.url = url
        self.stop_at = stop_at
        self.expensive = expensive
        self.latencies = []
        self.shed = 0
        self.rate_limited = 0
        self.errors = 0

    def run(self):
        import repro
        from repro.errors import RateLimitedError, ServiceOverloadedError

        with repro.RemoteNetwork(self.url, tenant=self.name) as remote:
            builder = remote.query("bench")
            query = (
                builder.limit(K_EXPENSIVE).algorithm("base")
                if self.expensive
                else builder.limit(K_CHEAP).algorithm("backward")
            )
            while time.monotonic() < self.stop_at:
                start = time.perf_counter()
                try:
                    query.run()
                except ServiceOverloadedError as exc:
                    self.shed += 1
                    time.sleep(min(exc.retry_after or 0.05, 0.25))
                except RateLimitedError as exc:
                    self.rate_limited += 1
                    time.sleep(min(exc.retry_after or 0.05, 0.25))
                except Exception:
                    self.errors += 1
                else:
                    self.latencies.append(time.perf_counter() - start)


def measure(scale: float, clients: int, duration: float) -> dict:
    from repro.bench.workloads import figure
    from repro.serving import QueryServer, ServerConfig
    from repro.session import Network

    spec = figure("fig1")
    graph = spec.build_graph(scale)
    net = Network(graph, hops=spec.hops)
    net.add_scores("bench", spec.build_scores(graph))

    # Small queues on purpose: capacity = max_pending x replicas, and the
    # closed-loop clients must be able to push occupancy past the
    # watermark or the shed path never runs.
    config = ServerConfig(
        replicas=2,
        service={"workers": 1, "max_pending": 2},
        shed_watermark=0.25,
    )
    server = QueryServer(net, config).start()
    try:
        from repro.core.request import QueryRequest

        cheap_cost = server._cost_of(
            QueryRequest(k=K_CHEAP, score="bench", algorithm="backward",
                         hops=net.hops)
        )
        expensive_cost = server._cost_of(
            QueryRequest(k=K_EXPENSIVE, score="bench", algorithm="base",
                         hops=net.hops)
        )
        # Budget at the watermark == the expensive cost: past the
        # watermark the expensive class sheds first, the cheap class only
        # near saturation.
        server.admission._cost_limit = float(expensive_cost)

        import repro

        with repro.RemoteNetwork(server.url) as warm:
            query = warm.query("bench").limit(K_CHEAP).algorithm("backward")
            unloaded = []
            for _ in range(20):
                start = time.perf_counter()
                query.run(cached=False)
                unloaded.append(time.perf_counter() - start)
        unloaded_p50 = _percentile(unloaded, 0.5)

        stop_at = time.monotonic() + duration
        # 3:1 cheap:expensive — a mostly-well-behaved population with a
        # heavy minority, the shape shedding exists for.
        fleet = [
            _ClosedLoopClient(server.url, stop_at, expensive=(i % 4 == 3))
            for i in range(clients)
        ]
        wall_start = time.perf_counter()
        for client in fleet:
            client.start()
        for client in fleet:
            client.join(timeout=duration + 60)
        wall = time.perf_counter() - wall_start
        admission = server.admission.stats()
    finally:
        server.close()
        net.close()

    latencies = [s for c in fleet for s in c.latencies]
    served = len(latencies)
    shed = sum(c.shed for c in fleet)
    rate_limited = sum(c.rate_limited for c in fleet)
    errors = sum(c.errors for c in fleet)
    attempts = served + shed + rate_limited + errors
    p50 = _percentile(latencies, 0.5)
    p99 = _percentile(latencies, 0.99)
    gate_ok = shed > 0 or (
        p50 is not None and p99 is not None and p99 <= GATE_P99 * unloaded_p50
    )
    return {
        "scale": scale,
        "clients": clients,
        "duration_sec": duration,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "replicas": 2,
        "costs": {
            "cheap": round(cheap_cost, 1),
            "expensive": round(expensive_cost, 1),
        },
        "unloaded_p50_ms": round(unloaded_p50 * 1000, 2),
        "loaded": {
            "qps": round(served / wall, 1),
            "p50_ms": round(p50 * 1000, 2) if p50 is not None else None,
            "p99_ms": round(p99 * 1000, 2) if p99 is not None else None,
            "served": served,
            "shed": shed,
            "rate_limited": rate_limited,
            "errors": errors,
            "shed_rate": round(shed / attempts, 3) if attempts else 0.0,
        },
        "admission": admission,
        "gate": {
            "rule": f"shed > 0 or p99 <= {GATE_P99:.0f} x unloaded p50",
            "ok": gate_ok,
        },
    }


def check(report: dict, baseline: dict, tolerance: float) -> list:
    warnings = []
    if not report["gate"]["ok"]:
        warnings.append(
            f"shed gate failed: {report['loaded']['shed']} shed, "
            f"p99 {report['loaded']['p99_ms']}ms vs unloaded p50 "
            f"{report['unloaded_p50_ms']}ms (rule: {report['gate']['rule']})"
        )
    if report["loaded"]["errors"]:
        warnings.append(
            f"{report['loaded']['errors']} untyped client errors under load"
        )
    recorded = baseline.get("loaded", {}).get("qps")
    current = report["loaded"]["qps"]
    if recorded and current < recorded * (1 - tolerance):
        warnings.append(
            f"serving throughput regressed {recorded} -> {current} qps "
            f"(> {tolerance:.0%} drop)"
        )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="rewrite the baseline")
    mode.add_argument("--check", action="store_true", help="compare + gate")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--tolerance", type=float, default=0.5)
    parser.add_argument("--strict", action="store_true", help="exit 1 on warnings")
    args = parser.parse_args(argv)

    report = measure(args.scale, args.clients, args.duration)
    print(json.dumps(report, indent=2))

    if args.write:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    )
    if not baseline:
        print(f"::warning::no committed baseline at {BASELINE_PATH}")
    warnings = check(report, baseline, args.tolerance)
    for message in warnings:
        print(f"::warning::serving bench: {message}")
    if not warnings:
        print("serving bench: gate ok, no regression")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
