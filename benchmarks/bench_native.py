"""Native-tier bench: jitted-vs-numpy route speedups + parallel reply bytes.

Two gates, one JSON (``benchmarks/BENCH_native.json``):

* **jit speedup gate** — ``backend="native"`` must be >= 2x over numpy on
  every covered route (base, LONA-Forward, LONA-Backward, weighted base,
  weighted backward) on the fig1 collaboration workload at full seed
  scale.  Compile time is excluded by an untimed warm-up call per route
  (the on-disk numba cache makes later processes skip it entirely).  The
  gate only evaluates where numba actually compiled the kernels
  (``repro.native.kernels.KERNEL_MODE == "compiled"``); on machines
  without numba the report records ``gate_evaluated: false`` with the
  reason — the interpreted escape hatch is a correctness shim, not a
  performance tier, and timing it would be dishonest either way.
* **reply-bytes gate** — the parallel backend's per-round pipe bytes
  received must drop >= 5x with shared-memory result buffers vs pickled
  pipe replies, at identical static task structure (work-stealing off on
  both sides so the task count matches).  This is a byte-counter gate,
  not a timer: it evaluates on any runner, any CPU count.

Two modes, mirroring the other committed baselines:

* ``--write``  — run and (re)write ``benchmarks/BENCH_native.json``.
* ``--check``  — run and compare against the committed baseline, emitting
  a GitHub-annotation warning for each gate failure or >``--tolerance``
  regression.  Exit code stays 0 unless ``--strict``.

Run with::

    PYTHONPATH=src python benchmarks/bench_native.py --write
    PYTHONPATH=src python benchmarks/bench_native.py --check
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
BASELINE_PATH = _BENCH_DIR / "BENCH_native.json"

K = 100
SPEEDUP_GATE = 2.0
REPLY_BYTES_GATE = 5.0
PIPE_NODES = 4000
PIPE_K = 128
PIPE_WORKERS = 2


def measure_speedups(scale: float) -> dict:
    """Per-route native-vs-numpy timings, or an honest decline."""
    from repro.native import kernels

    if kernels.KERNEL_MODE != "compiled":
        return {
            "gate_evaluated": False,
            "reason": (
                "numba not importable; native kernels run interpreted "
                "(correctness hatch only) — install the 'native' extra "
                "to evaluate the jit gate"
            ),
            "gate": SPEEDUP_GATE,
        }

    sys.path.insert(0, str(_BENCH_DIR))
    from bench_ablation_backend import GATED_ROUTES, _best_of, route_runner

    from repro.bench.workloads import figure
    from repro.core.query import QuerySpec
    from repro.graph.csr import to_csr
    from repro.graph.diffindex import build_differential_index
    from repro.relevance.mixture import MixtureRelevance

    spec = figure("fig1")
    graph = spec.build_graph(scale)
    scores = spec.build_scores(graph).values()
    dense = MixtureRelevance(0.01, zero_fraction=0.0, seed=7).scores(graph)
    diff_index = build_differential_index(graph, spec.hops, include_self=True)
    diff_index.flat_deltas()
    csr = to_csr(graph, use_numpy=True)
    np_spec = QuerySpec(k=K, aggregate="sum", hops=2, backend="numpy")
    native_spec = np_spec.with_backend("native")

    timings: dict = {}
    speedups: dict = {}
    for route in GATED_ROUTES:
        run, exact = route_runner(
            route, graph, scores, dense.values(), diff_index, csr
        )
        run(native_spec, csr)  # untimed warm-up: jit compile excluded
        t_np, r_np = _best_of(lambda: run(np_spec, csr))
        t_nat, r_nat = _best_of(lambda: run(native_spec, csr))
        assert r_np.nodes == r_nat.nodes, f"{route}: backend answers diverged"
        if exact:
            assert r_np.entries == r_nat.entries, f"{route}: entries diverged"
        timings[route] = {"numpy": round(t_np, 4), "native": round(t_nat, 4)}
        speedups[route] = round(t_np / t_nat, 3)

    return {
        "gate_evaluated": True,
        "gate": SPEEDUP_GATE,
        "gate_passed": all(v >= SPEEDUP_GATE for v in speedups.values()),
        "figure": "fig1",
        "scale": scale,
        "k": K,
        "speedups": speedups,
        "timings_sec": timings,
    }


def measure_reply_bytes() -> dict:
    """Pipe bytes per scan round, shared reply buffers on vs off."""
    from repro.graph.graph import Graph
    from repro.session import Network

    rng = random.Random(37)
    edges = set()
    while len(edges) < 3 * PIPE_NODES:
        u, v = rng.randrange(PIPE_NODES), rng.randrange(PIPE_NODES)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    graph = Graph.from_edges(sorted(edges), num_nodes=PIPE_NODES)
    scores = [rng.random() for _ in range(PIPE_NODES)]

    def run(result_buffers: bool):
        net = Network(graph, hops=2, backend="parallel")
        net.add_scores("s", scores)
        engine = net.parallel(
            workers=PIPE_WORKERS,
            min_nodes=0,
            work_stealing=False,
            result_buffers=result_buffers,
        )
        try:
            res = net.topk("s", PIPE_K)
            return res.entries, int(res.stats.extra["pipe_bytes_received"])
        finally:
            engine.close()

    lean_entries, lean_bytes = run(True)
    fat_entries, fat_bytes = run(False)
    assert lean_entries == fat_entries, "reply transports diverged"
    ratio = fat_bytes / max(lean_bytes, 1)
    return {
        "gate_evaluated": True,
        "gate": REPLY_BYTES_GATE,
        "gate_passed": ratio >= REPLY_BYTES_GATE,
        "nodes": PIPE_NODES,
        "k": PIPE_K,
        "workers": PIPE_WORKERS,
        "pipe_reply_bytes": fat_bytes,
        "shared_buffer_bytes": lean_bytes,
        "reduction": round(ratio, 2),
    }


def measure(scale: float = 1.0) -> dict:
    return {
        "scale": scale,
        "jit_speedup": measure_speedups(scale),
        "reply_bytes": measure_reply_bytes(),
    }


def check(report: dict, baseline: dict, tolerance: float) -> list:
    """Gate failures + regressions against the committed baseline."""
    warnings = []

    jit = report["jit_speedup"]
    if jit["gate_evaluated"]:
        for route, value in jit["speedups"].items():
            if value < jit["gate"]:
                warnings.append(
                    f"jit gate: {route} {value:.2f}x < {jit['gate']:.1f}x"
                )
        for route, recorded in (
            baseline.get("jit_speedup", {}).get("speedups", {}).items()
        ):
            current = jit["speedups"].get(route)
            if current is not None and current < recorded * (1.0 - tolerance):
                warnings.append(
                    f"jit speedup regressed on {route}: "
                    f"{recorded:.2f}x -> {current:.2f}x (> {tolerance:.0%} drop)"
                )
    else:
        print(f"jit gate not evaluated: {jit['reason']}")

    reply = report["reply_bytes"]
    if reply["reduction"] < reply["gate"]:
        warnings.append(
            f"reply-bytes gate: {reply['reduction']:.2f}x < "
            f"{reply['gate']:.1f}x reduction"
        )
    recorded = baseline.get("reply_bytes", {}).get("reduction")
    if recorded is not None and reply["reduction"] < recorded * (1.0 - tolerance):
        warnings.append(
            f"reply-bytes reduction regressed: {recorded:.2f}x -> "
            f"{reply['reduction']:.2f}x (> {tolerance:.0%} drop)"
        )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="rewrite the baseline")
    mode.add_argument("--check", action="store_true", help="compare to the baseline")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument("--strict", action="store_true", help="exit 1 on regression")
    args = parser.parse_args(argv)

    report = measure(scale=args.scale)
    print(json.dumps(report, indent=2))

    if args.write:
        BASELINE_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"::warning::no committed baseline at {BASELINE_PATH}")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    warnings = check(report, baseline, args.tolerance)
    for message in warnings:
        print(f"::warning::native bench: {message}")
    if not warnings:
        print("native bench: gates hold, no regression beyond tolerance")
    return 1 if (warnings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
