"""Ablation abl-blacking: sensitivity to the blacking ratio r.

The paper fixes r per figure (0.01 or 0.2).  This sweep varies r on the
collaboration workload: LONA-Backward's distribution cost grows linearly
with r (more non-zero nodes to distribute) while Base is r-independent, so
the speedup shrinks as r grows — the crossover locates the regime where
backward processing stops paying.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.relevance.mixture import MixtureRelevance

RATIOS = (0.005, 0.01, 0.05, 0.2, 0.5)
_CACHE = {}


def _context():
    if not _CACHE:
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.25)
        _CACHE["graph"] = graph
        _CACHE["sizes"] = NeighborhoodSizeIndex.exact(graph, 2)
        _CACHE["scores"] = {
            r: MixtureRelevance(r, binary=True, seed=spec.seed + 1)
            .scores(graph)
            .values()
            for r in RATIOS
        }
    return _CACHE


def test_base_reference(benchmark):
    ctx = _context()
    spec = QuerySpec(k=50, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: base_topk(ctx["graph"], ctx["scores"][0.01], spec),
        rounds=3,
        iterations=1,
    )
    assert len(result) == 50


@pytest.mark.parametrize("ratio", RATIOS)
def test_backward_by_blacking_ratio(benchmark, ratio):
    ctx = _context()
    spec = QuerySpec(k=50, aggregate="sum", hops=2)
    result = benchmark.pedantic(
        lambda: backward_topk(
            ctx["graph"], ctx["scores"][ratio], spec, sizes=ctx["sizes"]
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["distribution_pushes"] = result.stats.distribution_pushes
    assert len(result) == 50
