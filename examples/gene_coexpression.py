#!/usr/bin/env python
"""Gene function finding in a co-expression network (the paper's biology
scenario).

"...or the number of times a gene is co-expressed with a group of known
genes in co-expression networks" (Sec. I).  Starting from a handful of
genes with a known function, we score every gene by an iterative collective
classifier (paper ref [13]) seeded at the known genes, then ask two
questions:

* SUM:   which genes sit in neighborhoods with the most functional signal?
  (candidates for the same pathway)
* AVG:   which genes sit in the *purest* functional neighborhoods?
  (tight functional modules)

Run:  python examples/gene_coexpression.py
"""

import random

from repro import IterativeClassifierRelevance, Network
from repro.graph.generators import powerlaw_cluster


def main() -> None:
    # Co-expression networks are power-law with strong clustering
    # (co-regulated modules) — the same structural family as collaboration.
    graph = powerlaw_cluster(1500, 4, 0.6, seed=5, name="coexpression")
    print(f"co-expression network: {graph.num_nodes} genes, {graph.num_edges} links")

    # A known functional module: a seed gene and its neighborhood.
    rng = random.Random(3)
    anchor = max(graph.nodes(), key=graph.degree)
    known = {anchor}
    frontier = list(graph.neighbors(anchor))
    while len(known) < 8 and frontier:
        known.add(frontier.pop(rng.randrange(len(frontier))))
    negatives = rng.sample(
        [g for g in graph.nodes() if g not in known], 12
    )
    print(f"known pathway genes: {sorted(known)}")

    relevance = IterativeClassifierRelevance(
        positive=known, negative=negatives, prior=0.05, iterations=6
    )
    net = Network(graph, hops=2).add_scores("pathway", relevance)

    for aggregate, question in (
        ("sum", "most functional signal within 2 hops"),
        ("avg", "purest functional neighborhood"),
    ):
        result = net.query("pathway").limit(8).aggregate(aggregate).run()
        print(f"\ntop genes by {aggregate.upper()} ({question}):")
        for rank, (gene, value) in enumerate(result.entries, start=1):
            marker = " *known*" if gene in known else ""
            print(f"  #{rank}: gene {gene:4d}   score = {value:8.3f}{marker}")

    # Sanity: the anchor's module should dominate the SUM ranking.
    top = net.query("pathway").limit(8).run()
    overlap = sum(1 for gene in top.nodes if anchor in graph.neighbors(gene) or gene == anchor)
    print(
        f"\n{overlap} of the top-8 SUM genes are the anchor or its direct "
        "co-expression partners — the classifier's signal stays local, as "
        "it should."
    )


if __name__ == "__main__":
    main()
