#!/usr/bin/env python
"""Graph traversal vs the relational self-join plan (the paper's Sec. II).

"For 2-hop queries, it has to self-join two gigantic edge tables, if one
indeed chooses table to store large graphs."  This example runs the *same*
top-k query both ways — through the graph engine and through the miniature
column-store relational engine — and prints the row-level work the
relational formulation manufactures.

Run:  python examples/relational_comparison.py
"""

import time

from repro import MixtureRelevance, Network
from repro.datasets import load


def main() -> None:
    graph = load("collaboration_like", scale=0.1, seed=4)
    scores = MixtureRelevance(0.05, seed=6).scores(graph)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    k = 10
    for hops in (1, 2):
        # One session per radius: the shared indexes are built per h.
        net = Network(graph, hops=hops).add_scores("mixture", scores)

        start = time.perf_counter()
        graph_result = net.query("mixture").limit(k).algorithm("base").run()
        graph_time = time.perf_counter() - start

        start = time.perf_counter()
        relational_result = (
            net.query("mixture").limit(k).algorithm("relational").run()
        )
        relational_time = time.perf_counter() - start

        assert [round(v, 9) for v in graph_result.values] == [
            round(v, 9) for v in relational_result.values
        ], "both engines must return the same answer"

        extra = relational_result.stats.extra
        print(f"\n{hops}-hop top-{k} SUM query (answers identical):")
        print(
            f"  graph traversal : {graph_time * 1000:8.1f} ms   "
            f"edges scanned {graph_result.stats.edges_scanned:,}"
        )
        print(
            f"  relational plan : {relational_time * 1000:8.1f} ms   "
            f"rows through operators {int(extra['rows_scanned']):,}, "
            f"join output rows {int(extra['join_matches']):,}"
        )
        if graph_time > 0:
            print(f"  slowdown        : {relational_time / graph_time:8.1f}x")

    print(
        "\nThe 2-hop plan joins the edge table with itself, materializing one "
        "row per 2-hop *walk* before DISTINCT collapses them — the row "
        "counts above are the paper's 'gigantic self-join' argument, "
        "measured."
    )


if __name__ == "__main__":
    main()
