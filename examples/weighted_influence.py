#!/usr/bin/env python
"""Distance-weighted influence (the paper's footnote 1).

Footnote 1 generalizes the aggregate with connection-strength weights:
``F(u) = sum w(u, v) f(v)`` where ``w`` is e.g. the inverse of the shortest
distance.  A friend-of-a-friend's enthusiasm counts, but less than a
friend's.  This example contrasts three decay profiles on the same social
network and shows how the ranking shifts — and that the weighted
LONA-Backward agrees with the weighted scan while doing far less work.

Run:  python examples/weighted_influence.py
"""

import time

from repro import BinaryRelevance, Network
from repro.aggregates import exponential_decay, inverse_distance, uniform_weight
from repro.datasets import load


def main() -> None:
    graph = load("collaboration_like", scale=0.5, seed=12)
    net = Network(graph, hops=2).add_scores(
        "enthusiasm", BinaryRelevance(0.03, seed=23)
    )
    print(
        f"network: {graph.num_nodes} members, {graph.num_edges} ties; "
        f"{len(net.scores_of('enthusiasm').nonzero_nodes)} enthusiasts\n"
    )

    profiles = [
        ("uniform (plain SUM)", uniform_weight),
        ("inverse distance (footnote 1)", inverse_distance),
        ("exponential decay 0.3", exponential_decay(0.3)),
    ]
    k = 5
    rankings = {}
    for label, profile in profiles:
        start = time.perf_counter()
        fast = net.topk_weighted("enthusiasm", k, profile, algorithm="backward")
        fast_time = time.perf_counter() - start
        start = time.perf_counter()
        slow = net.topk_weighted("enthusiasm", k, profile, algorithm="base")
        slow_time = time.perf_counter() - start
        assert [round(v, 9) for v in fast.values] == [
            round(v, 9) for v in slow.values
        ]
        rankings[label] = fast
        speedup = slow_time / fast_time if fast_time > 0 else float("inf")
        print(f"{label}:")
        print(
            f"  backward {fast_time * 1000:6.1f} ms vs scan "
            f"{slow_time * 1000:6.1f} ms ({speedup:.1f}x), answers identical"
        )
        for rank, (node, value) in enumerate(fast.entries, start=1):
            print(f"    #{rank}: member {node:5d}  weighted influence = {value:.3f}")
        print()

    plain_top = rankings["uniform (plain SUM)"].nodes
    decayed_top = rankings["exponential decay 0.3"].nodes
    moved = [n for n in plain_top if n not in decayed_top]
    print(
        f"{len(moved)} of the top-{k} under plain SUM drop out under strong "
        "decay — their support was mostly 2 hops away, which distance "
        "weighting discounts."
    )


if __name__ == "__main__":
    main()
