#!/usr/bin/env python
"""Serving over the network: an HTTP front door and its wire-native client.

Starts a :class:`repro.serving.QueryServer` over a session — replica lanes
routed by query shape, token-bucket rate limiting, and cost-based load
shedding — then talks to it with :class:`repro.RemoteNetwork`, whose fluent
surface mirrors the local ``Network`` one query for query.  Shows:

1. remote answers are entry-for-entry identical to local ones,
2. async submit/poll and progressive streaming over the wire,
3. typed admission errors (``RateLimitedError`` with a machine-readable
   ``retry_after``) rehydrated as the same exception classes locally.

Run:  python examples/remote_client.py
"""

from repro import MixtureRelevance, Network, RemoteNetwork
from repro.datasets import load
from repro.errors import RateLimitedError
from repro.serving import QueryServer, ServerConfig


def main() -> None:
    # A session like any other: graph + named scores.
    graph = load("collaboration_like", scale=0.2, seed=2010)
    net = Network(graph, hops=2)
    net.add_scores("relevance", MixtureRelevance(0.1, seed=7).scores(graph))
    print(f"session: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # The front door: 2 replica lanes (each a full QueryService with its
    # own cache and coalescer), a per-tenant rate limit, and cost-based
    # shedding above 75% load.  Port 0 binds an ephemeral port.
    config = ServerConfig(
        replicas=2,
        service={"workers": 1},
        tenant_rate=50.0,
        tenant_burst=4,
        shed_watermark=0.75,
        cost_limit=1e6,
    )
    with QueryServer(net, config) as server:
        print(f"serving on {server.url}")

        with RemoteNetwork(server.url, tenant="demo") as remote:
            # 1. Parity: the same fluent query, local and over the wire.
            local = net.query("relevance").limit(5).run()
            wire = remote.query("relevance").limit(5).run()
            match = "identical" if wire.entries == local.entries else "DIFFER"
            print(f"top-5 local vs remote: {match}")
            for rank, (node, value) in enumerate(wire.entries, start=1):
                print(f"  {rank}. node {node}  score {value:.4f}")

            # 2. Async submit/poll and streaming.
            handle = remote.query("relevance").limit(3).submit()
            print(f"submitted {handle.query_id}; polling...")
            print(f"  -> {handle.result(timeout=30).entries}")
            updates = list(remote.query("relevance").limit(3).stream())
            print(
                f"stream: {len(updates)} progressive updates, "
                f"final answer after {updates[-1].evaluated} evaluations"
            )

            # 3. Typed admission errors: burst past the rate limit and
            # read the machine-readable retry hint off the exception.
            rejected = None
            for _ in range(8):
                try:
                    remote.topk("relevance", 2)
                except RateLimitedError as exc:
                    rejected = exc
                    break
            if rejected is not None:
                print(
                    f"rate limited as expected: code={rejected.code!r} "
                    f"retry_after={rejected.retry_after}s"
                )
            stats = remote.stats()
            print(
                f"server counters: {stats['admission']['admitted']} admitted, "
                f"{stats['admission']['rate_limited']} rate-limited "
                f"across {stats['replicas']['replicas']} replicas"
            )
    net.close()


if __name__ == "__main__":
    main()
