#!/usr/bin/env python
"""Intrusion-network monitoring (the paper's security scenario).

"...the intrusion packets could formulate a large, dynamic intrusion
network, where each node corresponds to an IP address and there is an edge
between two IP addresses if an intrusion attack takes place between them"
(Sec. I).  Given a set of IPs flagged by an IDS, the 2-hop SUM query finds
the hosts with the most flagged activity in their network vicinity — the
natural prioritized watch-list.

This example also shows why LONA-Backward is the right algorithm for the
job: flagged IPs are sparse, and the backward distribution touches only
their neighborhoods, finishing orders of magnitude before the full scan.

Run:  python examples/intrusion_detection.py [scale]
"""

import sys
import time

from repro import BinaryRelevance, Network
from repro.datasets import load, spec_of


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    spec = spec_of("intrusion_like")
    graph = load("intrusion_like", scale=scale, seed=13)
    print(
        f"intrusion network stand-in for: {spec.paper_name}\n"
        f"  {graph.num_nodes} IPs, {graph.num_edges} attack edges "
        f"(paper scale: {spec.paper_nodes:,} / {spec.paper_edges:,})"
    )

    # The IDS flags 2% of IPs as attack sources.
    flagged = BinaryRelevance(blacking_ratio=0.02, seed=21)
    net = Network(graph, hops=2).add_scores("flagged", flagged)
    print(f"flagged IPs: {len(net.scores_of('flagged').nonzero_nodes)}")

    k = 15
    start = time.perf_counter()
    naive = net.query("flagged").limit(k).algorithm("base").run()
    naive_time = time.perf_counter() - start

    start = time.perf_counter()
    fast = net.query("flagged").limit(k).algorithm("backward").run()
    fast_time = time.perf_counter() - start

    assert [round(v, 9) for v in naive.values] == [
        round(v, 9) for v in fast.values
    ]
    print(
        f"\nfull scan:          {naive_time * 1000:8.1f} ms "
        f"({naive.stats.nodes_evaluated} neighborhoods expanded)"
    )
    print(
        f"backward (LONA):    {fast_time * 1000:8.1f} ms "
        f"({fast.stats.distribution_pushes} score pushes, "
        f"{fast.stats.candidates_verified} verifications)"
    )
    if fast_time > 0:
        print(f"speedup:            {naive_time / fast_time:8.1f}x")

    print(f"\ntop {k} IPs to watch (flagged attackers within 2 hops):")
    for rank, (ip, value) in enumerate(fast.entries, start=1):
        print(f"  #{rank:2d}: ip-{ip:05d}   flagged neighbors = {value:.0f}")


if __name__ == "__main__":
    main()
