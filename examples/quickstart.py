#!/usr/bin/env python
"""Quickstart: top-k neighborhood aggregation through the Network session.

Builds a small social network, registers each member's relevance score
(here: how strongly they like a product), and asks the session for the
three people whose 2-hop circle likes the product most — the paper's
"popularity of a game console in one's social circle" query — through the
fluent query builder, plus a peek at the planner and the streaming mode.

Run:  python examples/quickstart.py
"""

from repro import Graph, MixtureRelevance, Network


def main() -> None:
    # A little two-community network: nodes 0-5 are one friend group,
    # 6-11 another, bridged by the 5-6 edge.
    edges = [
        (0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5),
        (5, 6),
        (6, 7), (7, 8), (6, 8), (8, 9), (9, 10), (10, 11), (9, 11),
    ]
    graph = Graph.from_edges(edges, name="quickstart")
    print(f"graph: {graph.num_nodes} people, {graph.num_edges} friendships")

    # One session owns the graph, every named score vector, and all the
    # shared caches (indexes, CSR views).  A seeded mixture relevance:
    # ~25% enthusiasts (score 1.0) plus an exponential tail.
    net = Network(graph, hops=2)
    net.add_scores("enthusiasm", MixtureRelevance(blacking_ratio=0.25, seed=7))

    query = net.query("enthusiasm").aggregate("sum").limit(3)
    result = query.run()

    print(f"\nquery: {query.request().describe()}")
    print(f"algorithm chosen automatically: {result.stats.algorithm}")
    print("\nwho has the most enthusiastic 2-hop circle?")
    for rank, (node, value) in enumerate(result.entries, start=1):
        print(f"  #{rank}: person {node:2d}   circle score = {value:.3f}")

    # The same query as an AVG — who has the most *concentrated* circle?
    avg = query.aggregate("avg").run()
    print("\nwho has the most concentrated circle (AVG)?")
    for rank, (node, value) in enumerate(avg.entries, start=1):
        print(f"  #{rank}: person {node:2d}   average score = {value:.3f}")

    # Restrict the competition declaratively: only the second community.
    local = query.where(lambda v: v >= 6).run()
    print("\nbest circle within the second friend group?")
    for rank, (node, value) in enumerate(local.entries, start=1):
        print(f"  #{rank}: person {node:2d}   circle score = {value:.3f}")

    # Anytime consumption: watch the answer refine, stop whenever.
    print("\nstreaming refinements (node, value, bound on the unseen):")
    for update in query.stream():
        print(
            f"  evaluated {update.evaluated:2d}/{update.total}: "
            f"person {update.node:2d} = {update.value:.3f}, "
            f"unseen <= {update.bound:.3f}"
        )
        if update.done:
            break

    # Why did the winner win?  Decompose its aggregate.
    from repro.core import explain_node

    winner = result.top()[0]
    print("\nwhy?")
    print(
        explain_node(
            graph, net.scores_of("enthusiasm"), winner, hops=2
        ).describe(limit=3)
    )


if __name__ == "__main__":
    main()
