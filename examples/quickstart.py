#!/usr/bin/env python
"""Quickstart: top-k neighborhood aggregation in a dozen lines.

Builds a small social network, assigns each member a relevance score
(here: how strongly they like a product), and asks LONA's engine for the
three people whose 2-hop circle likes the product most — the paper's
"popularity of a game console in one's social circle" query.

Run:  python examples/quickstart.py
"""

from repro import Graph, MixtureRelevance, TopKEngine


def main() -> None:
    # A little two-community network: nodes 0-5 are one friend group,
    # 6-11 another, bridged by the 5-6 edge.
    edges = [
        (0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4), (4, 5),
        (5, 6),
        (6, 7), (7, 8), (6, 8), (8, 9), (9, 10), (10, 11), (9, 11),
    ]
    graph = Graph.from_edges(edges, name="quickstart")
    print(f"graph: {graph.num_nodes} people, {graph.num_edges} friendships")

    # A seeded mixture relevance: ~25% enthusiasts (score 1.0) plus an
    # exponential tail, smoothed one hop by a random walk.
    relevance = MixtureRelevance(blacking_ratio=0.25, seed=7)

    engine = TopKEngine(graph, relevance, hops=2)
    result = engine.topk(k=3, aggregate="sum")

    print(f"\nquery: {engine.spec(3, 'sum').describe()}")
    print(f"algorithm chosen automatically: {result.stats.algorithm}")
    print("\nwho has the most enthusiastic 2-hop circle?")
    for rank, (node, value) in enumerate(result.entries, start=1):
        print(f"  #{rank}: person {node:2d}   circle score = {value:.3f}")

    # The same query as an AVG — who has the most *concentrated* circle?
    avg = engine.topk(k=3, aggregate="avg")
    print("\nwho has the most concentrated circle (AVG)?")
    for rank, (node, value) in enumerate(avg.entries, start=1):
        print(f"  #{rank}: person {node:2d}   average score = {value:.3f}")

    # Why did the winner win?  Decompose its aggregate.
    from repro.core import explain_node

    winner = result.top()[0]
    print("\nwhy?")
    print(explain_node(graph, engine.scores, winner, hops=2).describe(limit=3))


if __name__ == "__main__":
    main()
