#!/usr/bin/env python
"""Continuous monitoring of a *dynamic* intrusion network.

The paper's intrusion scenario is explicitly dynamic ("the intrusion
packets could formulate a large, dynamic intrusion network", Sec. I): new
attack edges appear as traffic flows, the IDS flags and un-flags hosts.
Re-running a top-k query from scratch after every event is wasteful; this
example keeps a :class:`MaintainedAggregateView` live instead — each event
repairs only the perturbed region, and the current watch-list is always one
O(n log k) selection away.

Run:  python examples/dynamic_monitoring.py
"""

import random
import time

from repro import DynamicGraph, MaintainedAggregateView
from repro.core import base_topk, QuerySpec
from repro.datasets import load


def main() -> None:
    rng = random.Random(99)
    base = load("intrusion_like", scale=0.25, seed=31)
    graph = DynamicGraph.from_graph(base)
    # Initial IDS state: 2% of hosts flagged.
    scores = [1.0 if rng.random() < 0.02 else 0.0 for _ in range(graph.num_nodes)]

    build_start = time.perf_counter()
    view = MaintainedAggregateView(graph, scores, hops=2)
    build_time = time.perf_counter() - build_start
    print(
        f"network: {graph.num_nodes} IPs, {graph.num_edges} attack edges; "
        f"view built in {build_time:.2f}s"
    )

    events = 200
    start = time.perf_counter()
    for _ in range(events):
        roll = rng.random()
        if roll < 0.55:  # new attack edge observed
            u, v = rng.randrange(graph.num_nodes), rng.randrange(graph.num_nodes)
            if u != v and not graph.has_edge(u, v):
                view.add_edge(u, v)
        elif roll < 0.8:  # IDS flags a host
            view.update_score(rng.randrange(graph.num_nodes), 1.0)
        else:  # a flag expires
            flagged = [i for i, s in enumerate(view.scores) if s > 0]
            if flagged:
                view.update_score(rng.choice(flagged), 0.0)
    maintain_time = time.perf_counter() - start
    print(
        f"{events} events applied in {maintain_time:.2f}s "
        f"({maintain_time / events * 1000:.1f} ms/event; "
        f"{view.nodes_repaired} node repairs, "
        f"{view.arithmetic_updates} arithmetic updates)"
    )

    # The live answer...
    k = 10
    live = view.topk(k, "sum")
    # ...checked against a from-scratch recomputation.
    start = time.perf_counter()
    fresh = base_topk(graph, view.scores, QuerySpec(k=k, hops=2))
    rescan_time = time.perf_counter() - start
    assert [round(v, 9) for v in live.values] == [
        round(v, 9) for v in fresh.values
    ]
    print(
        f"\nlive view answer == full rescan ✓ "
        f"(rescan alone costs {rescan_time * 1000:.0f} ms; the view amortized "
        "it across events)"
    )

    print(f"\ncurrent top-{k} watch-list:")
    for rank, (ip, value) in enumerate(live.entries, start=1):
        print(f"  #{rank:2d}: ip-{ip:05d}   flagged activity within 2 hops = {value:.0f}")


if __name__ == "__main__":
    main()
