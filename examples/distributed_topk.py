#!/usr/bin/env python
"""Partitioned, distributed top-k aggregation (the paper's future work).

"We are currently developing an infrastructure to partition large networks
into subnetworks and distribute them into multiple machines" (Sec. V).
This example runs that pipeline on the simulated cluster: partition the
graph, flood scores through the Pregel-style BSP engine, merge per-worker
top-k lists — and compares the two partitioners on the metric that matters
on a real cluster: remote messages (network traffic).

Run:  python examples/distributed_topk.py [num_workers]
"""

import sys

from repro import BinaryRelevance
from repro.core import base_topk, QuerySpec
from repro.datasets import load
from repro.distributed import DistributedTopKEngine


def main() -> None:
    num_parts = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    graph = load("collaboration_like", scale=0.5, seed=8)
    scores = BinaryRelevance(0.05, seed=17).scores(graph)
    print(
        f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
        f"{num_parts} simulated workers\n"
    )

    k = 10
    reference = base_topk(graph, scores, QuerySpec(k=k, hops=2))

    for partitioner in ("hash", "bfs"):
        engine = DistributedTopKEngine(
            graph,
            scores.values(),
            hops=2,
            num_parts=num_parts,
            partitioner=partitioner,
            seed=1,
        )
        result = engine.topk(k, "sum")
        assert [round(v, 9) for v in result.values] == [
            round(v, 9) for v in reference.values
        ], "distributed answer must equal the single-machine answer"
        extra = result.stats.extra
        total = extra["messages_local"] + extra["messages_remote"]
        remote_share = extra["messages_remote"] / total if total else 0.0
        print(
            f"{partitioner:>4} partitioning: "
            f"edge cut {int(extra['edge_cut']):6d}   "
            f"supersteps {int(extra['supersteps'])}   "
            f"messages {int(total):7d} "
            f"({remote_share:.0%} cross-worker)   "
            f"balance {extra['balance']:.2f}"
        )

    print(
        "\nBFS region-growing keeps h-hop neighborhoods on one worker, so a "
        "much smaller share of the flood crosses the (simulated) network — "
        "the property a real deployment of the paper's infrastructure "
        "would rely on."
    )
    print(f"\ntop-{k} (distributed == single-machine):")
    for rank, (node, value) in enumerate(reference.entries[:5], start=1):
        print(f"  #{rank}: node {node:5d}  value = {value:.0f}")
    print("  ...")


if __name__ == "__main__":
    main()
