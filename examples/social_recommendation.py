#!/usr/bin/env python
"""Target marketing on a social network (the paper's Facebook scenario).

"This kind of queries could identify the popularity of a game console in
one's social circle" (Sec. I).  We build a collaboration-style social
network, mark a small fraction of members as console owners (binary
relevance, the paper's 0/1 case), and find the best seeding targets: the
members whose 2-hop circles contain the most owners.

The example runs all three of the paper's algorithms on the same query and
prints their agreement and work counters — a miniature of the paper's
evaluation, on your laptop.

Run:  python examples/social_recommendation.py [scale]
"""

import sys
import time

from repro import BinaryRelevance, Network
from repro.datasets import load


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    graph = load("collaboration_like", scale=scale, seed=42)
    print(
        f"social network: {graph.num_nodes} members, {graph.num_edges} ties "
        f"(scale={scale})"
    )

    owners = BinaryRelevance(blacking_ratio=0.02, seed=9)
    net = Network(graph, hops=2).add_scores("owners", owners)
    scores = net.scores_of("owners")
    print(
        f"console owners: {len(scores.nonzero_nodes)} "
        f"({scores.density:.1%} of members)"
    )

    build = net.build_indexes()
    print(f"offline differential index: {build:.2f}s (paid once, reused per query)\n")

    k = 10
    results = {}
    for algorithm in ("base", "forward", "backward"):
        start = time.perf_counter()
        results[algorithm] = (
            net.query("owners").limit(k).algorithm(algorithm).run()
        )
        elapsed = time.perf_counter() - start
        stats = results[algorithm].stats
        print(
            f"{algorithm:>8}: {elapsed * 1000:7.1f} ms   "
            f"balls evaluated: {stats.nodes_evaluated:5d}   "
            f"pruned: {stats.pruned_nodes:5d}"
        )

    values = {tuple(round(v, 9) for v in r.values) for r in results.values()}
    assert len(values) == 1, "algorithms must agree"
    print("\nall three algorithms returned identical top-k values ✓")

    print(f"\nbest {k} seeding targets (owners within 2 hops):")
    for rank, (node, value) in enumerate(results["backward"].entries, start=1):
        print(f"  #{rank:2d}: member {node:5d}   owners in circle = {value:.0f}")


if __name__ == "__main__":
    main()
