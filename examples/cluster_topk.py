#!/usr/bin/env python
"""Real multi-machine top-k: socket-transport cluster workers.

``examples/distributed_topk.py`` runs the paper's Sec. V plan on a
*simulated* cluster (the BSP engine counts messages it never sends).
This example runs it for real: the session spawns ``cluster-worker``
processes — the same command you would start on other machines — ships
each one its bfs shard over length-prefixed JSON+binary frames, and
answers queries in candidate-shipping rounds with θ-pruning and adaptive
per-peer k quotas.  The byte counters printed at the end are measured on
actual sockets, not simulated.

Run:  python examples/cluster_topk.py [num_workers]
"""

import random
import sys

from repro.datasets import load
from repro.session import Network


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    graph = load("collaboration_like", scale=0.5, seed=8)

    # Zipf-skewed relevance: a few hub neighborhoods hold most of the
    # mass — the regime where θ-shipping prunes hardest.
    rng = random.Random(17)
    nodes = list(range(graph.num_nodes))
    rng.shuffle(nodes)
    scores = [0.0] * graph.num_nodes
    for rank, node in enumerate(nodes):
        scores[node] = 1.0 / (rank + 1.0) ** 1.1

    # backend="cluster" routes every eligible query — including the
    # distance-weighted one below — through the socket workers.
    net = Network(graph, hops=2, backend="cluster")
    net.add_scores("relevance", scores)
    net.cluster(workers=workers, min_nodes=0)
    try:
        print(
            f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
            f"{workers} socket workers (spawned via `repro.cli "
            f"cluster-worker`)\n"
        )

        k = 10
        result = (
            net.query("relevance").limit(k)
            .algorithm("base").backend("cluster").run()
        )
        reference = (
            net.query("relevance").limit(k)
            .algorithm("base").backend("numpy").run()
        )
        assert [e[0] for e in result.entries] == [
            e[0] for e in reference.entries
        ], "cluster answer must equal the single-machine answer"
        extra = result.stats.extra
        print(f"top-{k} (base scan, SUM over 2-hop neighborhoods):")
        for node, value in result.entries[:5]:
            print(f"  node {node:5d}   F(v) = {value:.4f}")
        print(
            f"  ... exact parity with numpy; "
            f"{int(extra['comm_rounds'])} comm round(s), "
            f"{int(extra['candidates_shipped'])} candidates shipped / "
            f"{int(extra['candidates_pruned'])} pruned worker-side by θ "
            f"({int(extra['shipped_candidate_bytes'])} candidate bytes)\n"
        )

        # The distance-weighted variant (paper footnote 1) rides the same
        # shards: hop-profile weights ship once, candidates per round.
        weighted = net.topk_weighted("relevance", k, algorithm="backward")
        print(f"top-{k} weighted (1/d profile, backward): "
              f"{[node for node, _ in weighted.entries[:5]]}... "
              f"via backend={weighted.stats.backend}\n")

        engine = net.cluster()
        print("per-worker wire counters (measured, not simulated):")
        for row in engine.worker_stats():
            print(
                f"  {row['peer']:>18}   alive={row['alive']}   "
                f"tasks={int(row['tasks'])}   "
                f"sent={int(row['bytes_sent'])}B   "
                f"received={int(row['bytes_received'])}B"
            )
        comm = engine.stats()["comm"]
        print(
            f"\ncoordinator totals: {int(comm['bytes_sent'])}B out, "
            f"{int(comm['bytes_received'])}B in over "
            f"{int(comm['frames_sent'])} frames"
        )
    finally:
        net.close()


if __name__ == "__main__":
    main()
