"""Units for the fault-injection subsystem and its recovery machinery.

Numpy-free by design (this file runs on the no-numpy CI cell): plan
parsing/determinism, the frame-level fault semantics, the client
retry policy, the peer-health circuit breaker, and the idempotent-submit
contract over a real (stdlib-only) serving socket.  End-to-end chaos
parity under presets lives in ``tests/test_chaos.py`` (needs numpy).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.client import RemoteNetwork, RetryPolicy
from repro.cluster.transport import PeerHealth
from repro.errors import (
    FaultInjectedError,
    InvalidParameterError,
    ReproError,
    ServiceOverloadedError,
)
from repro.faults import (
    ENV_VAR,
    PRESET_NAMES,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    fault_frame,
    fault_point,
    install_plan,
    preset_plan,
)
from repro.serving import QueryServer, ServerConfig
from repro.session import Network
from tests.conftest import random_graph
from tests.test_service import quantized_scores


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with injection disabled."""
    clear_plan()
    yield
    clear_plan()


# ---------------------------------------------------------------------------
# FaultPlan: parsing, determinism, rule semantics
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_disabled_hooks_are_noops(self):
        assert active_plan() is None
        fault_point("cluster.worker.task", peer=0)  # must not raise
        blob = b"\x00\x00\x00\x10payload-bytes!!"
        assert fault_frame("cluster.frame.send", blob) is blob

    def test_from_spec_rejects_unknown_fields(self):
        with pytest.raises(InvalidParameterError, match="unknown fault rule"):
            FaultPlan.from_spec(
                {"rules": [{"point": "x", "kind": "crash", "when": 3}]}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown fault kind"):
            FaultRule(point="x", kind="explode")

    def test_parse_inline_json(self):
        plan = FaultPlan.parse(
            json.dumps(
                {
                    "seed": 5,
                    "rules": [
                        {"point": "a.b", "kind": "delay", "delay": 0.01}
                    ],
                }
            )
        )
        assert plan.seed == 5
        assert plan.rules[0].kind == "delay"

    def test_parse_file_form(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps({"rules": [{"point": "p", "kind": "crash"}]})
        )
        plan = FaultPlan.parse(f"@{path}")
        assert plan.rules[0].point == "p"

    def test_parse_presets(self):
        for name in PRESET_NAMES:
            plan = FaultPlan.parse(f"preset:{name},seed=3")
            assert plan.seed == 3
            assert plan.rules

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.parse("not json at all")
        with pytest.raises(InvalidParameterError):
            FaultPlan.parse("preset:crash-heavy,sneed=3")
        with pytest.raises(InvalidParameterError):
            preset_plan("no-such-preset")

    def test_round_trip_spec(self):
        plan = preset_plan("delay-heavy", seed=9)
        again = FaultPlan.from_spec(plan.to_spec())
        assert again.to_spec() == plan.to_spec()

    def test_after_and_count_semantics(self):
        plan = FaultPlan(
            [FaultRule(point="p", kind="transient_error", after=2, count=2)]
        )
        decisions = [plan.decide("p", {}) is not None for _ in range(6)]
        # Hits 1-2 pass (after=2), hits 3-4 fire (count=2), rest pass.
        assert decisions == [False, False, True, True, False, False]

    def test_match_labels(self):
        plan = FaultPlan(
            [FaultRule(point="p", kind="crash", match={"peer": 1})]
        )
        assert plan.decide("p", {"peer": 0}) is None
        assert plan.decide("p", {"peer": 1}) is not None

    def test_prefix_glob(self):
        plan = FaultPlan([FaultRule(point="cluster.*", kind="crash")])
        assert plan.decide("cluster.frame.send", {}) is not None
        assert plan.decide("parallel.pipe.send", {}) is None

    def test_probability_streams_are_seed_deterministic(self):
        def firing_pattern(seed: int):
            plan = FaultPlan(
                [FaultRule(point="p", kind="delay", probability=0.5)],
                seed=seed,
            )
            return [plan.decide("p", {}) is not None for _ in range(64)]

        assert firing_pattern(7) == firing_pattern(7)
        assert firing_pattern(7) != firing_pattern(8)

    def test_hits_and_stats(self):
        plan = FaultPlan([FaultRule(point="p", kind="transient_error")])
        plan.decide("p", {})
        plan.decide("q", {})
        assert plan.hits() == {"p": 1, "q": 1}
        stats = plan.stats()
        assert stats["fired"] == [("p", "transient_error", 1)]

    def test_transient_error_is_retryable_repro_error(self):
        install_plan(
            FaultPlan([FaultRule(point="p", kind="transient_error")])
        )
        with pytest.raises(FaultInjectedError) as info:
            fault_point("p")
        assert isinstance(info.value, ReproError)
        assert info.value.retryable is True

    def test_refuse_connect_raises_connection_refused(self):
        install_plan(
            FaultPlan([FaultRule(point="p", kind="refuse_connect")])
        )
        with pytest.raises(ConnectionRefusedError):
            fault_point("p")

    def test_env_bootstrap_in_subprocess(self):
        src = str(Path(__file__).resolve().parents[1] / "src")
        spec = json.dumps(
            {"seed": 2, "rules": [{"point": "p", "kind": "crash"}]}
        )
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.faults import active_plan; "
                "plan = active_plan(); "
                "print(plan.seed if plan else 'none')",
            ],
            env={**os.environ, ENV_VAR: spec, "PYTHONPATH": src},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert out.stdout.strip() == "2"

    def test_env_bootstrap_is_loud_on_garbage(self):
        src = str(Path(__file__).resolve().parents[1] / "src")
        out = subprocess.run(
            [sys.executable, "-c", "import repro.faults"],
            env={**os.environ, ENV_VAR: "{broken", "PYTHONPATH": src},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert out.returncode != 0
        assert "fault plan" in out.stderr


class TestFaultFrame:
    def _frame(self) -> bytes:
        header = json.dumps({"type": "task"}).encode()
        body = len(header).to_bytes(4, "big") + header + b"\x01" * 32
        return len(body).to_bytes(4, "big") + body

    def test_truncate_cuts_into_header_region(self):
        install_plan(
            FaultPlan([FaultRule(point="f", kind="truncate_frame")])
        )
        frame = self._frame()
        out = fault_frame("f", frame, header_offset=8)
        assert len(out) == 10  # header_offset + 2
        assert out == frame[:10]

    def test_corrupt_flips_header_bytes_only(self):
        install_plan(
            FaultPlan([FaultRule(point="f", kind="corrupt_frame")])
        )
        frame = self._frame()
        out = fault_frame("f", frame, header_offset=8)
        assert len(out) == len(frame)
        assert out[:8] == frame[:8]  # length words untouched
        assert out[8:24] != frame[8:24]  # header region flipped
        assert out[24:] == frame[24:]  # payload bytes untouched

    def test_corrupted_cluster_frame_fails_decode_loudly(self):
        from repro.cluster.frames import decode_payload, encode_frame
        from repro.errors import ClusterError

        frame = encode_frame({"type": "task", "task_id": "t1"})
        install_plan(
            FaultPlan([FaultRule(point="f", kind="corrupt_frame")])
        )
        # Frame bodies start after the 4-byte total-length word, so the
        # header-length word sits at offset 4 of the body.
        body = fault_frame("f", frame[4:], header_offset=4)
        with pytest.raises(ClusterError):
            decode_payload(body)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        delays = [policy.delay_for(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_retry_after_dominates_backoff(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.0)
        assert policy.delay_for(0, retry_after=0.75) == 0.75

    def test_jitter_bounds(self):
        import random

        policy = RetryPolicy(base_delay=1.0, jitter=0.25, max_delay=1.0)
        rng = random.Random(11)
        for _ in range(50):
            delay = policy.delay_for(0, rng=rng)
            assert 1.0 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(base_delay=-1.0)


# ---------------------------------------------------------------------------
# PeerHealth circuit breaker
# ---------------------------------------------------------------------------
class TestPeerHealth:
    def test_trips_after_threshold_consecutive_failures(self):
        health = PeerHealth(threshold=3, cooloff=60.0)
        for _ in range(2):
            health.record_failure("boom")
        assert health.state == "closed" and health.admits()
        health.record_failure("boom")
        assert health.state == "open"
        assert not health.admits()
        assert health.trips == 1

    def test_success_resets_consecutive_count(self):
        health = PeerHealth(threshold=3, cooloff=60.0)
        health.record_failure()
        health.record_failure()
        health.record_success()
        health.record_failure()
        health.record_failure()
        assert health.state == "closed"

    def test_cooloff_half_opens_then_success_closes(self):
        health = PeerHealth(threshold=1, cooloff=0.01)
        health.record_failure("dead")
        assert not health.admits()
        time.sleep(0.02)
        assert health.admits()  # open -> half_open probe
        assert health.state == "half_open"
        health.record_success()
        assert health.state == "closed"

    def test_half_open_failure_retrips_immediately(self):
        health = PeerHealth(threshold=3, cooloff=0.01)
        for _ in range(3):
            health.record_failure()
        time.sleep(0.02)
        assert health.admits()
        health.record_failure()  # the probe failed
        assert health.state == "open"
        assert health.trips == 2

    def test_snapshot_shape(self):
        health = PeerHealth()
        health.record_failure("why")
        snap = health.snapshot()
        assert snap["failures"] == 1
        assert snap["last_error"] == "why"
        assert snap["state"] == "closed"


# ---------------------------------------------------------------------------
# Client retries + idempotent submission over a live server
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fault_net():
    graph = random_graph(40, 0.12, seed=86)
    session = Network(graph, hops=2)
    session.add_scores("s", quantized_scores(40, seed=87, density=0.8))
    yield session
    session.close()


@pytest.fixture(scope="module")
def fault_server(fault_net):
    server = QueryServer(fault_net, ServerConfig(replicas=1)).start()
    yield server
    server.close()


class TestClientRetry:
    def _flaky(self, client, failures):
        """Wrap ``_call_once`` to fail ``failures`` times, then pass."""
        calls = {"n": 0}
        original = client._call_once

        def wrapped(*args, **kwargs):
            calls["n"] += 1
            if failures:
                raise failures.pop(0)
            return original(*args, **kwargs)

        client._call_once = wrapped
        return calls

    def test_retries_retryable_wire_errors(self, fault_server):
        with RemoteNetwork(
            fault_server.url,
            retry=RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0),
        ) as client:
            client.health()  # prime session defaults outside the flaky window
            calls = self._flaky(
                client,
                [
                    ServiceOverloadedError("busy", retry_after=0.01),
                    ServiceOverloadedError("busy", retry_after=0.01),
                ],
            )
            result = client.topk("s", 3)
        assert len(result.entries) == 3
        assert calls["n"] == 3

    def test_retry_after_beyond_patience_surfaces_immediately(
        self, fault_server
    ):
        # A rate limiter can advertise a retry_after of minutes; waiting
        # it out inside the client would look like a hang.  A hint past
        # the policy's max_delay must surface the typed error at once.
        with RemoteNetwork(
            fault_server.url,
            retry=RetryPolicy(attempts=5, base_delay=0.01, jitter=0.0),
        ) as client:
            client.health()
            calls = self._flaky(
                client,
                [ServiceOverloadedError("busy", retry_after=900.0)],
            )
            started = time.monotonic()
            with pytest.raises(ServiceOverloadedError):
                client.topk("s", 3)
        assert calls["n"] == 1
        assert time.monotonic() - started < 5.0

    def test_does_not_retry_non_retryable_errors(self, fault_server):
        with RemoteNetwork(
            fault_server.url,
            retry=RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0),
        ) as client:
            calls = self._flaky(
                client, [InvalidParameterError("bad request")]
            )
            with pytest.raises(InvalidParameterError):
                client.topk("s", 3)
        assert calls["n"] == 1

    def test_retry_budget_exhausts(self, fault_server):
        with RemoteNetwork(
            fault_server.url,
            retry=RetryPolicy(attempts=2, base_delay=0.01, jitter=0.0),
        ) as client:
            calls = self._flaky(
                client,
                [ConnectionResetError("nope")] * 5,
            )
            with pytest.raises(OSError):
                client.topk("s", 3)
        assert calls["n"] == 2

    def test_retry_none_fails_fast(self, fault_server):
        with RemoteNetwork(fault_server.url, retry=None) as client:
            calls = self._flaky(client, [ConnectionResetError("nope")])
            with pytest.raises(OSError):
                client.topk("s", 3)
        assert calls["n"] == 1

    def test_injected_connection_refusals_are_absorbed(self, fault_server):
        # Server-side: the next two accepted connections die before any
        # request is read; the client's retry loop must recover without
        # the caller noticing.
        install_plan(
            FaultPlan(
                [
                    FaultRule(
                        point="serving.connection",
                        kind="refuse_connect",
                        count=2,
                    )
                ]
            )
        )
        try:
            with RemoteNetwork(
                fault_server.url,
                retry=RetryPolicy(attempts=4, base_delay=0.01, jitter=0.0),
            ) as client:
                result = client.topk("s", 3)
            assert len(result.entries) == 3
        finally:
            clear_plan()


class TestIdempotentSubmit:
    def test_submit_carries_idempotency_key(self, fault_server, fault_net):
        with RemoteNetwork(fault_server.url) as client:
            captured = {}
            original = client._call_once

            def spy(method, path, body=None, **kwargs):
                if path == "/v1/submit":
                    captured.update(body)
                return original(method, path, body, **kwargs)

            client._call_once = spy
            handle = client.query("s").limit(3).submit()
            assert handle.result(timeout=30).entries
        key = captured.get("idempotency_key")
        assert isinstance(key, str) and len(key) == 32

    def test_replayed_submit_executes_exactly_once(self, fault_server):
        with RemoteNetwork(fault_server.url) as client:
            hits_before = client.stats()["requests"].get(
                "idempotent_hits", 0
            )
            request = client.query("s").limit(3).request()
            body = {
                "request": request.to_dict(),
                "stream": False,
                "cached": False,
                "idempotency_key": "retry-storm-0001",
            }
            first = client._call_once("POST", "/v1/submit", body)
            # The client never saw the 202 and replays — twice.
            second = client._call_once("POST", "/v1/submit", body)
            third = client._call_once("POST", "/v1/submit", body)
            assert second["query_id"] == first["query_id"]
            assert third["query_id"] == first["query_id"]
            assert second["deduplicated"] and third["deduplicated"]
            stats = client.stats()
            assert stats["requests"]["idempotent_hits"] == hits_before + 2
            # Exactly one open handle came out of three submissions, and
            # it delivers the answer normally.
            from repro.client import RemoteHandle

            handle = RemoteHandle(
                client, first["query_id"], stream=False
            )
            assert len(handle.result(timeout=30).entries) == 3

    def test_distinct_keys_execute_separately(self, fault_server):
        with RemoteNetwork(fault_server.url) as client:
            request = client.query("s").limit(2).request()

            def submit(key):
                return client._call_once(
                    "POST",
                    "/v1/submit",
                    {
                        "request": request.to_dict(),
                        "idempotency_key": key,
                    },
                )

            a, b = submit("key-a"), submit("key-b")
            assert a["query_id"] != b["query_id"]

    def test_malformed_key_rejected(self, fault_server):
        with RemoteNetwork(fault_server.url) as client:
            request = client.query("s").limit(2).request()
            from repro.errors import ProtocolError

            with pytest.raises(ProtocolError, match="idempotency_key"):
                client._call_once(
                    "POST",
                    "/v1/submit",
                    {"request": request.to_dict(), "idempotency_key": 7},
                )


# ---------------------------------------------------------------------------
# Faults surface in stats
# ---------------------------------------------------------------------------
class TestObservability:
    def test_server_stats_include_plan_counters(self, fault_server):
        install_plan(
            FaultPlan([FaultRule(point="serving.connection", kind="delay",
                                 delay=0.0)])
        )
        try:
            with RemoteNetwork(fault_server.url) as client:
                client.health()
                stats = client.stats()
            assert "faults" in stats
            assert stats["faults"]["hits"].get("serving.connection", 0) >= 1
            assert "idempotency_keys" in stats
        finally:
            clear_plan()

    def test_public_exports(self):
        assert repro.RetryPolicy is RetryPolicy
        assert repro.FaultPlan is FaultPlan
