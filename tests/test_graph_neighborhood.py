"""Tests for neighborhood-size indexes: exact values and estimate soundness."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graph.neighborhood import (
    NeighborhoodSizeIndex,
    exact_sizes,
    lower_estimate,
    upper_estimate,
)
from tests.conftest import random_graph, ref_ball


class TestExactSizes:
    def test_path_two_hops(self, path_graph):
        assert exact_sizes(path_graph, 2) == [3, 4, 5, 4, 3]

    def test_open_ball(self, path_graph):
        assert exact_sizes(path_graph, 1, include_self=False) == [1, 2, 2, 2, 1]

    def test_zero_hops(self, path_graph):
        assert exact_sizes(path_graph, 0) == [1] * 5

    def test_matches_reference(self):
        g = random_graph(40, 0.1, seed=17)
        sizes = exact_sizes(g, 2)
        for u in range(40):
            assert sizes[u] == len(ref_ball(g, u, 2))

    def test_negative_hops_rejected(self, path_graph):
        with pytest.raises(InvalidParameterError):
            exact_sizes(path_graph, -2)


class TestEstimates:
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_upper_estimate_is_upper_bound(self, hops, seed):
        g = random_graph(35, 0.12, seed=seed)
        exact = exact_sizes(g, hops)
        upper = upper_estimate(g, hops)
        for u in range(35):
            assert upper[u] >= exact[u]

    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lower_estimate_is_lower_bound(self, hops, seed):
        g = random_graph(35, 0.12, seed=seed)
        exact = exact_sizes(g, hops)
        lower = lower_estimate(g, hops)
        for u in range(35):
            assert lower[u] <= exact[u]

    def test_estimates_exact_for_one_hop(self, star_graph):
        assert upper_estimate(star_graph, 1) == exact_sizes(star_graph, 1)
        assert lower_estimate(star_graph, 1) == exact_sizes(star_graph, 1)

    def test_upper_capped_at_num_nodes(self, triangle_graph):
        assert all(v <= 3 for v in upper_estimate(triangle_graph, 5))

    def test_open_ball_estimates(self):
        g = random_graph(30, 0.15, seed=9)
        exact = exact_sizes(g, 2, include_self=False)
        upper = upper_estimate(g, 2, include_self=False)
        lower = lower_estimate(g, 2, include_self=False)
        for u in range(30):
            assert lower[u] <= exact[u] <= upper[u]

    @pytest.mark.parametrize("hops", [1, 2, 3])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_directed_estimates_bracket_exact(self, hops, seed):
        """Regression: directed out-arcs have no back-edge, so the level-2
        expansion must not subtract one slot per neighbor (found by
        hypothesis as an unsound Eq. 3 bound on a directed chain)."""
        g = random_graph(30, 0.1, seed=seed, directed=True)
        exact = exact_sizes(g, hops)
        upper = upper_estimate(g, hops)
        lower = lower_estimate(g, hops)
        for u in range(30):
            assert lower[u] <= exact[u] <= upper[u]

    def test_directed_chain_regression(self):
        """Minimal case: 0 -> 1 -> 2; N_2(0) = 3, the old estimate said 2."""
        from repro.graph.graph import Graph

        chain = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        assert upper_estimate(chain, 2)[0] >= 3


class TestIndexObject:
    def test_exact_mode(self, path_graph):
        idx = NeighborhoodSizeIndex.exact(path_graph, 2)
        assert idx.is_exact
        assert idx.value(2) == 5
        assert idx.upper(2) == idx.lower(2) == 5
        assert len(idx) == 5

    def test_estimated_mode(self, path_graph):
        idx = NeighborhoodSizeIndex.estimated(path_graph, 2)
        assert not idx.is_exact
        with pytest.raises(InvalidParameterError):
            idx.value(0)

    def test_estimated_brackets_exact(self):
        g = random_graph(30, 0.1, seed=4)
        est = NeighborhoodSizeIndex.estimated(g, 2)
        exact = NeighborhoodSizeIndex.exact(g, 2)
        for u in range(30):
            assert est.lower(u) <= exact.value(u) <= est.upper(u)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            NeighborhoodSizeIndex([1, 2], [1], hops=1)

    def test_crossed_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            NeighborhoodSizeIndex([1, 2], [2, 3], hops=1)
