"""Backend parity: the vectorized numpy backend must agree with Python.

The contract (see :mod:`repro.core.backends`):

* identical node selections in identical order, for every algorithm,
  aggregate, ball convention, and graph shape;
* bit-exact entries on integer-valued (binary / COUNT) scores, where float
  summation order cannot matter;
* values within 1e-9 on continuous scores (the two backends accumulate
  floats in different orders, so the last ulp may differ).

These tests are the safety net that lets ``backend="auto"`` default to the
vectorized path: any divergence is a bug, not a tolerance.
"""

from __future__ import annotations

import random

import pytest

from repro.aggregates.weighted import (
    exponential_decay,
    inverse_distance,
    uniform_weight,
)
from repro.core.backends import BACKENDS, resolve_backend
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.batch import BatchQuery, batch_base_topk
from repro.core.engine import TopKEngine
from repro.core.forward import forward_topk
from repro.core.query import QuerySpec
from repro.core.weighted import weighted_backward_topk, weighted_base_topk
from repro.errors import InvalidParameterError
from repro.graph.diffindex import build_differential_index
from repro.graph.graph import Graph
from repro.relevance.base import ScoreVector
from tests.conftest import random_graph, random_scores, rounded

np = pytest.importorskip("numpy")


def binary_scores(n: int, seed: int, density: float = 0.3):
    rng = random.Random(seed)
    return [1.0 if rng.random() < density else 0.0 for _ in range(n)]


def spec_pair(k=7, aggregate="sum", hops=2, include_self=True):
    py = QuerySpec(
        k=k, aggregate=aggregate, hops=hops, include_self=include_self,
        backend="python",
    )
    return py, py.with_backend("numpy")


def assert_same_answer(a, b):
    """Same nodes in the same order; values equal to 1e-9."""
    assert a.nodes == b.nodes
    assert rounded(a.values) == rounded(b.values)


def assert_equivalent_answer(a, b):
    """Value-multiset parity with tie-group latitude (continuous scores).

    The backends accumulate floats in different orders, so two nodes whose
    true aggregates are mathematically equal can differ in the last ulp and
    swap positions.  Values must agree to 1e-9 and every rounded-value tie
    group must select the same node set — except possibly the rank-k
    boundary group, where the accumulator's documented tie latitude
    applies (see :mod:`repro.core.topk`).
    """
    from collections import defaultdict

    assert rounded(a.values) == rounded(b.values)
    groups_a = defaultdict(set)
    groups_b = defaultdict(set)
    for node, value in a.entries:
        groups_a[round(value, 9)].add(node)
    for node, value in b.entries:
        groups_b[round(value, 9)].add(node)
    boundary = round(a.values[-1], 9) if a.entries else None
    for key, nodes in groups_a.items():
        if key != boundary:
            assert nodes == groups_b[key]


class TestForwardParity:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("include_self", [True, False])
    def test_binary_scores_bit_exact(self, aggregate, include_self):
        for seed in range(4):
            g = random_graph(45, 0.09, seed=seed)
            scores = binary_scores(45, seed + 10)
            di = build_differential_index(g, 2, include_self=include_self)
            py, npy = spec_pair(aggregate=aggregate, include_self=include_self)
            a = forward_topk(g, scores, py, diff_index=di)
            b = forward_topk(g, scores, npy, diff_index=di)
            assert a.entries == b.entries

    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_continuous_scores(self, aggregate, hops):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 50, density=0.6)
            di = build_differential_index(g, hops)
            py, npy = spec_pair(aggregate=aggregate, hops=hops)
            assert_same_answer(
                forward_topk(g, scores, py, diff_index=di),
                forward_topk(g, scores, npy, diff_index=di),
            )

    def test_directed_graphs(self):
        for seed in range(3):
            g = random_graph(35, 0.08, seed=seed, directed=True)
            scores = binary_scores(35, seed + 20)
            di = build_differential_index(g, 2)
            py, npy = spec_pair()
            a = forward_topk(g, scores, py, diff_index=di)
            b = forward_topk(g, scores, npy, diff_index=di)
            assert a.entries == b.entries

    @pytest.mark.parametrize("ordering", ["arbitrary", "degree", "ubound", "random"])
    def test_every_ordering(self, ordering):
        g = random_graph(40, 0.1, seed=3)
        scores = binary_scores(40, 13)
        di = build_differential_index(g, 2)
        py, npy = spec_pair()
        a = forward_topk(g, scores, py, diff_index=di, ordering=ordering, seed=5)
        b = forward_topk(g, scores, npy, diff_index=di, ordering=ordering, seed=5)
        assert a.entries == b.entries

    def test_block_size_does_not_change_answers(self):
        from repro.core.vectorized import forward_topk_numpy

        g = random_graph(50, 0.1, seed=8)
        scores = random_scores(50, seed=9, density=0.5)
        di = build_differential_index(g, 2)
        spec = QuerySpec(k=10, backend="numpy")
        reference = forward_topk_numpy(g, scores, spec, diff_index=di, block_size=1)
        for block_size in (3, 17, 1000):
            result = forward_topk_numpy(
                g, scores, spec, diff_index=di, block_size=block_size
            )
            assert_same_answer(reference, result)

    def test_max_min_rejected(self):
        g = random_graph(20, 0.2, seed=1)
        with pytest.raises(InvalidParameterError):
            forward_topk(
                g, binary_scores(20, 2), QuerySpec(k=3, aggregate="max", backend="numpy")
            )

    def test_stats_backend_tagged(self):
        g = random_graph(25, 0.15, seed=2)
        scores = binary_scores(25, 3)
        di = build_differential_index(g, 2)
        py, npy = spec_pair(k=4)
        assert forward_topk(g, scores, py, diff_index=di).stats.backend == "python"
        assert forward_topk(g, scores, npy, diff_index=di).stats.backend == "numpy"


class TestBackwardParity:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("include_self", [True, False])
    def test_binary_scores_bit_exact(self, aggregate, include_self):
        for seed in range(4):
            g = random_graph(45, 0.09, seed=seed)
            scores = binary_scores(45, seed + 30)
            di = build_differential_index(g, 2, include_self=include_self)
            py, npy = spec_pair(aggregate=aggregate, include_self=include_self)
            a = backward_topk(g, scores, py, sizes=di.sizes)
            b = backward_topk(g, scores, npy, sizes=di.sizes)
            assert a.entries == b.entries

    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_continuous_scores_exact_and_estimated_sizes(self, aggregate, hops):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 70, density=0.4)
            di = build_differential_index(g, hops)
            py, npy = spec_pair(aggregate=aggregate, hops=hops)
            assert_same_answer(
                backward_topk(g, scores, py, sizes=di.sizes),
                backward_topk(g, scores, npy, sizes=di.sizes),
            )
            assert_same_answer(
                backward_topk(g, scores, py),
                backward_topk(g, scores, npy),
            )

    def test_directed_distribution_uses_reversed_arcs(self):
        for seed in range(3):
            g = random_graph(35, 0.08, seed=seed, directed=True)
            scores = random_scores(35, seed=seed + 90, density=0.3)
            py, npy = spec_pair()
            assert_same_answer(
                backward_topk(g, scores, py),
                backward_topk(g, scores, npy),
            )

    @pytest.mark.parametrize("gamma", [0.25, 0.75, "auto"])
    def test_gamma_policies(self, gamma):
        g = random_graph(40, 0.1, seed=4)
        scores = random_scores(40, seed=44, density=0.5)
        di = build_differential_index(g, 2)
        py, npy = spec_pair()
        a = backward_topk(g, scores, py, gamma=gamma, sizes=di.sizes)
        b = backward_topk(g, scores, npy, gamma=gamma, sizes=di.sizes)
        assert_same_answer(a, b)
        assert a.stats.extra["gamma"] == b.stats.extra["gamma"]
        assert a.stats.extra["distributed_nodes"] == b.stats.extra["distributed_nodes"]
        assert a.stats.extra["rest_bound"] == b.stats.extra["rest_bound"]

    def test_exact_shortcut_taken_by_both(self):
        g = random_graph(40, 0.1, seed=6)
        scores = binary_scores(40, 66, density=0.2)
        di = build_differential_index(g, 2)
        py, npy = spec_pair()
        a = backward_topk(g, scores, py, gamma=1.0, sizes=di.sizes)
        b = backward_topk(g, scores, npy, gamma=1.0, sizes=di.sizes)
        assert a.stats.extra["exact_shortcut"] == 1.0
        assert b.stats.extra["exact_shortcut"] == 1.0
        assert a.entries == b.entries


class TestBackendSelection:
    def test_auto_resolves_down_the_ladder(self):
        # auto prefers the compiled tier when it can load, then numpy;
        # the pure-python fallback is covered by the no-numpy CI cell.
        from repro.core.backends import native_available

        expected = "native" if native_available() else "numpy"
        assert resolve_backend("auto") == expected

    def test_explicit_backends_resolve_to_themselves(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_backend("fortran")
        with pytest.raises(InvalidParameterError):
            QuerySpec(k=1, backend="fortran")

    def test_spec_backend_roundtrip(self):
        spec = QuerySpec(k=3, backend="python")
        assert spec.with_backend("numpy").backend == "numpy"
        assert spec.backend == "python"
        assert "auto" in BACKENDS

    def test_engine_backend_override_per_query(self):
        g = random_graph(40, 0.1, seed=7)
        scores = binary_scores(40, 77)
        engine = TopKEngine(g, scores, hops=2, backend="python")
        engine.build_indexes()
        a = engine.topk(5, "sum", "forward")
        b = engine.topk(5, "sum", "forward", backend="numpy")
        assert a.stats.backend == "python"
        assert b.stats.backend == "numpy"
        assert a.entries == b.entries

    def test_engine_rejects_unknown_backend(self):
        g = random_graph(10, 0.2, seed=8)
        with pytest.raises(InvalidParameterError):
            TopKEngine(g, binary_scores(10, 1), backend="gpu")

    def test_planner_surfaces_backend(self):
        g = random_graph(30, 0.1, seed=9)
        engine = TopKEngine(g, binary_scores(30, 5), hops=2, backend="numpy")
        plan = engine.explain(5)
        assert plan.backend == "numpy"
        assert "execution backend: numpy" in plan.explain()

    def test_engine_csr_cached_across_queries(self):
        g = random_graph(30, 0.1, seed=10)
        engine = TopKEngine(g, binary_scores(30, 6), hops=2, backend="numpy")
        engine.topk(3, "sum", "backward")
        first = engine.csr_view()
        engine.topk(3, "sum", "backward")
        assert engine.csr_view() is first


class TestBaseParity:
    @pytest.mark.parametrize(
        "aggregate", ["sum", "avg", "count", "max", "min"]
    )
    @pytest.mark.parametrize("include_self", [True, False])
    def test_binary_scores_bit_exact(self, aggregate, include_self):
        for seed in range(4):
            g = random_graph(45, 0.09, seed=seed)
            scores = binary_scores(45, seed + 40)
            py, npy = spec_pair(aggregate=aggregate, include_self=include_self)
            a = base_topk(g, scores, py)
            b = base_topk(g, scores, npy)
            assert a.entries == b.entries

    @pytest.mark.parametrize(
        "aggregate", ["sum", "avg", "count", "max", "min"]
    )
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_continuous_scores(self, aggregate, hops):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 60, density=0.6)
            py, npy = spec_pair(aggregate=aggregate, hops=hops)
            assert_equivalent_answer(
                base_topk(g, scores, py), base_topk(g, scores, npy)
            )

    def test_directed_graphs(self):
        for seed in range(3):
            g = random_graph(35, 0.08, seed=seed, directed=True)
            scores = binary_scores(35, seed + 25)
            py, npy = spec_pair()
            assert base_topk(g, scores, py).entries == base_topk(g, scores, npy).entries

    @pytest.mark.parametrize(
        "aggregate", ["sum", "avg", "count", "max", "min"]
    )
    def test_empty_balls(self, aggregate):
        # Nodes 2..5 are isolated: open balls are empty -> value 0.0 for
        # every aggregate kind, on both backends.
        g = Graph.from_edges([(0, 1)], num_nodes=6)
        scores = [0.9, 0.4, 0.8, 0.1, 0.0, 0.7]
        py, npy = spec_pair(k=6, aggregate=aggregate, include_self=False)
        a = base_topk(g, scores, py)
        b = base_topk(g, scores, npy)
        assert a.entries == b.entries
        assert sorted(v for _, v in a.entries)[:4] == [0.0, 0.0, 0.0, 0.0]

    def test_node_order_respected(self):
        g = random_graph(40, 0.1, seed=5)
        scores = binary_scores(40, 15)
        order = list(reversed(range(40)))
        py, npy = spec_pair()
        a = base_topk(g, scores, py, node_order=order)
        b = base_topk(g, scores, npy, node_order=order)
        assert a.entries == b.entries
        assert a.stats.nodes_evaluated == b.stats.nodes_evaluated == 40

    def test_block_size_does_not_change_answers(self):
        from repro.core.vectorized import base_topk_numpy

        g = random_graph(50, 0.1, seed=8)
        scores = random_scores(50, seed=9, density=0.5)
        spec = QuerySpec(k=10, backend="numpy")
        reference = base_topk_numpy(g, scores, spec, block_size=1)
        for block_size in (3, 17, 1000):
            result = base_topk_numpy(g, scores, spec, block_size=block_size)
            assert_same_answer(reference, result)

    def test_stats_backend_tagged_and_counters_agree(self):
        g = random_graph(25, 0.15, seed=2)
        scores = binary_scores(25, 3)
        py, npy = spec_pair(k=4)
        a = base_topk(g, scores, py)
        b = base_topk(g, scores, npy)
        assert a.stats.backend == "python"
        assert b.stats.backend == "numpy"
        assert a.stats.edges_scanned == b.stats.edges_scanned
        assert a.stats.nodes_visited == b.stats.nodes_visited
        assert a.stats.balls_expanded == b.stats.balls_expanded


WEIGHT_PROFILES = [inverse_distance, exponential_decay(0.5), uniform_weight]


def weighted_spec_pair(k=7, hops=2, include_self=True):
    py = QuerySpec(
        k=k, aggregate="sum", hops=hops, include_self=include_self,
        backend="python",
    )
    return py, py.with_backend("numpy")


class TestWeightedParity:
    @pytest.mark.parametrize("profile", WEIGHT_PROFILES)
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_weighted_base(self, profile, hops):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 80, density=0.5)
            py, npy = weighted_spec_pair(hops=hops)
            assert_equivalent_answer(
                weighted_base_topk(g, scores, py, profile),
                weighted_base_topk(g, scores, npy, profile),
            )

    @pytest.mark.parametrize("include_self", [True, False])
    def test_weighted_base_directed(self, include_self):
        for seed in range(3):
            g = random_graph(35, 0.08, seed=seed, directed=True)
            scores = random_scores(35, seed=seed + 85, density=0.5)
            py, npy = weighted_spec_pair(include_self=include_self)
            assert_equivalent_answer(
                weighted_base_topk(g, scores, py),
                weighted_base_topk(g, scores, npy),
            )

    @pytest.mark.parametrize("profile", WEIGHT_PROFILES)
    @pytest.mark.parametrize("gamma", [0.25, 0.75, "auto"])
    def test_weighted_backward(self, profile, gamma):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 90, density=0.5)
            di = build_differential_index(g, 2)
            py, npy = weighted_spec_pair()
            a = weighted_backward_topk(
                g, scores, py, profile, gamma=gamma, sizes=di.sizes
            )
            b = weighted_backward_topk(
                g, scores, npy, profile, gamma=gamma, sizes=di.sizes
            )
            assert_equivalent_answer(a, b)
            assert a.stats.extra["gamma"] == b.stats.extra["gamma"]
            assert (
                a.stats.extra["distributed_nodes"]
                == b.stats.extra["distributed_nodes"]
            )
            assert a.stats.extra["rest_bound"] == b.stats.extra["rest_bound"]

    def test_weighted_backward_estimated_sizes(self):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 95, density=0.4)
            py, npy = weighted_spec_pair()
            assert_equivalent_answer(
                weighted_backward_topk(g, scores, py),
                weighted_backward_topk(g, scores, npy),
            )

    def test_weighted_backward_directed(self):
        for seed in range(3):
            g = random_graph(35, 0.08, seed=seed, directed=True)
            scores = random_scores(35, seed=seed + 97, density=0.3)
            py, npy = weighted_spec_pair()
            assert_equivalent_answer(
                weighted_backward_topk(g, scores, py),
                weighted_backward_topk(g, scores, npy),
            )

    def test_exact_shortcut_taken_by_both(self):
        g = random_graph(40, 0.1, seed=6)
        scores = binary_scores(40, 66, density=0.2)
        di = build_differential_index(g, 2)
        py, npy = weighted_spec_pair()
        a = weighted_backward_topk(g, scores, py, gamma=1.0, sizes=di.sizes)
        b = weighted_backward_topk(g, scores, npy, gamma=1.0, sizes=di.sizes)
        assert a.stats.extra["exact_shortcut"] == 1.0
        assert b.stats.extra["exact_shortcut"] == 1.0
        assert_same_answer(a, b)

    @pytest.mark.parametrize("algorithm", ["base", "backward"])
    def test_empty_balls(self, algorithm):
        g = Graph.from_edges([(0, 1)], num_nodes=5)
        scores = [0.9, 0.4, 0.8, 0.1, 0.6]
        py, npy = weighted_spec_pair(k=5, include_self=False)
        run = weighted_base_topk if algorithm == "base" else weighted_backward_topk
        a = run(g, scores, py)
        b = run(g, scores, npy)
        assert_same_answer(a, b)
        assert sorted(v for _, v in a.entries)[:3] == [0.0, 0.0, 0.0]

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_avg_rejected_on_both_backends(self, backend):
        g = random_graph(20, 0.2, seed=1)
        spec = QuerySpec(k=3, aggregate="avg", backend=backend)
        with pytest.raises(InvalidParameterError):
            weighted_base_topk(g, binary_scores(20, 2), spec)
        with pytest.raises(InvalidParameterError):
            weighted_backward_topk(g, binary_scores(20, 2), spec)

    def test_stats_backend_tagged(self):
        g = random_graph(25, 0.15, seed=2)
        scores = binary_scores(25, 3)
        py, npy = weighted_spec_pair(k=4)
        assert weighted_base_topk(g, scores, py).stats.backend == "python"
        assert weighted_base_topk(g, scores, npy).stats.backend == "numpy"
        assert weighted_backward_topk(g, scores, py).stats.backend == "python"
        assert weighted_backward_topk(g, scores, npy).stats.backend == "numpy"


class TestBatchParity:
    def test_shared_scan_backends_agree(self):
        g = random_graph(50, 0.08, seed=11)
        queries = [
            BatchQuery(
                scores=ScoreVector(random_scores(50, seed=100 + i, density=0.7)),
                k=5,
                aggregate=agg,
            )
            for i, agg in enumerate(["sum", "avg", "count"])
        ]
        py = batch_base_topk(g, queries, hops=2, backend="python")
        npy = batch_base_topk(g, queries, hops=2, backend="numpy")
        for a, b in zip(py, npy):
            assert_same_answer(a, b)
            assert a.stats.edges_scanned == b.stats.edges_scanned
            assert a.stats.balls_expanded == b.stats.balls_expanded
        assert npy[0].stats.backend == "numpy"

    def test_fused_scan_matches_per_query_base(self):
        g = random_graph(45, 0.09, seed=12)
        queries = [
            BatchQuery(
                scores=ScoreVector(binary_scores(45, 200 + i, density=0.5)),
                k=4 + i,
                aggregate=agg,
            )
            for i, agg in enumerate(["sum", "avg", "count", "sum"])
        ]
        fused = batch_base_topk(g, queries, hops=2, backend="numpy")
        for entry, result in zip(queries, fused):
            spec = QuerySpec(
                k=entry.k, aggregate=entry.aggregate, hops=2, backend="python"
            )
            alone = base_topk(g, entry.scores.values(), spec)
            assert result.entries == alone.entries

    @pytest.mark.parametrize("include_self", [True, False])
    def test_avg_ties_and_empty_balls(self, include_self):
        # A triangle (identical closed neighborhoods -> exact AVG ties), an
        # edge, and an isolated node (empty open ball).
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4)], num_nodes=6)
        queries = [
            BatchQuery(
                scores=ScoreVector([1.0, 0.0, 1.0, 1.0, 0.0, 1.0]),
                k=6,
                aggregate="avg",
            ),
            BatchQuery(
                scores=ScoreVector([0.5, 0.5, 0.5, 0.25, 0.25, 0.0]),
                k=3,
                aggregate="avg",
            ),
        ]
        py = batch_base_topk(
            g, queries, hops=2, include_self=include_self, backend="python"
        )
        npy = batch_base_topk(
            g, queries, hops=2, include_self=include_self, backend="numpy"
        )
        for a, b in zip(py, npy):
            assert a.entries == b.entries


# ---------------------------------------------------------------------------
# Property tests: the fused batch kernel against the per-query oracle
# ---------------------------------------------------------------------------
# Guarded import, NOT a module-level importorskip: a missing hypothesis
# must skip only this property test, never the parity suite above it.
try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - exercised without hypothesis
    given = settings = st = None

#: Dyadic-rational scores: sums of these are exact in binary floating point
#: in any association order, so the two backends must be *bit*-identical
#: and tie handling cannot diverge on rounding.
DYADIC = [i / 16.0 for i in range(17)]


def _fused_batch_kernel_property(data):
    """Fused numpy batch == each query through python Base, entry for entry."""
    n = data.draw(st.integers(min_value=2, max_value=14), label="n")
    edges = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda e: e[0] < e[1]),
            unique=True,
            max_size=n * 2,
        ),
        label="edges",
    )
    graph = Graph.from_edges(edges, num_nodes=n)
    hops = data.draw(st.integers(0, 3), label="hops")
    include_self = data.draw(st.booleans(), label="include_self")
    num_queries = data.draw(st.integers(1, 4), label="q")
    queries = []
    for i in range(num_queries):
        scores = data.draw(
            st.lists(
                st.sampled_from(DYADIC), min_size=n, max_size=n
            ),
            label=f"scores{i}",
        )
        queries.append(
            BatchQuery(
                scores=ScoreVector(scores),
                k=data.draw(st.integers(1, n), label=f"k{i}"),
                aggregate=data.draw(
                    st.sampled_from(["sum", "avg", "count"]), label=f"agg{i}"
                ),
            )
        )
    fused = batch_base_topk(
        graph, queries, hops=hops, include_self=include_self, backend="numpy"
    )
    for entry, result in zip(queries, fused):
        spec = QuerySpec(
            k=entry.k,
            aggregate=entry.aggregate,
            hops=hops,
            include_self=include_self,
            backend="python",
        )
        alone = base_topk(graph, entry.scores.values(), spec)
        assert result.entries == alone.entries


if st is not None:
    test_fused_batch_kernel_property = settings(max_examples=40, deadline=None)(
        given(data=st.data())(_fused_batch_kernel_property)
    )
else:  # pragma: no cover - exercised without hypothesis

    @pytest.mark.skip(reason="hypothesis not installed")
    def test_fused_batch_kernel_property():
        pass
