"""Backend parity: the vectorized numpy backend must agree with Python.

The contract (see :mod:`repro.core.backends`):

* identical node selections in identical order, for every algorithm,
  aggregate, ball convention, and graph shape;
* bit-exact entries on integer-valued (binary / COUNT) scores, where float
  summation order cannot matter;
* values within 1e-9 on continuous scores (the two backends accumulate
  floats in different orders, so the last ulp may differ).

These tests are the safety net that lets ``backend="auto"`` default to the
vectorized path: any divergence is a bug, not a tolerance.
"""

from __future__ import annotations

import random

import pytest

from repro.core.backends import BACKENDS, resolve_backend
from repro.core.backward import backward_topk
from repro.core.batch import BatchQuery, batch_base_topk
from repro.core.engine import TopKEngine
from repro.core.forward import forward_topk
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError
from repro.graph.diffindex import build_differential_index
from repro.relevance.base import ScoreVector
from tests.conftest import random_graph, random_scores, rounded

np = pytest.importorskip("numpy")


def binary_scores(n: int, seed: int, density: float = 0.3):
    rng = random.Random(seed)
    return [1.0 if rng.random() < density else 0.0 for _ in range(n)]


def spec_pair(k=7, aggregate="sum", hops=2, include_self=True):
    py = QuerySpec(
        k=k, aggregate=aggregate, hops=hops, include_self=include_self,
        backend="python",
    )
    return py, py.with_backend("numpy")


def assert_same_answer(a, b):
    """Same nodes in the same order; values equal to 1e-9."""
    assert a.nodes == b.nodes
    assert rounded(a.values) == rounded(b.values)


class TestForwardParity:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("include_self", [True, False])
    def test_binary_scores_bit_exact(self, aggregate, include_self):
        for seed in range(4):
            g = random_graph(45, 0.09, seed=seed)
            scores = binary_scores(45, seed + 10)
            di = build_differential_index(g, 2, include_self=include_self)
            py, npy = spec_pair(aggregate=aggregate, include_self=include_self)
            a = forward_topk(g, scores, py, diff_index=di)
            b = forward_topk(g, scores, npy, diff_index=di)
            assert a.entries == b.entries

    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_continuous_scores(self, aggregate, hops):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 50, density=0.6)
            di = build_differential_index(g, hops)
            py, npy = spec_pair(aggregate=aggregate, hops=hops)
            assert_same_answer(
                forward_topk(g, scores, py, diff_index=di),
                forward_topk(g, scores, npy, diff_index=di),
            )

    def test_directed_graphs(self):
        for seed in range(3):
            g = random_graph(35, 0.08, seed=seed, directed=True)
            scores = binary_scores(35, seed + 20)
            di = build_differential_index(g, 2)
            py, npy = spec_pair()
            a = forward_topk(g, scores, py, diff_index=di)
            b = forward_topk(g, scores, npy, diff_index=di)
            assert a.entries == b.entries

    @pytest.mark.parametrize("ordering", ["arbitrary", "degree", "ubound", "random"])
    def test_every_ordering(self, ordering):
        g = random_graph(40, 0.1, seed=3)
        scores = binary_scores(40, 13)
        di = build_differential_index(g, 2)
        py, npy = spec_pair()
        a = forward_topk(g, scores, py, diff_index=di, ordering=ordering, seed=5)
        b = forward_topk(g, scores, npy, diff_index=di, ordering=ordering, seed=5)
        assert a.entries == b.entries

    def test_block_size_does_not_change_answers(self):
        from repro.core.vectorized import forward_topk_numpy

        g = random_graph(50, 0.1, seed=8)
        scores = random_scores(50, seed=9, density=0.5)
        di = build_differential_index(g, 2)
        spec = QuerySpec(k=10, backend="numpy")
        reference = forward_topk_numpy(g, scores, spec, diff_index=di, block_size=1)
        for block_size in (3, 17, 1000):
            result = forward_topk_numpy(
                g, scores, spec, diff_index=di, block_size=block_size
            )
            assert_same_answer(reference, result)

    def test_max_min_rejected(self):
        g = random_graph(20, 0.2, seed=1)
        with pytest.raises(InvalidParameterError):
            forward_topk(
                g, binary_scores(20, 2), QuerySpec(k=3, aggregate="max", backend="numpy")
            )

    def test_stats_backend_tagged(self):
        g = random_graph(25, 0.15, seed=2)
        scores = binary_scores(25, 3)
        di = build_differential_index(g, 2)
        py, npy = spec_pair(k=4)
        assert forward_topk(g, scores, py, diff_index=di).stats.backend == "python"
        assert forward_topk(g, scores, npy, diff_index=di).stats.backend == "numpy"


class TestBackwardParity:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("include_self", [True, False])
    def test_binary_scores_bit_exact(self, aggregate, include_self):
        for seed in range(4):
            g = random_graph(45, 0.09, seed=seed)
            scores = binary_scores(45, seed + 30)
            di = build_differential_index(g, 2, include_self=include_self)
            py, npy = spec_pair(aggregate=aggregate, include_self=include_self)
            a = backward_topk(g, scores, py, sizes=di.sizes)
            b = backward_topk(g, scores, npy, sizes=di.sizes)
            assert a.entries == b.entries

    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_continuous_scores_exact_and_estimated_sizes(self, aggregate, hops):
        for seed in range(3):
            g = random_graph(40, 0.1, seed=seed)
            scores = random_scores(40, seed=seed + 70, density=0.4)
            di = build_differential_index(g, hops)
            py, npy = spec_pair(aggregate=aggregate, hops=hops)
            assert_same_answer(
                backward_topk(g, scores, py, sizes=di.sizes),
                backward_topk(g, scores, npy, sizes=di.sizes),
            )
            assert_same_answer(
                backward_topk(g, scores, py),
                backward_topk(g, scores, npy),
            )

    def test_directed_distribution_uses_reversed_arcs(self):
        for seed in range(3):
            g = random_graph(35, 0.08, seed=seed, directed=True)
            scores = random_scores(35, seed=seed + 90, density=0.3)
            py, npy = spec_pair()
            assert_same_answer(
                backward_topk(g, scores, py),
                backward_topk(g, scores, npy),
            )

    @pytest.mark.parametrize("gamma", [0.25, 0.75, "auto"])
    def test_gamma_policies(self, gamma):
        g = random_graph(40, 0.1, seed=4)
        scores = random_scores(40, seed=44, density=0.5)
        di = build_differential_index(g, 2)
        py, npy = spec_pair()
        a = backward_topk(g, scores, py, gamma=gamma, sizes=di.sizes)
        b = backward_topk(g, scores, npy, gamma=gamma, sizes=di.sizes)
        assert_same_answer(a, b)
        assert a.stats.extra["gamma"] == b.stats.extra["gamma"]
        assert a.stats.extra["distributed_nodes"] == b.stats.extra["distributed_nodes"]
        assert a.stats.extra["rest_bound"] == b.stats.extra["rest_bound"]

    def test_exact_shortcut_taken_by_both(self):
        g = random_graph(40, 0.1, seed=6)
        scores = binary_scores(40, 66, density=0.2)
        di = build_differential_index(g, 2)
        py, npy = spec_pair()
        a = backward_topk(g, scores, py, gamma=1.0, sizes=di.sizes)
        b = backward_topk(g, scores, npy, gamma=1.0, sizes=di.sizes)
        assert a.stats.extra["exact_shortcut"] == 1.0
        assert b.stats.extra["exact_shortcut"] == 1.0
        assert a.entries == b.entries


class TestBackendSelection:
    def test_auto_resolves_to_numpy_when_available(self):
        assert resolve_backend("auto") == "numpy"

    def test_explicit_backends_resolve_to_themselves(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_backend("fortran")
        with pytest.raises(InvalidParameterError):
            QuerySpec(k=1, backend="fortran")

    def test_spec_backend_roundtrip(self):
        spec = QuerySpec(k=3, backend="python")
        assert spec.with_backend("numpy").backend == "numpy"
        assert spec.backend == "python"
        assert "auto" in BACKENDS

    def test_engine_backend_override_per_query(self):
        g = random_graph(40, 0.1, seed=7)
        scores = binary_scores(40, 77)
        engine = TopKEngine(g, scores, hops=2, backend="python")
        engine.build_indexes()
        a = engine.topk(5, "sum", "forward")
        b = engine.topk(5, "sum", "forward", backend="numpy")
        assert a.stats.backend == "python"
        assert b.stats.backend == "numpy"
        assert a.entries == b.entries

    def test_engine_rejects_unknown_backend(self):
        g = random_graph(10, 0.2, seed=8)
        with pytest.raises(InvalidParameterError):
            TopKEngine(g, binary_scores(10, 1), backend="gpu")

    def test_planner_surfaces_backend(self):
        g = random_graph(30, 0.1, seed=9)
        engine = TopKEngine(g, binary_scores(30, 5), hops=2, backend="numpy")
        plan = engine.explain(5)
        assert plan.backend == "numpy"
        assert "execution backend: numpy" in plan.explain()

    def test_engine_csr_cached_across_queries(self):
        g = random_graph(30, 0.1, seed=10)
        engine = TopKEngine(g, binary_scores(30, 6), hops=2, backend="numpy")
        engine.topk(3, "sum", "backward")
        first = engine.csr_view()
        engine.topk(3, "sum", "backward")
        assert engine.csr_view() is first


class TestBatchParity:
    def test_shared_scan_backends_agree(self):
        g = random_graph(50, 0.08, seed=11)
        queries = [
            BatchQuery(
                scores=ScoreVector(random_scores(50, seed=100 + i, density=0.7)),
                k=5,
                aggregate=agg,
            )
            for i, agg in enumerate(["sum", "avg", "count"])
        ]
        py = batch_base_topk(g, queries, hops=2, backend="python")
        npy = batch_base_topk(g, queries, hops=2, backend="numpy")
        for a, b in zip(py, npy):
            assert_same_answer(a, b)
            assert a.stats.edges_scanned == b.stats.edges_scanned
            assert a.stats.balls_expanded == b.stats.balls_expanded
        assert npy[0].stats.backend == "numpy"
