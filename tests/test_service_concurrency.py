"""Concurrency stress: parallel queries, shared caches, racing mutations.

These tests drive the serving layer with real thread pools and assert the
*answers* stay exactly right — thread-safety of `GraphContext`'s lazily
built artifacts (CSR views, size indexes, LRU ball caches with their
shared visited-stamp arrays), the scheduler's dispatch accounting, and the
readers-writer isolation between queries and dynamic mutations.

Scores are quantized (dyadic) so sums are exact in any execution order and
every comparison can demand entry-for-entry identity.  ``REPRO_STRESS_THREADS``
/ ``REPRO_STRESS_ROUNDS`` scale the load up in CI's concurrency-smoke job.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.session import Network
from tests.conftest import random_graph
from tests.test_service import quantized_scores

THREADS = int(os.environ.get("REPRO_STRESS_THREADS", "4"))
ROUNDS = int(os.environ.get("REPRO_STRESS_ROUNDS", "3"))

SCORE_NAMES = ("s0", "s1", "s2", "s3")


def build_net(graph_seed: int = 13, *, dynamic: bool = False) -> Network:
    graph = random_graph(90, 0.06, seed=graph_seed)
    if dynamic:
        from repro.dynamic.graph import DynamicGraph

        graph = DynamicGraph.from_graph(graph)
    net = Network(graph, hops=2)
    for i, name in enumerate(SCORE_NAMES):
        net.add_scores(name, quantized_scores(90, seed=100 + i, density=0.5 + 0.1 * i))
    return net


def shapes(net):
    """A mixed workload: coalescible, pinned, filtered, and AVG queries."""
    return [
        ("plain", net.query("s0").limit(5)),
        ("plain2", net.query("s1").limit(8)),
        ("avg", net.query("s2").limit(5).aggregate("avg")),
        ("backward", net.query("s3").limit(5).algorithm("backward")),
        ("filtered", net.query("s0").limit(4).where(range(0, 90, 3))),
        ("count", net.query("s1").limit(6).aggregate("count")),
    ]


class TestParallelQueries:
    def test_parallel_submits_match_sequential(self):
        net = build_net()
        try:
            expected = {tag: builder.run().entries for tag, builder in shapes(net)}
            net.service(workers=THREADS)
            for _ in range(ROUNDS):
                handles = [
                    (tag, builder.submit(cached=False))
                    for tag, builder in shapes(net)
                    for _ in range(THREADS)
                ]
                for tag, handle in handles:
                    assert handle.result(timeout=30).entries == expected[tag], tag
        finally:
            net.service().shutdown()

    def test_parallel_inline_runs_share_context_safely(self):
        # .run() on a zero-worker service executes on the calling thread:
        # many caller threads exercise GraphContext's lazy builds and the
        # shared ball caches truly in parallel.
        net = build_net(graph_seed=29)
        expected = {tag: builder.run().entries for tag, builder in shapes(net)}

        def worker(_):
            out = {}
            for tag, builder in shapes(net):
                out[tag] = builder.run().entries
            return out

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for answer in pool.map(worker, range(THREADS * ROUNDS)):
                assert answer == expected

    @pytest.mark.skipif(
        os.environ.get("REPRO_FORCE_PYTHON") == "1", reason="numpy-backend stress"
    )
    def test_parallel_backward_shares_ball_cache(self):
        pytest.importorskip("numpy")
        net = build_net(graph_seed=41)
        builder = net.query("s3").limit(6).algorithm("backward").backend("numpy")
        expected = builder.run().entries

        def worker(_):
            return builder.run().entries

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for entries in pool.map(worker, range(THREADS * 4)):
                assert entries == expected
        stats = net._ctx.ball_cache().stats()
        assert stats["hits"] > 0  # the sessions cache was genuinely shared

    def test_concurrent_submit_and_stream(self):
        net = build_net(graph_seed=57)
        expected = net.query("s0").limit(5).run().entries
        net.service(workers=2)
        try:
            stream_handle = net.query("s0").limit(5).submit(stream=True)
            plain = [net.query("s1").limit(5).submit() for _ in range(6)]
            updates = list(stream_handle.updates(timeout=30))
            assert updates and updates[-1].done
            # Streams evaluate in bound order, so equal-valued boundary
            # ties may resolve to different nodes than run(); the value
            # multiset is exact either way (documented tie semantics).
            assert [v for _, v in updates[-1].entries] == [v for _, v in expected]
            for handle in plain:
                handle.result(timeout=30)
        finally:
            net.service().shutdown()


class TestMutationIsolation:
    def test_mutations_never_tear_inflight_queries(self):
        net = build_net(graph_seed=71, dynamic=True)
        net.service(workers=THREADS)
        try:
            errors = []
            stop = threading.Event()

            def mutate():
                edge = 0
                while not stop.is_set():
                    try:
                        u, v = 80 + (edge % 9), (edge * 7) % 50
                        if not net.graph.has_edge(u, v):
                            net.add_edge(u, v)
                        net.update_score("s0", edge % 90, 0.5)
                    except Exception as exc:  # pragma: no cover - must not happen
                        errors.append(exc)
                    edge += 1

            writer = threading.Thread(target=mutate, daemon=True)
            writer.start()
            try:
                for _ in range(ROUNDS * 4):
                    handles = [
                        net.query(name).limit(5).submit(cached=False)
                        for name in SCORE_NAMES
                    ]
                    for handle in handles:
                        result = handle.result(timeout=30)
                        assert len(result.entries) == 5
            finally:
                stop.set()
                writer.join(timeout=10)
            assert not errors, errors
            # Quiesced: the post-mutation answer is stable and exact.
            final = net.query("s0").limit(5).run().entries
            assert net.query("s0").limit(5).run().entries == final
        finally:
            net.service().shutdown()

    def test_mutation_waits_for_inflight_then_queries_see_new_version(self):
        from tests.test_service import hold_worker

        net = build_net(graph_seed=83, dynamic=True)
        net.service(workers=1)
        try:
            release, blocker = hold_worker(net)
            state = {"mutated_at": None, "blocker_done_at": None}

            def mutate():
                net.add_edge(85, 3)
                state["mutated_at"] = threading.get_ident()

            writer = threading.Thread(target=mutate, daemon=True)
            writer.start()
            # The mutation must be parked behind the in-flight query.
            writer.join(timeout=0.2)
            assert writer.is_alive(), "add_edge did not wait for reader"
            release.set()
            blocker.result(timeout=10)
            writer.join(timeout=10)
            assert not writer.is_alive()
            assert net.graph.has_edge(85, 3)
            post = net.query("s0").limit(5).run()
            assert len(post.entries) == 5
        finally:
            net.service().shutdown()


class TestCacheConsistencyUnderLoad:
    def test_cached_answers_always_match_current_graph(self):
        net = build_net(graph_seed=97, dynamic=True)
        net.service(workers=2)
        try:
            for round_no in range(ROUNDS):
                fresh = net.query("s1").limit(5).run().entries
                # A burst of cached submits: every answer equals the live one.
                handles = [net.query("s1").limit(5).submit() for _ in range(8)]
                for handle in handles:
                    assert handle.result(timeout=30).entries == fresh
                if not net.graph.has_edge(86, round_no + 1):
                    net.add_edge(86, round_no + 1)
                else:
                    net.remove_edge(86, round_no + 1)
                after = net.query("s1").limit(5).run().entries
                burst = [net.query("s1").limit(5).submit() for _ in range(4)]
                for handle in burst:
                    assert handle.result(timeout=30).entries == after
        finally:
            net.service().shutdown()
