"""Unit and soundness tests for the paper's bound formulas.

The exhaustive random-graph soundness checks live here (with plain loops)
and in test_properties.py (with hypothesis); these tests pin the exact
algebra of each formula on hand-computed cases first.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    avg_bound,
    backward_sum_bound,
    forward_sum_bound,
    static_sum_bound,
)
from repro.errors import InvalidParameterError
from repro.graph.diffindex import build_differential_index
from tests.conftest import random_graph, random_scores, ref_aggregate, ref_ball


class TestStaticBound:
    def test_formula(self):
        assert static_sum_bound(5, 0.3) == 4.3

    def test_zero_size_clamped(self):
        assert static_sum_bound(0, 0.7) == 0.7

    def test_is_upper_bound_everywhere(self):
        g = random_graph(30, 0.12, seed=1)
        scores = random_scores(30, seed=2)
        for u in range(30):
            ball = ref_ball(g, u, 2)
            exact = sum(scores[v] for v in ball)
            assert static_sum_bound(len(ball), scores[u]) >= exact - 1e-12


class TestForwardBound:
    def test_takes_minimum(self):
        assert forward_sum_bound(3.0, 2, 10.0) == 5.0
        assert forward_sum_bound(9.0, 4, 10.0) == 10.0

    def test_negative_delta_rejected(self):
        with pytest.raises(InvalidParameterError):
            forward_sum_bound(1.0, -1, 5.0)

    @pytest.mark.parametrize("seed", [3, 4, 5])
    @pytest.mark.parametrize("hops", [1, 2])
    def test_eq1_sound_on_every_arc(self, seed, hops):
        g = random_graph(25, 0.15, seed=seed)
        scores = random_scores(25, seed=seed + 50)
        idx = build_differential_index(g, hops)
        exact = {
            u: ref_aggregate(g, scores, u, hops, "sum") for u in range(25)
        }
        sizes = idx.sizes
        for u, v in g.arcs():
            static = static_sum_bound(sizes.value(v), scores[v])
            bound = forward_sum_bound(exact[u], idx.delta(g, u, v), static)
            assert bound >= exact[v] - 1e-9, (u, v)


class TestBackwardBound:
    def test_not_distributed_adds_own_score(self):
        # PS=2.0 from 3 covered; ball 10; rest 0.5; f(v)=0.4, v undistributed:
        # unknown others = 10 - 3 - 1 = 6 -> 2.0 + 3.0 + 0.4
        value = backward_sum_bound(2.0, 3, 10, 0.4, 0.5, self_distributed=False)
        assert value == pytest.approx(5.4)

    def test_self_distributed_excludes_own_score(self):
        # unknown = 10 - 3 = 7 -> 2.0 + 3.5
        value = backward_sum_bound(2.0, 3, 10, 0.4, 0.5, self_distributed=True)
        assert value == pytest.approx(5.5)

    def test_negative_unknown_clamped(self):
        value = backward_sum_bound(4.0, 9, 5, 0.2, 0.5, self_distributed=True)
        assert value == 4.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            backward_sum_bound(1.0, 1, 5, 0.1, -0.2, self_distributed=False)
        with pytest.raises(InvalidParameterError):
            backward_sum_bound(1.0, -1, 5, 0.1, 0.2, self_distributed=False)

    @pytest.mark.parametrize("seed", [6, 7])
    @pytest.mark.parametrize("gamma", [0.0, 0.3, 0.7, 1.1])
    def test_eq3_sound_after_partial_distribution(self, seed, gamma):
        """Simulate the distribution phase and check Eq. 3 for every node."""
        g = random_graph(25, 0.15, seed=seed)
        scores = random_scores(25, seed=seed + 60)
        hops = 2
        distributed = [u for u in range(25) if scores[u] >= gamma and scores[u] > 0]
        rest = max(
            (scores[u] for u in range(25) if u not in distributed), default=0.0
        )
        partial = [0.0] * 25
        covered = [0] * 25
        for u in distributed:
            for v in ref_ball(g, u, hops):
                partial[v] += scores[u]
                covered[v] += 1
        for v in range(25):
            exact = ref_aggregate(g, scores, v, hops, "sum")
            ball = len(ref_ball(g, v, hops))
            bound = backward_sum_bound(
                partial[v],
                covered[v],
                ball,
                scores[v],
                rest,
                self_distributed=v in distributed,
            )
            assert bound >= exact - 1e-9


class TestAvgBound:
    def test_formula(self):
        assert avg_bound(6.0, 3) == 2.0

    def test_zero_size_clamped(self):
        assert avg_bound(6.0, 0) == 6.0

    def test_lower_denominator_keeps_upper_bound(self):
        g = random_graph(20, 0.2, seed=8)
        scores = random_scores(20, seed=9)
        for v in range(20):
            ball = ref_ball(g, v, 2)
            exact_avg = ref_aggregate(g, scores, v, 2, "avg")
            sum_upper = static_sum_bound(len(ball), scores[v])
            lower_size = 1 + g.degree(v)  # 1-hop closed ball
            assert avg_bound(sum_upper, lower_size) >= exact_avg - 1e-9
