"""Property tests for the CSR layer: round-trips and expansion kernels.

Two families:

* ``to_csr``/``from_csr`` round-trips over randomized graph shapes —
  weighted, directed, empty, isolated-node — asserting the reconstruction
  is arc-for-arc (and weight-for-weight) identical, plus the platform-width
  regression (``array('q')`` is 8 bytes everywhere; ``'l'`` is 4 on
  Windows/ILP32).
* the numpy expansion kernels (``neighbor_slab`` / ``csr_hop_ball`` /
  ``batched_hop_balls`` / ``CSRBallCache``) checked against the pure-Python
  :func:`~repro.graph.traversal.hop_ball` oracle on the same randomized
  shapes.
"""

from __future__ import annotations

import random

import pytest

import repro.graph.csr as csr_module
from repro.graph.csr import CSRGraph, from_csr, to_csr
from repro.graph.graph import Graph
from repro.graph.traversal import TraversalCounter, hop_ball
from tests.conftest import random_graph


def random_weighted_graph(n: int, edge_prob: float, seed: int, *, directed: bool) -> Graph:
    rng = random.Random(seed)
    edges = []
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            if not directed and u > v:
                continue
            if rng.random() < edge_prob:
                edges.append((u, v, round(rng.uniform(0.1, 5.0), 3)))
    return Graph.from_weighted_edges(edges, num_nodes=n, directed=directed)


def assert_graphs_equal(a: Graph, b: Graph) -> None:
    assert a.num_nodes == b.num_nodes
    assert a.num_edges == b.num_edges
    assert a.directed == b.directed
    assert a.weighted == b.weighted
    for u in a.nodes():
        assert list(a.neighbors(u)) == list(b.neighbors(u))
        if a.weighted:
            assert list(a.neighbor_weights(u)) == list(b.neighbor_weights(u))


class TestRoundTripProperties:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("directed", [False, True])
    def test_random_graphs(self, seed, directed):
        g = random_graph(
            10 + seed * 7, 0.05 + 0.03 * (seed % 4), seed=seed, directed=directed
        )
        assert_graphs_equal(g, from_csr(to_csr(g)))

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("directed", [False, True])
    def test_random_weighted_graphs(self, seed, directed):
        g = random_weighted_graph(12 + seed * 5, 0.1, seed=seed, directed=directed)
        assert_graphs_equal(g, from_csr(to_csr(g)))

    def test_empty_graph(self):
        g = Graph([])
        back = from_csr(to_csr(g))
        assert back.num_nodes == 0
        assert back.num_edges == 0

    def test_edgeless_graph(self):
        g = Graph.from_edges([], num_nodes=5)
        back = from_csr(to_csr(g))
        assert back.num_nodes == 5
        assert back.num_edges == 0

    def test_isolated_nodes_preserved(self):
        # Nodes 3, 5, 6 have no edges; indptr must keep their empty slabs.
        g = Graph.from_edges([(0, 1), (1, 2), (4, 0)], num_nodes=7)
        csr = to_csr(g)
        assert csr.degree(3) == csr.degree(5) == csr.degree(6) == 0
        assert_graphs_equal(g, from_csr(csr))

    def test_fixed_width_arrays(self):
        """array('q') pins 8-byte ints on every platform (the 'l' bug)."""
        csr = to_csr(Graph.from_edges([(0, 1)]))
        assert csr.indptr.itemsize == 8
        assert csr.indices.itemsize == 8

    def test_degree_array_exported(self):
        assert "degree_array" in csr_module.__all__
        numpy = pytest.importorskip("numpy")
        g = random_graph(15, 0.2, seed=3)
        degrees = csr_module.degree_array(g)
        assert isinstance(degrees, numpy.ndarray)
        assert degrees.tolist() == [g.degree(u) for u in g.nodes()]

    def test_numpy_roundtrip(self):
        pytest.importorskip("numpy")
        g = random_weighted_graph(20, 0.15, seed=9, directed=True)
        assert_graphs_equal(g, from_csr(to_csr(g, use_numpy=True)))


class TestExpansionKernels:
    """The numpy kernels against the pure-Python BFS oracle."""

    @pytest.fixture(autouse=True)
    def _numpy(self):
        self.np = pytest.importorskip("numpy")

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_csr_hop_ball_matches_hop_ball(self, seed, directed, hops):
        g = random_graph(30, 0.1, seed=seed, directed=directed)
        csr = to_csr(g, use_numpy=True)
        for include_self in (True, False):
            for center in range(0, 30, 7):
                expected = sorted(
                    hop_ball(g, center, hops, include_self=include_self)
                )
                actual = csr_module.csr_hop_ball(
                    csr, center, hops, include_self=include_self
                )
                assert actual.tolist() == expected

    def test_neighbor_slab_concatenates_adjacency(self):
        g = random_graph(25, 0.15, seed=2)
        csr = to_csr(g, use_numpy=True)
        frontier = self.np.array([3, 0, 17], dtype=self.np.int64)
        neighbors, counts = csr_module.neighbor_slab(csr, frontier)
        expected = list(g.neighbors(3)) + list(g.neighbors(0)) + list(g.neighbors(17))
        assert neighbors.tolist() == expected
        assert counts.tolist() == [g.degree(3), g.degree(0), g.degree(17)]

    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    @pytest.mark.parametrize("include_self", [True, False])
    def test_batched_hop_balls_matches_per_ball(self, hops, include_self):
        g = random_graph(35, 0.1, seed=4)
        csr = to_csr(g, use_numpy=True)
        centers = self.np.array([5, 0, 11, 29, 34], dtype=self.np.int64)
        owners, members, _edges = csr_module.batched_hop_balls(
            csr, centers, hops, include_self=include_self
        )
        for i, center in enumerate(centers.tolist()):
            ball = members[owners == i]
            expected = sorted(hop_ball(g, center, hops, include_self=include_self))
            assert ball.tolist() == expected

    def test_batched_hop_balls_empty_centers(self):
        csr = to_csr(random_graph(10, 0.2, seed=5), use_numpy=True)
        owners, members, edges = csr_module.batched_hop_balls(
            csr, self.np.empty(0, dtype=self.np.int64), 2
        )
        assert owners.size == 0 and members.size == 0 and edges == 0

    def test_ball_cache_caches_and_counts(self):
        g = random_graph(30, 0.12, seed=6)
        csr = to_csr(g, use_numpy=True)
        counter = TraversalCounter()
        cache = csr_module.CSRBallCache(csr, 2, counter=counter)
        first = cache.ball(4)
        assert counter.balls_expanded == 1
        again = cache.ball(4)
        assert again is first  # cache hit
        assert counter.balls_expanded == 1  # hits are free
        oracle = TraversalCounter()
        expected = hop_ball(g, 4, 2, counter=oracle)
        assert first.tolist() == sorted(expected)
        assert counter.edges_scanned == oracle.edges_scanned
        assert counter.nodes_visited == oracle.nodes_visited

    def test_uncached_expander_stores_nothing(self):
        csr = to_csr(random_graph(20, 0.15, seed=7), use_numpy=True)
        expander = csr_module.CSRBallCache(csr, 2, cached=False)
        expander.ball(1)
        expander.ball(2)
        assert len(expander) == 0

    def test_plain_csr_rejected_by_kernels(self):
        csr = to_csr(random_graph(10, 0.2, seed=8))  # stdlib arrays
        assert isinstance(csr, CSRGraph)
        with pytest.raises(TypeError):
            csr_module.csr_hop_ball(csr, 0, 2)
