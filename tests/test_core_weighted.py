"""Tests for distance-weighted top-k aggregation (footnote 1)."""

from __future__ import annotations

import pytest

from repro.aggregates.weighted import (
    exponential_decay,
    inverse_distance,
    uniform_weight,
    weighted_ball_sum,
)
from repro.core.base import base_topk
from repro.core.engine import TopKEngine
from repro.core.query import QuerySpec
from repro.core.weighted import weighted_backward_topk, weighted_base_topk
from repro.errors import InvalidParameterError
from repro.graph.generators import powerlaw_cluster
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.relevance import BinaryRelevance
from tests.conftest import random_graph, random_scores, rounded


def brute_weighted_topk(graph, scores, k, hops, profile, include_self=True):
    values = sorted(
        (
            weighted_ball_sum(
                graph, scores, u, hops, profile, include_self=include_self
            )
            for u in graph.nodes()
        ),
        reverse=True,
    )
    return values[:k]


class TestWeightedBase:
    def test_hand_computed_path(self, path_graph):
        scores = [0.0, 0.0, 1.0, 0.0, 1.0]
        result = weighted_base_topk(
            path_graph, scores, QuerySpec(k=1, hops=2), inverse_distance
        )
        # node 3: itself 0 + node 2 at d1 (w=1) + node 4 at d1 (w=1) = 2.0
        assert result.entries[0] == (3, 2.0)

    def test_uniform_equals_plain_sum(self):
        g = random_graph(35, 0.12, seed=141)
        scores = random_scores(35, seed=142)
        spec = QuerySpec(k=8, hops=2)
        weighted = weighted_base_topk(g, scores, spec, uniform_weight)
        plain = base_topk(g, scores, spec)
        assert rounded(weighted.values) == rounded(plain.values)

    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_matches_brute_force(self, hops):
        g = random_graph(30, 0.12, seed=143)
        scores = random_scores(30, seed=144)
        result = weighted_base_topk(
            g, scores, QuerySpec(k=6, hops=hops), inverse_distance
        )
        assert rounded(result.values) == rounded(
            brute_weighted_topk(g, scores, 6, hops, inverse_distance)
        )

    def test_avg_rejected(self, path_graph):
        with pytest.raises(InvalidParameterError):
            weighted_base_topk(
                path_graph, [0.1] * 5, QuerySpec(k=1, aggregate="avg")
            )


class TestWeightedBackward:
    @pytest.mark.parametrize("profile_name", ["inverse", "exp", "uniform"])
    @pytest.mark.parametrize("hops", [1, 2])
    def test_agrees_with_weighted_base(self, profile_name, hops):
        profile = {
            "inverse": inverse_distance,
            "exp": exponential_decay(0.5),
            "uniform": uniform_weight,
        }[profile_name]
        g = random_graph(40, 0.1, seed=145)
        scores = random_scores(40, seed=146)
        spec = QuerySpec(k=7, hops=hops)
        expected = weighted_base_topk(g, scores, spec, profile)
        actual = weighted_backward_topk(g, scores, spec, profile)
        assert rounded(actual.values) == rounded(expected.values)

    @pytest.mark.parametrize("gamma", [0.0, 0.4, 0.9, "auto"])
    def test_any_gamma_correct(self, gamma):
        g = random_graph(35, 0.12, seed=147)
        scores = random_scores(35, seed=148)
        spec = QuerySpec(k=6, hops=2)
        expected = weighted_base_topk(g, scores, spec)
        actual = weighted_backward_topk(g, scores, spec, gamma=gamma)
        assert rounded(actual.values) == rounded(expected.values)

    def test_directed_graph(self):
        g = random_graph(30, 0.1, seed=149, directed=True)
        scores = random_scores(30, seed=150)
        spec = QuerySpec(k=5, hops=2)
        expected = weighted_base_topk(g, scores, spec)
        actual = weighted_backward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_open_ball(self):
        g = random_graph(30, 0.12, seed=151)
        scores = random_scores(30, seed=152)
        spec = QuerySpec(k=5, hops=2, include_self=False)
        expected = weighted_base_topk(g, scores, spec)
        actual = weighted_backward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_binary_shortcut(self):
        g = powerlaw_cluster(200, 3, 0.5, seed=153)
        scores = BinaryRelevance(0.05, seed=154).scores(g).values()
        spec = QuerySpec(k=8, hops=2)
        result = weighted_backward_topk(
            g, scores, spec, sizes=NeighborhoodSizeIndex.exact(g, 2)
        )
        assert result.stats.extra["exact_shortcut"] == 1.0
        assert result.stats.candidates_verified == 0
        expected = weighted_base_topk(g, scores, spec)
        assert rounded(result.values) == rounded(expected.values)

    def test_exact_sizes_and_estimates_agree(self):
        g = random_graph(35, 0.12, seed=155)
        scores = random_scores(35, seed=156)
        spec = QuerySpec(k=6, hops=2)
        exact = weighted_backward_topk(
            g, scores, spec, sizes=NeighborhoodSizeIndex.exact(g, 2)
        )
        estimated = weighted_backward_topk(g, scores, spec, sizes=None)
        assert rounded(exact.values) == rounded(estimated.values)


class TestEngineWeighted:
    def test_engine_paths_agree(self):
        g = random_graph(40, 0.1, seed=157)
        scores = random_scores(40, seed=158)
        engine = TopKEngine(g, scores, hops=2)
        via_base = engine.topk_weighted(6, algorithm="base")
        via_backward = engine.topk_weighted(6, algorithm="backward")
        assert rounded(via_base.values) == rounded(via_backward.values)
        assert via_base.stats.algorithm == "weighted-base"
        assert via_backward.stats.algorithm == "weighted-backward"

    def test_custom_profile(self):
        g = random_graph(30, 0.12, seed=159)
        scores = random_scores(30, seed=160)
        engine = TopKEngine(g, scores, hops=2)
        decay = exponential_decay(0.3)
        result = engine.topk_weighted(5, profile=decay, algorithm="backward")
        expected = weighted_base_topk(g, scores, QuerySpec(k=5, hops=2), decay)
        assert rounded(result.values) == rounded(expected.values)

    def test_unknown_algorithm(self):
        g = random_graph(20, 0.2, seed=161)
        engine = TopKEngine(g, [0.5] * 20, hops=2)
        with pytest.raises(InvalidParameterError):
            engine.topk_weighted(3, algorithm="forward")
