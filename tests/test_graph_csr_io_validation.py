"""Tests for CSR conversion, edge-list IO, and structural validation."""

from __future__ import annotations

import io

import pytest

from repro.errors import GraphBuildError
from repro.graph.csr import from_csr, to_csr
from repro.graph.graph import Graph
from repro.graph.io import parse_edge_list, read_edge_list, write_edge_list
from repro.graph.validation import (
    connected_components,
    degree_histogram,
    validate_graph,
)
from tests.conftest import random_graph


class TestCSR:
    def test_roundtrip_undirected(self):
        g = random_graph(25, 0.2, seed=1)
        csr = to_csr(g)
        back = from_csr(csr)
        assert back.num_nodes == g.num_nodes
        for u in g.nodes():
            assert list(back.neighbors(u)) == list(g.neighbors(u))

    def test_roundtrip_directed(self):
        g = random_graph(20, 0.15, seed=2, directed=True)
        back = from_csr(to_csr(g))
        assert back.directed
        for u in g.nodes():
            assert list(back.neighbors(u)) == list(g.neighbors(u))

    def test_csr_accessors(self, star_graph):
        csr = to_csr(star_graph)
        assert csr.num_nodes == 6
        assert csr.num_arcs == 10  # 5 edges both directions
        assert csr.degree(0) == 5
        assert list(csr.neighbors(1)) == [0]

    def test_weighted_roundtrip(self):
        g = Graph.from_weighted_edges([(0, 1, 0.5), (1, 2, 2.0)])
        back = from_csr(to_csr(g))
        assert back.weighted
        assert back.edge_weight(1, 2) == 2.0

    def test_numpy_arrays(self):
        numpy = pytest.importorskip("numpy")
        g = random_graph(10, 0.3, seed=3)
        csr = to_csr(g, use_numpy=True)
        assert isinstance(csr.indptr, numpy.ndarray)
        assert csr.indptr[-1] == csr.num_arcs


class TestEdgeListIO:
    def test_parse_simple(self):
        g = parse_edge_list("a b\nb c\n")
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.has_labels

    def test_comments_and_blanks_skipped(self):
        g = parse_edge_list("# header\n\na b\n  \n# more\nb c\n")
        assert g.num_edges == 2

    def test_duplicates_merged(self):
        g = parse_edge_list("a b\nb a\na b\n")
        assert g.num_edges == 1

    def test_self_loops_skipped(self):
        g = parse_edge_list("a a\na b\n")
        assert g.num_edges == 1
        assert g.num_nodes == 2

    def test_weighted_parse(self):
        g = parse_edge_list("a b 2.5\nb c 1.0\n", weighted=True)
        assert g.weighted
        assert g.edge_weight(g.id_of("a"), g.id_of("b")) == 2.5

    def test_bad_weight_raises(self):
        with pytest.raises(GraphBuildError):
            parse_edge_list("a b xyz\n", weighted=True)

    def test_short_line_raises(self):
        with pytest.raises(GraphBuildError):
            parse_edge_list("lonely\n")

    def test_directed_parse(self):
        g = parse_edge_list("a b\nb a\n", directed=True)
        assert g.num_edges == 2

    def test_write_read_roundtrip(self):
        g = parse_edge_list("a b\nb c\nc d\na d\n")
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        back = read_edge_list(io.StringIO(buffer.getvalue()))
        assert back.num_nodes == g.num_nodes
        assert back.num_edges == g.num_edges

    def test_write_includes_header(self):
        g = parse_edge_list("a b\n")
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        assert buffer.getvalue().startswith("#")

    def test_file_roundtrip(self, tmp_path):
        g = parse_edge_list("x y\ny z\n")
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_edges == 2


class TestValidation:
    def test_valid_graph_passes(self, path_graph):
        validate_graph(path_graph)

    def test_asymmetric_adjacency_caught(self):
        bad = Graph([[1], []])  # 0 -> 1 present, 1 -> 0 missing
        with pytest.raises(GraphBuildError):
            validate_graph(bad)

    def test_self_loop_caught(self):
        bad = Graph([[0]], directed=True)
        with pytest.raises(GraphBuildError):
            validate_graph(bad)

    def test_duplicate_arc_caught(self):
        bad = Graph([[1, 1], [0, 0]])
        with pytest.raises(GraphBuildError):
            validate_graph(bad)

    def test_out_of_range_caught(self):
        bad = Graph([[5]], directed=True)
        with pytest.raises(GraphBuildError):
            validate_graph(bad)

    def test_degree_histogram(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist == {5: 1, 1: 5}

    def test_connected_components(self, two_components):
        comps = connected_components(two_components)
        assert [sorted(c) for c in comps] == [[0, 1, 2], [3, 4], [5]]

    def test_components_directed_weak(self, directed_cycle):
        comps = connected_components(directed_cycle)
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 2, 3]
