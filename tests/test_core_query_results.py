"""Tests for QuerySpec validation and result types."""

from __future__ import annotations

import pytest

from repro.aggregates.functions import AggregateKind
from repro.core.query import QuerySpec
from repro.core.results import QueryStats, TopKResult
from repro.errors import InvalidParameterError


class TestQuerySpec:
    def test_defaults(self):
        spec = QuerySpec(k=5)
        assert spec.aggregate is AggregateKind.SUM
        assert spec.hops == 2
        assert spec.include_self

    def test_string_aggregate_coerced(self):
        spec = QuerySpec(k=1, aggregate="avg")
        assert spec.aggregate is AggregateKind.AVG

    def test_invalid_aggregate(self):
        with pytest.raises(InvalidParameterError):
            QuerySpec(k=1, aggregate="median")

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            QuerySpec(k=0)

    def test_invalid_hops(self):
        with pytest.raises(InvalidParameterError):
            QuerySpec(k=1, hops=-1)

    def test_with_aggregate(self):
        spec = QuerySpec(k=3, aggregate="sum")
        avg = spec.with_aggregate("avg")
        assert avg.aggregate is AggregateKind.AVG
        assert avg.k == 3
        assert spec.aggregate is AggregateKind.SUM  # original untouched

    def test_describe(self):
        text = QuerySpec(k=7, aggregate="avg", hops=3).describe()
        assert "top-7" in text and "AVG" in text and "3-hop" in text

    def test_frozen(self):
        spec = QuerySpec(k=1)
        with pytest.raises(AttributeError):
            spec.k = 2  # type: ignore[misc]


class TestResultTypes:
    def _result(self):
        stats = QueryStats(algorithm="base", aggregate="sum", hops=2, k=2)
        return TopKResult(entries=[(4, 9.0), (1, 7.5)], stats=stats)

    def test_accessors(self):
        result = self._result()
        assert len(result) == 2
        assert result.nodes == [4, 1]
        assert result.values == [9.0, 7.5]
        assert result.top() == (4, 9.0)
        assert list(result) == [(4, 9.0), (1, 7.5)]

    def test_value_of(self):
        result = self._result()
        assert result.value_of(1) == 7.5
        assert result.value_of(99) is None

    def test_stats_as_dict_includes_extra(self):
        stats = QueryStats(algorithm="backward", k=3)
        stats.extra["gamma"] = 0.5
        flat = stats.as_dict()
        assert flat["algorithm"] == "backward"
        assert flat["gamma"] == 0.5
        assert "nodes_evaluated" in flat
