"""Full-coverage vectorized backend: routes, caches, planner, session.

The acceptance bar for the backend-coverage work: every executor route —
base (all aggregates), forward, backward, batch, filtered, weighted base
and weighted backward — resolves to a vectorized kernel under
``backend="auto"`` when numpy is importable (the compiled native tier when
*it* is available, plain numpy otherwise), the session reuses ball
expansions across queries (version-invalidated on dynamic graphs), the
block-size heuristic adapts to graph size and degree, and the planner's
cost model is backend-sensitive.
"""

from __future__ import annotations

import random

import pytest

from repro.core.backends import resolve_backend
from repro.core.planner import BACKEND_COST_FACTORS, QueryPlanner
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError
from repro.session import Network, _builder_refinements
from tests.conftest import random_graph

np = pytest.importorskip("numpy")

#: What ``backend="auto"`` resolves to here: "native" when the compiled
#: tier can load (numba installed, or REPRO_NATIVE_INTERPRETED set),
#: "numpy" otherwise.  Either way the route ran on a vectorized kernel.
AUTO_BACKEND = resolve_backend("auto")


def continuous_scores(n: int, seed: int, level: float = 0.9) -> list:
    rng = random.Random(seed)
    return [level * rng.random() + 0.05 for _ in range(n)]


@pytest.fixture(scope="module")
def cov_graph():
    return random_graph(60, 0.08, seed=411)


@pytest.fixture()
def net(cov_graph):
    session = Network(cov_graph, hops=2)
    session.add_scores("dense", continuous_scores(60, seed=412))
    return session


class TestRouteCoverage:
    """Every route runs on a vectorized kernel under ``backend="auto"``."""

    @pytest.mark.parametrize(
        "aggregate", ["sum", "avg", "count", "max", "min"]
    )
    def test_base_all_aggregates(self, net, aggregate):
        result = (
            net.query("dense").limit(5).aggregate(aggregate)
            .algorithm("base").run()
        )
        assert result.stats.backend == AUTO_BACKEND

    @pytest.mark.parametrize("algorithm", ["forward", "backward"])
    def test_lona_routes(self, net, algorithm):
        result = (
            net.query("dense").limit(5).algorithm(algorithm).run()
        )
        assert result.stats.backend == AUTO_BACKEND

    @pytest.mark.parametrize("aggregate", ["sum", "max"])
    def test_filtered_route(self, net, aggregate):
        result = (
            net.query("dense").limit(5).aggregate(aggregate)
            .where(range(0, 40)).run()
        )
        assert result.stats.backend == AUTO_BACKEND

    def test_batch_route(self, net):
        batch = net.batch(
            [
                net.query("dense").limit(5),
                net.query("dense").limit(3).aggregate("avg"),
            ]
        )
        for result in batch:
            assert result.stats.backend == AUTO_BACKEND

    @pytest.mark.parametrize("algorithm", ["base", "backward"])
    def test_weighted_routes(self, net, algorithm):
        result = net.topk_weighted("dense", 5, algorithm=algorithm)
        assert result.stats.backend == AUTO_BACKEND

    def test_auto_resolution_covers_default_route(self, net):
        # No pins at all: the "auto" algorithm on the "auto" backend must
        # still land on a vectorized kernel.
        result = net.query("dense").limit(5).run()
        assert result.stats.backend == AUTO_BACKEND


class TestAdaptiveBlockSize:
    def test_bounds_respected(self):
        from repro.core.vectorized import (
            _MAX_BLOCK,
            _MIN_BLOCK,
            adaptive_block_size,
        )

        # Tiny graph: ceiling; million-node graph: small but bounded; the
        # function is pure arithmetic, so probing 10M nodes is free.
        assert adaptive_block_size(100, 500) == _MAX_BLOCK
        big = adaptive_block_size(1_000_000, 10_000_000)
        assert _MIN_BLOCK <= big < _MAX_BLOCK
        huge = adaptive_block_size(10_000_000, 100_000_000)
        assert _MIN_BLOCK <= huge <= big
        assert adaptive_block_size(0, 0) == _MIN_BLOCK

    def test_degree_shrinks_blocks(self):
        from repro.core.vectorized import adaptive_block_size

        sparse = adaptive_block_size(10_000, 2 * 10_000)
        dense = adaptive_block_size(10_000, 4000 * 10_000)
        assert dense < sparse

    def test_pruning_cap(self):
        from repro.core.vectorized import adaptive_block_size

        # Threshold-driven kernels never evaluate a large slice of the
        # graph in one round, however small the graph.
        assert adaptive_block_size(400, 2000, pruning=True) <= 400 // 8
        assert adaptive_block_size(100_000, 600_000, pruning=True) <= 256

    def test_explicit_requests_honored_but_budgeted(self):
        from repro.core.vectorized import _CELL_BUDGET, resolve_block_size

        assert resolve_block_size(17, 1000, 5000) == 17
        assert resolve_block_size(1, 1000, 5000) == 1
        # A request that would blow the visited-buffer budget is clamped.
        n = 4_000_000
        assert resolve_block_size(1024, n, 10 * n) == _CELL_BUDGET // n


class TestSessionBallCache:
    """The segment ball caches are a numpy-backend feature — the native
    tier's per-center stamp-BFS recomputes balls in-kernel instead of
    caching them — so these sessions pin ``backend="numpy"``."""

    @pytest.fixture()
    def np_net(self, cov_graph):
        session = Network(cov_graph, hops=2, backend="numpy")
        session.add_scores("dense", continuous_scores(60, seed=412))
        return session

    def test_backward_reuses_verification_balls(self, np_net):
        net = np_net
        ctx = net._ctx
        cache = ctx.ball_cache()
        assert len(cache) == 0
        first = net.query("dense").limit(5).algorithm("backward").run()
        expanded_once = len(cache)
        assert expanded_once > 0
        second = net.query("dense").limit(5).algorithm("backward").run()
        assert second.entries == first.entries
        assert ctx.ball_cache() is cache
        # The repeat query verified the same candidates: cache hits, no
        # (or almost no) new expansions, and strictly less charged BFS work.
        assert second.stats.balls_expanded < first.stats.balls_expanded

    def test_weighted_backward_reuses_distance_balls(self, np_net):
        net = np_net
        ctx = net._ctx
        cache = ctx.dist_ball_cache()
        first = net.topk_weighted("dense", 5, algorithm="backward")
        expanded_once = len(cache)
        assert expanded_once > 0
        second = net.topk_weighted("dense", 5, algorithm="backward")
        assert second.entries == first.entries
        assert ctx.dist_ball_cache() is cache
        assert second.stats.balls_expanded < first.stats.balls_expanded

    def test_cache_not_charged_to_later_counters(self, np_net):
        # After a query returns, the session cache must stop charging that
        # query's counter (it would corrupt later stats).
        np_net.query("dense").limit(5).algorithm("backward").run()
        assert np_net._ctx.ball_cache().counter is None

    def test_dynamic_mutation_invalidates(self, cov_graph):
        from repro.dynamic.graph import DynamicGraph

        session = Network(
            DynamicGraph.from_graph(cov_graph), hops=2, backend="numpy"
        )
        session.add_scores("dense", continuous_scores(60, seed=413))
        session.query("dense").limit(5).algorithm("backward").run()
        stale = session._ctx.ball_cache()
        assert len(stale) > 0
        session.add_edge(0, 59)
        fresh = session._ctx.ball_cache()
        assert fresh is not stale
        assert len(fresh) == 0

    def test_results_unchanged_by_cache(self, net, cov_graph):
        # A cold context (no shared cache) and the warm session agree.
        from repro.core.backward import backward_topk

        warm = net.query("dense").limit(7).algorithm("backward").run()
        warm2 = net.query("dense").limit(7).algorithm("backward").run()
        cold = backward_topk(
            cov_graph,
            net.scores_of("dense").values(),
            QuerySpec(k=7, hops=2, backend="numpy"),
        )
        assert warm.entries == warm2.entries == cold.entries


class TestBackendSensitivePlanner:
    """The cost model discounts vectorized routes, so choice can flip."""

    @pytest.fixture(scope="class")
    def flip_case(self):
        g = random_graph(150, 0.02, seed=0)
        scores = continuous_scores(150, seed=100, level=0.9)
        return g, scores

    def test_multipliers_recorded(self, flip_case):
        g, scores = flip_case
        for backend in ("python", "numpy"):
            planner = QueryPlanner(
                g, scores, hops=2, index_available=True, backend=backend
            )
            plan = planner.plan(QuerySpec(k=10))
            for est in plan.estimates:
                expected = BACKEND_COST_FACTORS[backend][est.algorithm]
                assert est.cost_multiplier == expected
            flat = plan.as_dict()
            assert all(
                "cost_multiplier" in e and "effective_online_cost" in e
                for e in flat["estimates"]
            )

    def test_choice_flips_with_backend(self, flip_case):
        g, scores = flip_case
        python_plan = QueryPlanner(
            g, scores, hops=2, index_available=True, backend="python"
        ).plan(QuerySpec(k=10))
        numpy_plan = QueryPlanner(
            g, scores, hops=2, index_available=True, backend="numpy"
        ).plan(QuerySpec(k=10))
        assert python_plan.chosen == "forward"
        # Recalibrated factors (backward verification got the session ball
        # caches): the vectorized plan now routes this shape to backward —
        # still a flip away from the python winner, which is the property
        # this test pins.
        assert numpy_plan.chosen == "backward"

    def test_explain_shows_discount(self, flip_case):
        g, scores = flip_case
        plan = QueryPlanner(
            g, scores, hops=2, index_available=True, backend="numpy"
        ).plan(QuerySpec(k=10))
        assert "x0.24 numpy" in plan.explain()

    def test_session_run_honors_backend_pin_for_planned(self, flip_case):
        # The session planner is cached on the session backend; a builder
        # that pins the *other* backend must be planned on that backend —
        # for .run() exactly as for .explain().
        g, scores = flip_case
        session = Network(g, hops=2).add_scores("s", scores)
        session.build_indexes()
        # Warm the cached (auto -> numpy) planner first.
        auto_plan = session.query("s").limit(10).explain()
        assert auto_plan.chosen == "backward"
        pinned = (
            session.query("s").limit(10)
            .algorithm("planned").backend("python")
        )
        assert pinned.explain().chosen == "forward"
        result = pinned.run()
        assert result.stats.algorithm == "forward"
        assert result.stats.backend == "python"


class TestTopkWhitelistDerivation:
    def test_derived_set_matches_builder_surface(self):
        assert _builder_refinements() == {
            "where",
            "algorithm",
            "backend",
            "gamma",
            "distribution_fraction",
            "exact_sizes",
            "ordering",
            "seed",
            "priority",
            "deadline",
        }

    def test_topk_accepts_every_refinement(self, net):
        result = net.topk(
            "dense",
            4,
            "sum",
            algorithm="forward",
            backend="numpy",
            ordering="degree",
        )
        assert result.stats.algorithm == "forward"
        assert result.stats.backend == "numpy"

    def test_topk_rejects_unknown_and_terminals(self, net):
        with pytest.raises(InvalidParameterError, match="unknown query option"):
            net.topk("dense", 3, "sum", not_an_option=1)
        for terminal in ("run", "stream", "explain", "request", "spec"):
            with pytest.raises(InvalidParameterError):
                net.topk("dense", 3, "sum", **{terminal: True})

    def test_new_builder_refinement_auto_whitelisted(self, net, monkeypatch):
        from repro.session import QueryBuilder

        def shiny(self, value):
            return self._with()

        monkeypatch.setattr(QueryBuilder, "shiny", shiny, raising=False)
        assert "shiny" in _builder_refinements()
        result = net.topk("dense", 3, "sum", shiny=1)
        assert len(result.entries) == 3
