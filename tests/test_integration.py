"""End-to-end integration: every execution path, one truth.

For each dataset stand-in (tiny scale) and both paper aggregates, the same
query is answered through every path the repository offers — Base,
LONA-Forward, LONA-Backward (indexed and index-free), the relational plan,
the distributed BSP engine, the shared-scan batch, the materialized view,
and the maintained dynamic view — and all must return the same top-k value
multiset.  This is the repository's strongest single guarantee: a
regression anywhere in any substrate breaks this file.

Also includes deterministic work-counter regression guards: the pruning
algorithms must actually prune on the paper's workloads (wall-clock-free,
machine-independent assertions).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.batch import BatchQuery, batch_base_topk
from repro.core.engine import TopKEngine
from repro.core.forward import forward_topk
from repro.core.materialized import MaterializedView
from repro.core.query import QuerySpec
from repro.distributed.coordinator import DistributedTopKEngine
from repro.dynamic import DynamicGraph, MaintainedAggregateView
from repro.graph.diffindex import build_differential_index
from repro.relational.engine import relational_topk
from repro.relevance.base import ScoreVector
from tests.conftest import rounded

DATASETS = ["fig1", "fig3", "fig5"]  # collaboration, intrusion, citation
K = 8
SCALE = 0.04


@pytest.fixture(scope="module", params=DATASETS)
def scenario(request):
    spec = figure(request.param)
    graph = spec.build_graph(scale=SCALE)
    scores = spec.build_scores(graph).values()
    diff_index = build_differential_index(graph, 2)
    return request.param, graph, scores, diff_index


@pytest.mark.parametrize("aggregate", ["sum", "avg"])
def test_all_paths_agree(scenario, aggregate):
    figure_id, graph, scores, diff_index = scenario
    spec = QuerySpec(k=K, hops=2, aggregate=aggregate)
    reference = base_topk(graph, scores, spec)
    truth = rounded(reference.values)

    answers = {
        "forward": forward_topk(graph, scores, spec, diff_index=diff_index),
        "backward-indexed": backward_topk(
            graph, scores, spec, sizes=diff_index.sizes
        ),
        "backward-indexfree": backward_topk(graph, scores, spec),
        "relational": relational_topk(graph, scores, spec),
        "distributed": DistributedTopKEngine(
            graph, scores, hops=2, num_parts=3, partitioner="bfs", seed=1
        ).topk(K, aggregate),
        "batch": batch_base_topk(
            graph, [BatchQuery(ScoreVector(scores), K, aggregate)]
        )[0],
        "materialized": MaterializedView(graph, scores, hops=2).topk(K, aggregate),
        "maintained-view": MaintainedAggregateView(
            DynamicGraph.from_graph(graph), scores, hops=2
        ).topk(K, aggregate),
    }
    for path, result in answers.items():
        assert rounded(result.values) == truth, (figure_id, aggregate, path)


def test_engine_facade_matches_direct_calls(scenario):
    figure_id, graph, scores, _diff_index = scenario
    engine = TopKEngine(graph, scores, hops=2)
    expected = rounded(base_topk(graph, scores, QuerySpec(k=K, hops=2)).values)
    for algorithm in ("auto", "planned", "base", "forward", "backward"):
        result = engine.topk(K, "sum", algorithm)
        assert rounded(result.values) == expected, (figure_id, algorithm)


def test_deterministic_across_runs(scenario):
    figure_id, graph, scores, diff_index = scenario
    spec = QuerySpec(k=K, hops=2)
    first = backward_topk(graph, scores, spec, sizes=diff_index.sizes)
    second = backward_topk(graph, scores, spec, sizes=diff_index.sizes)
    assert first.entries == second.entries
    assert first.stats.nodes_evaluated == second.stats.nodes_evaluated
    assert first.stats.distribution_pushes == second.stats.distribution_pushes


class TestWorkCounterRegressions:
    """Deterministic pruning guarantees on the paper's own workloads.

    These pin the *mechanism*, not wall-clock: if a change silently turns a
    pruning algorithm into a full scan, these fail on any machine.
    """

    def test_backward_shortcut_on_binary_workloads(self):
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.1)
        scores = spec.build_scores(graph).values()
        result = backward_topk(
            graph,
            scores,
            QuerySpec(k=50, hops=2),
            sizes=build_differential_index(graph, 2).sizes,
        )
        # Binary relevance -> rest bound 0 -> zero exact evaluations.
        assert result.stats.nodes_evaluated == 0
        assert result.stats.extra["exact_shortcut"] == 1.0
        # Distribution touches only the non-zero nodes' balls.
        nonzero = sum(1 for s in scores if s > 0)
        assert result.stats.balls_expanded == nonzero

    def test_forward_prunes_on_intrusion_workload(self):
        spec = figure("fig3")
        graph = spec.build_graph(scale=0.1)
        scores = spec.build_scores(graph).values()
        result = forward_topk(graph, scores, QuerySpec(k=20, hops=2))
        assert result.stats.pruned_nodes > graph.num_nodes * 0.3
        assert result.stats.nodes_evaluated < graph.num_nodes * 0.7

    def test_batch_shares_traversal(self):
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.05)
        from repro.relevance.mixture import MixtureRelevance

        vectors = [
            MixtureRelevance(0.05, zero_fraction=0.0, seed=i).scores(graph)
            for i in range(4)
        ]
        results = batch_base_topk(
            graph, [BatchQuery(v, k=5) for v in vectors], hops=2
        )
        single = base_topk(graph, vectors[0].values(), QuerySpec(k=5, hops=2))
        # Whole batch == one Base traversal, not four.
        assert results[0].stats.edges_scanned == single.stats.edges_scanned

    def test_distributed_ships_only_candidates(self):
        spec = figure("fig1")
        graph = spec.build_graph(scale=0.05)
        scores = spec.build_scores(graph).values()
        engine = DistributedTopKEngine(graph, scores, hops=2, num_parts=4, seed=2)
        result = engine.topk(10, "sum")
        assert result.stats.extra["candidates_shipped"] <= 4 * 10
