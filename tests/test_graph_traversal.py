"""Tests for BFS traversal primitives, cross-checked against oracles."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError, NodeNotFoundError
from repro.graph.traversal import (
    TraversalCounter,
    ball_size,
    hop_ball,
    hop_ball_with_distances,
    hop_frontiers,
)
from tests.conftest import random_graph, ref_ball

networkx = pytest.importorskip("networkx", reason="networkx used as oracle")


class TestHopBall:
    def test_zero_hops_closed(self, path_graph):
        assert hop_ball(path_graph, 2, 0) == {2}

    def test_zero_hops_open(self, path_graph):
        assert hop_ball(path_graph, 2, 0, include_self=False) == set()

    def test_one_hop(self, path_graph):
        assert hop_ball(path_graph, 2, 1) == {1, 2, 3}

    def test_two_hops(self, path_graph):
        assert hop_ball(path_graph, 2, 2) == {0, 1, 2, 3, 4}

    def test_open_ball_excludes_center_only(self, path_graph):
        assert hop_ball(path_graph, 2, 2, include_self=False) == {0, 1, 3, 4}

    def test_ball_larger_than_graph(self, path_graph):
        assert hop_ball(path_graph, 0, 100) == {0, 1, 2, 3, 4}

    def test_isolated_node(self, two_components):
        assert hop_ball(two_components, 5, 3) == {5}

    def test_component_boundary(self, two_components):
        assert hop_ball(two_components, 3, 5) == {3, 4}

    def test_directed_follows_out_edges(self, directed_cycle):
        assert hop_ball(directed_cycle, 0, 1) == {0, 1}
        assert hop_ball(directed_cycle, 0, 2) == {0, 1, 2}

    def test_negative_hops_rejected(self, path_graph):
        with pytest.raises(InvalidParameterError):
            hop_ball(path_graph, 0, -1)

    def test_unknown_center_rejected(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            hop_ball(path_graph, 11, 1)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_matches_reference_on_random_graphs(self, seed, hops):
        g = random_graph(40, 0.1, seed=seed)
        for center in range(0, 40, 7):
            assert hop_ball(g, center, hops) == ref_ball(g, center, hops)

    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_matches_networkx(self, hops):
        g = random_graph(50, 0.08, seed=42)
        nxg = networkx.Graph()
        nxg.add_nodes_from(range(50))
        nxg.add_edges_from(g.edges())
        for center in range(0, 50, 11):
            expected = set(
                networkx.single_source_shortest_path_length(
                    nxg, center, cutoff=hops
                )
            )
            assert hop_ball(g, center, hops) == expected


class TestDistances:
    def test_distances_on_path(self, path_graph):
        dist = hop_ball_with_distances(path_graph, 0, 3)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_distances_truncated(self, path_graph):
        dist = hop_ball_with_distances(path_graph, 0, 1)
        assert dist == {0: 0, 1: 1}

    def test_distances_open_ball(self, path_graph):
        dist = hop_ball_with_distances(path_graph, 0, 2, include_self=False)
        assert dist == {1: 1, 2: 2}

    def test_distances_match_networkx(self):
        g = random_graph(40, 0.1, seed=5)
        nxg = networkx.Graph()
        nxg.add_nodes_from(range(40))
        nxg.add_edges_from(g.edges())
        for center in (0, 13, 27):
            expected = networkx.single_source_shortest_path_length(
                nxg, center, cutoff=2
            )
            assert hop_ball_with_distances(g, center, 2) == dict(expected)

    def test_ball_and_distances_agree(self):
        g = random_graph(30, 0.15, seed=8)
        for center in range(0, 30, 5):
            ball = hop_ball(g, center, 2)
            dist = hop_ball_with_distances(g, center, 2)
            assert ball == set(dist)


class TestFrontiers:
    def test_frontier_levels(self, path_graph):
        levels = dict()
        for d, frontier in hop_frontiers(path_graph, 0, 3):
            levels[d] = sorted(frontier)
        assert levels == {0: [0], 1: [1], 2: [2], 3: [3]}

    def test_frontier_stops_when_exhausted(self, triangle_graph):
        levels = list(hop_frontiers(triangle_graph, 0, 10))
        assert len(levels) == 2  # distance 0 and 1 cover the triangle

    def test_frontier_union_equals_ball(self):
        g = random_graph(35, 0.12, seed=3)
        union = set()
        for _d, frontier in hop_frontiers(g, 0, 2):
            union.update(frontier)
        assert union == hop_ball(g, 0, 2)


class TestCounterAndSize:
    def test_ball_size(self, star_graph):
        assert ball_size(star_graph, 0, 1) == 6
        assert ball_size(star_graph, 1, 1) == 2
        assert ball_size(star_graph, 1, 2) == 6  # whole graph

    def test_counter_accumulates(self, star_graph):
        counter = TraversalCounter()
        hop_ball(star_graph, 0, 2, counter=counter)
        assert counter.balls_expanded == 1
        assert counter.nodes_visited == 6
        # center scans 5 edges, each leaf scans back 1
        assert counter.edges_scanned == 10

    def test_counter_merge_and_snapshot(self):
        a = TraversalCounter()
        b = TraversalCounter()
        a.edges_scanned = 3
        b.edges_scanned = 4
        b.balls_expanded = 2
        a.merge(b)
        assert a.edges_scanned == 7
        assert a.snapshot()["balls_expanded"] == 2

    def test_zero_hop_scans_no_edges(self, star_graph):
        counter = TraversalCounter()
        hop_ball(star_graph, 0, 0, counter=counter)
        assert counter.edges_scanned == 0
