"""Tests for partitioning, the BSP engine, and distributed top-k."""

from __future__ import annotations

import pytest

from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.distributed.aggregation import ScoreFloodProgram, SizeFloodProgram
from repro.distributed.bsp import BSPEngine
from repro.distributed.coordinator import DistributedTopKEngine
from repro.distributed.partition import Partition, bfs_partition, hash_partition
from repro.errors import DistributedError, InvalidParameterError, PartitionError
from tests.conftest import random_graph, random_scores, ref_ball, rounded


class TestPartition:
    def test_hash_partition_balanced(self):
        g = random_graph(40, 0.1, seed=121)
        p = hash_partition(g, 4)
        assert p.sizes() == [10, 10, 10, 10]
        assert p.balance() == 1.0

    def test_hash_partition_members(self, path_graph):
        p = hash_partition(path_graph, 2)
        assert p.members(0) == [0, 2, 4]
        assert p.part_of(3) == 1

    def test_bfs_partition_covers_all(self):
        g = random_graph(50, 0.08, seed=122)
        p = bfs_partition(g, 4, seed=1)
        assert sorted(sum(([u] * 0 for u in []), [])) == []  # noop sanity
        assert all(0 <= part < 4 for part in p.assignment)
        assert len(p.assignment) == 50

    def test_bfs_partition_reasonable_balance(self):
        g = random_graph(80, 0.08, seed=123)
        p = bfs_partition(g, 4, seed=2)
        assert p.balance() < 2.5

    def test_bfs_lower_edge_cut_than_hash(self):
        # On a ring lattice locality matters; BFS growing should beat modulo.
        from repro.graph.generators import ring_lattice

        g = ring_lattice(120, 2)
        hash_cut = hash_partition(g, 4).edge_cut(g)
        bfs_cut = bfs_partition(g, 4, seed=3).edge_cut(g)
        assert bfs_cut < hash_cut

    def test_partition_validation(self):
        with pytest.raises(PartitionError):
            Partition([0, 5], num_parts=2)
        with pytest.raises(PartitionError):
            Partition([0], num_parts=0)

    def test_edge_cut_needs_matching_graph(self, path_graph, star_graph):
        p = hash_partition(path_graph, 2)
        with pytest.raises(PartitionError):
            p.edge_cut(star_graph)

    def test_directed_graph_partitioned_via_undirected_view(self):
        g = random_graph(30, 0.1, seed=124, directed=True)
        p = bfs_partition(g, 3, seed=4)
        assert len(p.assignment) == 30


class TestBSPEngine:
    def test_score_flood_matches_reference(self):
        g = random_graph(30, 0.12, seed=125)
        scores = random_scores(30, seed=126)
        engine = BSPEngine(g, hash_partition(g, 3))
        engine.run(ScoreFloodProgram(scores, 2), max_supersteps=5)
        for v in range(30):
            expected = sum(
                scores[u] for u in ref_ball(g, v, 2) if scores[u] > 0.0
            )
            assert engine.vertex_state[v]["ps"] == pytest.approx(expected)

    def test_size_flood_matches_reference(self):
        g = random_graph(25, 0.15, seed=127)
        engine = BSPEngine(g, hash_partition(g, 2))
        engine.run(SizeFloodProgram(2), max_supersteps=5)
        for v in range(25):
            assert engine.vertex_state[v]["size"] == len(ref_ball(g, v, 2))

    def test_message_classification(self, path_graph):
        # Partition {0,1,2} vs {3,4}: flooding from node 2 crosses once.
        p = Partition([0, 0, 0, 1, 1], num_parts=2)
        engine = BSPEngine(path_graph, p)
        scores = [0.0, 0.0, 1.0, 0.0, 0.0]
        stats = engine.run(ScoreFloodProgram(scores, 1), max_supersteps=3)
        assert stats.messages_remote == 1  # 2 -> 3
        assert stats.messages_local == 1  # 2 -> 1

    def test_quiescence_guard(self, path_graph):
        engine = BSPEngine(path_graph, hash_partition(path_graph, 2))
        with pytest.raises(DistributedError):
            engine.run(ScoreFloodProgram([1.0] * 5, 4), max_supersteps=2)

    def test_partition_size_mismatch(self, path_graph, star_graph):
        p = hash_partition(star_graph, 2)
        with pytest.raises(DistributedError):
            BSPEngine(path_graph, p)

    def test_stats_as_dict(self, path_graph):
        engine = BSPEngine(path_graph, hash_partition(path_graph, 2))
        stats = engine.run(ScoreFloodProgram([1.0] * 5, 1), max_supersteps=4)
        flat = stats.as_dict()
        assert flat["messages_total"] == flat["messages_local"] + flat["messages_remote"]
        assert flat["supersteps"] >= 2

    def test_vectorized_routing_accounting_identical(self, monkeypatch):
        # The numpy broadcast fast path (partition classified as an int
        # array over the CSR slab) must produce byte-identical
        # MessageStats to the scalar per-message path — same totals, same
        # per-superstep breakdown, same vertex state.
        from repro.distributed.partition import Partition as PartitionClass

        g = random_graph(40, 0.1, seed=222)
        scores = random_scores(40, seed=223)

        def run_once():
            engine = BSPEngine(g, bfs_partition(g, 3, seed=9))
            stats = engine.run(ScoreFloodProgram(scores, 2), max_supersteps=5)
            return stats, [s.get("ps", 0.0) for s in engine.vertex_state]

        fast_stats, fast_state = run_once()
        # Force the scalar path by making the partition array unavailable.
        monkeypatch.setattr(PartitionClass, "as_array", lambda self: None)
        slow_stats, slow_state = run_once()
        assert fast_stats.as_dict() == slow_stats.as_dict()
        assert fast_stats.per_superstep == slow_stats.per_superstep
        assert fast_state == slow_state


class TestDistributedTopK:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("partitioner", ["hash", "bfs"])
    def test_matches_base(self, aggregate, partitioner):
        g = random_graph(40, 0.1, seed=128)
        scores = random_scores(40, seed=129)
        expected = base_topk(g, scores, QuerySpec(k=8, aggregate=aggregate))
        engine = DistributedTopKEngine(
            g, scores, hops=2, num_parts=4, partitioner=partitioner, seed=5
        )
        actual = engine.topk(8, aggregate)
        assert rounded(actual.values) == rounded(expected.values)

    def test_directed_matches_base(self):
        g = random_graph(30, 0.08, seed=130, directed=True)
        scores = random_scores(30, seed=131)
        expected = base_topk(g, scores, QuerySpec(k=6))
        engine = DistributedTopKEngine(g, scores, num_parts=3)
        actual = engine.topk(6, "sum")
        assert rounded(actual.values) == rounded(expected.values)

    def test_single_partition_degenerate(self):
        g = random_graph(20, 0.2, seed=132)
        scores = random_scores(20, seed=133)
        engine = DistributedTopKEngine(g, scores, num_parts=1)
        result = engine.topk(4, "sum")
        expected = base_topk(g, scores, QuerySpec(k=4))
        assert rounded(result.values) == rounded(expected.values)
        assert result.stats.extra["messages_remote"] == 0.0

    def test_stats_exposed(self):
        g = random_graph(30, 0.12, seed=134)
        scores = random_scores(30, seed=135)
        engine = DistributedTopKEngine(g, scores, num_parts=3, partitioner="hash")
        result = engine.topk(5, "sum")
        extra = result.stats.extra
        assert extra["num_parts"] == 3.0
        assert extra["supersteps"] >= 1.0
        assert extra["candidates_shipped"] <= 3 * 5
        assert "edge_cut" in extra

    def test_unknown_partitioner(self, path_graph):
        with pytest.raises(InvalidParameterError):
            DistributedTopKEngine(path_graph, [0.0] * 5, partitioner="metis")

    def test_max_rejected(self, path_graph):
        engine = DistributedTopKEngine(path_graph, [0.5] * 5)
        with pytest.raises(InvalidParameterError):
            engine.topk(2, "max")
