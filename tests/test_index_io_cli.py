"""Tests for index persistence and the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main as cli_main
from repro.errors import IndexNotBuiltError
from repro.graph.diffindex import build_differential_index
from repro.graph.index_io import (
    graph_fingerprint,
    load_differential_index,
    save_differential_index,
)
from tests.conftest import random_graph


class TestFingerprint:
    def test_stable(self):
        g = random_graph(30, 0.15, seed=171)
        assert graph_fingerprint(g) == graph_fingerprint(g)

    def test_sensitive_to_structure(self):
        a = random_graph(30, 0.15, seed=172)
        b = random_graph(30, 0.15, seed=173)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_sensitive_to_direction(self):
        edges = [(0, 1), (1, 2)]
        from repro.graph.graph import Graph

        undirected = Graph.from_edges(edges)
        directed = Graph.from_edges(edges, num_nodes=3, directed=True)
        assert graph_fingerprint(undirected) != graph_fingerprint(directed)


class TestIndexRoundtrip:
    def test_roundtrip_file(self, tmp_path):
        g = random_graph(25, 0.15, seed=174)
        idx = build_differential_index(g, 2)
        path = tmp_path / "graph.lonaidx"
        save_differential_index(idx, g, path)
        loaded = load_differential_index(g, path)
        assert loaded.hops == 2
        assert loaded.include_self
        for u in g.nodes():
            assert list(loaded.delta_row(u)) == list(idx.delta_row(u))
            assert loaded.sizes.value(u) == idx.sizes.value(u)

    def test_roundtrip_buffer(self):
        g = random_graph(15, 0.2, seed=175)
        idx = build_differential_index(g, 1)
        buffer = io.BytesIO()
        save_differential_index(idx, g, buffer)
        buffer.seek(0)
        loaded = load_differential_index(g, buffer)
        assert list(loaded.delta_row(0)) == list(idx.delta_row(0))

    def test_wrong_graph_rejected(self, tmp_path):
        a = random_graph(20, 0.2, seed=176)
        b = random_graph(20, 0.2, seed=177)
        idx = build_differential_index(a, 2)
        path = tmp_path / "a.lonaidx"
        save_differential_index(idx, a, path)
        with pytest.raises(IndexNotBuiltError):
            load_differential_index(b, path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"not an index at all")
        g = random_graph(10, 0.2, seed=178)
        with pytest.raises(IndexNotBuiltError):
            load_differential_index(g, path)

    def test_truncated_rejected(self, tmp_path):
        g = random_graph(20, 0.2, seed=179)
        idx = build_differential_index(g, 2)
        path = tmp_path / "full.lonaidx"
        save_differential_index(idx, g, path)
        truncated = tmp_path / "trunc.lonaidx"
        truncated.write_bytes(path.read_bytes()[:40])
        with pytest.raises(IndexNotBuiltError):
            load_differential_index(g, truncated)

    def test_loaded_index_answers_queries(self, tmp_path):
        from repro.core.base import base_topk
        from repro.core.forward import forward_topk
        from repro.core.query import QuerySpec
        from tests.conftest import random_scores, rounded

        g = random_graph(30, 0.12, seed=180)
        scores = random_scores(30, seed=181)
        idx = build_differential_index(g, 2)
        path = tmp_path / "q.lonaidx"
        save_differential_index(idx, g, path)
        loaded = load_differential_index(g, path)
        spec = QuerySpec(k=6, hops=2)
        expected = base_topk(g, scores, spec)
        actual = forward_topk(g, scores, spec, diff_index=loaded)
        assert rounded(actual.values) == rounded(expected.values)


class TestCLI:
    def test_query_dataset(self, capsys):
        code = cli_main(
            [
                "query",
                "--dataset",
                "intrusion_like",
                "--scale",
                "0.05",
                "--k",
                "3",
                "--binary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l and not l.startswith("#")]
        assert len(lines) == 3

    def test_query_edge_list(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("a b\nb c\nc d\na c\n")
        code = cli_main(
            ["query", "--edge-list", str(path), "--k", "2", "--blacking-ratio", "0.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1\t" in out

    def test_query_with_scores_file(self, tmp_path, capsys):
        graph_path = tmp_path / "g.txt"
        graph_path.write_text("a b\nb c\n")
        scores_path = tmp_path / "s.txt"
        scores_path.write_text("a 1.0\nb 0.5\n# comment\nc 0.0\n")
        code = cli_main(
            [
                "query",
                "--edge-list",
                str(graph_path),
                "--scores",
                str(scores_path),
                "--k",
                "1",
                "--hops",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # a sees {a, b} = 1.5 and b sees {a, b, c} = 1.5: a tie at the top;
        # the accumulator keeps the first-offered node (a).
        assert "\t1.500000" in out

    def test_explain_subcommand(self, capsys):
        code = cli_main(
            [
                "explain",
                "--dataset",
                "collaboration_like",
                "--scale",
                "0.05",
                "--k",
                "5",
                "--binary",
            ]
        )
        assert code == 0
        assert "chosen algorithm" in capsys.readouterr().out

    def test_profile_subcommand(self, capsys):
        code = cli_main(
            ["profile", "--dataset", "citation_like", "--scale", "0.05"]
        )
        assert code == 0
        assert "degree:" in capsys.readouterr().out

    def test_build_index_and_query_with_it(self, tmp_path, capsys):
        index_path = tmp_path / "collab.lonaidx"
        code = cli_main(
            [
                "build-index",
                "--dataset",
                "collaboration_like",
                "--scale",
                "0.05",
                "--out",
                str(index_path),
            ]
        )
        assert code == 0
        assert index_path.exists()
        code = cli_main(
            [
                "query",
                "--dataset",
                "collaboration_like",
                "--scale",
                "0.05",
                "--k",
                "3",
                "--algorithm",
                "forward",
                "--index",
                str(index_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm=forward" in out

    def test_query_with_mismatched_index(self, tmp_path, capsys):
        index_path = tmp_path / "tiny.lonaidx"
        assert (
            cli_main(
                [
                    "build-index",
                    "--dataset",
                    "intrusion_like",
                    "--scale",
                    "0.05",
                    "--out",
                    str(index_path),
                ]
            )
            == 0
        )
        code = cli_main(
            [
                "query",
                "--dataset",
                "collaboration_like",
                "--scale",
                "0.05",
                "--k",
                "3",
                "--index",
                str(index_path),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_subcommand(self, capsys):
        code = cli_main(
            [
                "serve",
                "--dataset",
                "intrusion_like",
                "--scale",
                "0.05",
                "--k",
                "3",
                "--queries",
                "4",
                "--workers",
                "2",
                "--repeat",
                "2",
                "--blacking-ratio",
                "0.4",
                "--binary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 8 queries" in out
        assert "cache hits" in out
        lines = [l for l in out.splitlines() if l.startswith("q")]
        assert len(lines) == 4

    def test_serve_json_inline_workers(self, capsys):
        import json

        code = cli_main(
            [
                "serve",
                "--dataset",
                "intrusion_like",
                "--scale",
                "0.05",
                "--k",
                "3",
                "--queries",
                "3",
                "--workers",
                "0",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "serve"
        assert payload["queries"] == 3
        assert payload["service"]["completed"] == 3
        assert payload["service"]["workers"] == 0
        assert payload["result_cache"]["misses"] == 3
        assert set(payload["top_nodes"]) == {"q0", "q1", "q2"}

    def test_engine_save_load_roundtrip(self, tmp_path):
        from repro.core.engine import TopKEngine
        from tests.conftest import random_scores, rounded

        g = random_graph(25, 0.15, seed=182)
        scores = random_scores(25, seed=183)
        writer = TopKEngine(g, scores, hops=2)
        path = tmp_path / "engine.lonaidx"
        writer.save_index(path)
        reader = TopKEngine(g, scores, hops=2)
        reader.load_index(path)
        assert reader.diff_index is not None
        fast = reader.topk(5, "sum", "forward")
        assert fast.stats.index_build_sec == 0.0
        assert rounded(fast.values) == rounded(writer.topk(5, "sum", "base").values)

    def test_engine_load_wrong_hops(self, tmp_path):
        from repro.core.engine import TopKEngine

        g = random_graph(20, 0.2, seed=184)
        writer = TopKEngine(g, [0.0] * 20, hops=1)
        path = tmp_path / "h1.lonaidx"
        writer.save_index(path)
        reader = TopKEngine(g, [0.0] * 20, hops=2)
        with pytest.raises(IndexNotBuiltError):
            reader.load_index(path)

    def test_error_exit_code(self, tmp_path, capsys):
        bad_scores = tmp_path / "bad.txt"
        bad_scores.write_text("only-one-token\n")
        graph_path = tmp_path / "g.txt"
        graph_path.write_text("a b\n")
        code = cli_main(
            [
                "query",
                "--edge-list",
                str(graph_path),
                "--scores",
                str(bad_scores),
                "--k",
                "1",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCLIJson:
    """--json output mode: one machine-readable object per command."""

    @staticmethod
    def _run_json(capsys, argv):
        import json as _json

        code = cli_main(argv)
        assert code == 0
        return _json.loads(capsys.readouterr().out)

    def test_query_json(self, capsys):
        payload = self._run_json(
            capsys,
            [
                "query",
                "--dataset",
                "intrusion_like",
                "--scale",
                "0.05",
                "--k",
                "3",
                "--binary",
                "--json",
            ],
        )
        assert payload["command"] == "query"
        assert payload["graph"]["nodes"] > 0
        assert len(payload["entries"]) == 3
        first = payload["entries"][0]
        assert set(first) == {"rank", "node", "label", "value"}
        assert payload["entries"][0]["rank"] == 1
        values = [e["value"] for e in payload["entries"]]
        assert values == sorted(values, reverse=True)
        assert payload["stats"]["algorithm"] in (
            "base",
            "forward",
            "backward",
        )
        assert "elapsed_sec" in payload["stats"]

    def test_query_json_matches_text_entries(self, capsys):
        argv = [
            "query",
            "--dataset",
            "collaboration_like",
            "--scale",
            "0.05",
            "--k",
            "4",
        ]
        assert cli_main(argv) == 0
        text_out = capsys.readouterr().out
        text_entries = [
            line.split("\t")
            for line in text_out.splitlines()
            if line and not line.startswith("#")
        ]
        payload = self._run_json(capsys, argv + ["--json"])
        assert [e["label"] for e in payload["entries"]] == [
            row[1] for row in text_entries
        ]
        for entry, row in zip(payload["entries"], text_entries):
            assert round(entry["value"], 6) == float(row[2])

    def test_explain_json(self, capsys):
        payload = self._run_json(
            capsys,
            [
                "explain",
                "--dataset",
                "collaboration_like",
                "--scale",
                "0.05",
                "--k",
                "5",
                "--json",
            ],
        )
        assert payload["command"] == "explain"
        plan = payload["plan"]
        assert plan["chosen"] in ("base", "forward", "backward")
        algorithms = {est["algorithm"] for est in plan["estimates"]}
        assert "base" in algorithms
        for est in plan["estimates"]:
            assert est["online_ball_expansions"] >= 0

    def test_query_relational_via_cli(self, capsys):
        code = cli_main(
            [
                "query",
                "--dataset",
                "collaboration_like",
                "--scale",
                "0.05",
                "--k",
                "3",
                "--algorithm",
                "relational",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "algorithm=relational" in out
