"""Edge-case hardening across subsystems."""

from __future__ import annotations

from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.forward import forward_topk
from repro.core.query import QuerySpec
from repro.distributed.aggregation import ScoreFloodProgram
from repro.distributed.bsp import BSPEngine
from repro.distributed.partition import hash_partition
from repro.graph.graph import Graph
from repro.relational.operators import (
    OperatorStats,
    distinct,
    group_aggregate,
    hash_join,
    order_by_limit,
)
from repro.relational.table import Table
from tests.conftest import rounded


class TestRelationalEmptyInputs:
    def test_distinct_empty(self):
        stats = OperatorStats()
        out = distinct(Table.empty(["a"]), stats)
        assert out.num_rows == 0

    def test_join_empty_sides(self):
        stats = OperatorStats()
        left = Table.empty(["k", "x"])
        right = Table({"k": [1], "y": [2]})
        assert hash_join(left, right, left_key="k", right_key="k", stats=stats).num_rows == 0
        assert hash_join(right, left, left_key="k", right_key="k", stats=stats).num_rows == 0

    def test_group_empty(self):
        stats = OperatorStats()
        out = group_aggregate(
            Table.empty(["g", "v"]),
            key="g",
            aggregations={"s": ("sum", "v")},
            stats=stats,
        )
        assert out.num_rows == 0

    def test_limit_beyond_rows(self):
        stats = OperatorStats()
        t = Table({"v": [1.0, 2.0]})
        out = order_by_limit(t, column="v", k=10, stats=stats)
        assert out.num_rows == 2


class TestBSPQuiescence:
    def test_no_nonzero_scores_quiesces_immediately(self, path_graph):
        engine = BSPEngine(path_graph, hash_partition(path_graph, 2))
        stats = engine.run(ScoreFloodProgram([0.0] * 5, 2), max_supersteps=3)
        assert stats.supersteps == 1
        assert stats.messages_total == 0

    def test_hops_zero_sends_nothing(self, path_graph):
        engine = BSPEngine(path_graph, hash_partition(path_graph, 2))
        stats = engine.run(ScoreFloodProgram([1.0] * 5, 0), max_supersteps=3)
        assert stats.messages_total == 0
        assert engine.vertex_state[2]["ps"] == 1.0


class TestAlgorithmsOnPathologies:
    def test_complete_graph_all_balls_identical(self):
        n = 12
        g = Graph.from_edges(
            [(u, v) for u in range(n) for v in range(u + 1, n)]
        )
        scores = [i / n for i in range(n)]
        spec = QuerySpec(k=5, hops=2)
        expected = base_topk(g, scores, spec)
        # every ball is V, so every value equals sum(scores)
        assert len(set(rounded(expected.values))) == 1
        assert rounded(forward_topk(g, scores, spec).values) == rounded(
            expected.values
        )
        assert rounded(backward_topk(g, scores, spec).values) == rounded(
            expected.values
        )

    def test_disconnected_stars(self):
        edges = []
        for hub in (0, 10, 20):
            edges.extend((hub, hub + leaf) for leaf in range(1, 10))
        g = Graph.from_edges(edges, num_nodes=30)
        scores = [1.0 if u % 10 == 0 else 0.0 for u in range(30)]
        spec = QuerySpec(k=3, hops=2)
        expected = base_topk(g, scores, spec)
        assert rounded(backward_topk(g, scores, spec).values) == rounded(
            expected.values
        )
        # every hub's ball holds exactly its own flag
        assert expected.values == [1.0, 1.0, 1.0]

    def test_long_path_high_hops(self):
        n = 40
        g = Graph.from_edges([(i, i + 1) for i in range(n - 1)])
        scores = [1.0 if i == 0 else 0.0 for i in range(n)]
        spec = QuerySpec(k=1, hops=10)
        for func in (base_topk, forward_topk, backward_topk):
            result = func(g, scores, spec)
            assert result.values == [1.0]
            # only nodes within 10 hops of node 0 can be the answer
            assert result.nodes[0] <= 10

    def test_k_equals_n_returns_everything_sorted(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        scores = [0.1, 0.9, 0.3, 0.6]
        spec = QuerySpec(k=4, hops=1)
        for func in (base_topk, forward_topk, backward_topk):
            result = func(g, scores, spec)
            assert len(result) == 4
            assert result.values == sorted(result.values, reverse=True)

    def test_scores_all_equal_ranking_by_ball_size(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (3, 4)])
        scores = [0.5] * 5
        spec = QuerySpec(k=1, hops=1)
        result = base_topk(g, scores, spec)
        assert result.top()[0] == 0  # the hub has the largest 1-hop ball
        assert rounded(forward_topk(g, scores, spec).values) == rounded(
            result.values
        )
