"""Smoke tests: every example script must run cleanly end to end.

Each example is executed in a subprocess exactly as a user would run it
(small scales passed where the script accepts an argument).  These tests
are the repository's guarantee that the documented entry points stay
runnable as the library evolves.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

CASES = [
    ("quickstart.py", []),
    ("social_recommendation.py", ["0.15"]),
    ("gene_coexpression.py", []),
    ("intrusion_detection.py", ["0.15"]),
    ("distributed_topk.py", ["3"]),
    ("cluster_topk.py", ["2"]),
    ("relational_comparison.py", []),
    ("weighted_influence.py", []),
    ("dynamic_monitoring.py", []),
    ("remote_client.py", []),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_examples_directory_is_covered():
    scripts = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert scripts == {case[0] for case in CASES}, (
        "new example scripts must be added to the smoke-test matrix"
    )
