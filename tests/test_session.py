"""Tests for the Network session facade and its fluent query builder.

The acceptance bar for the facade: ``Network.query(...)`` must cover every
scenario the four pre-session entry points did — single queries
(``TopKEngine.topk``), batch shared scans (``BatchTopKEngine.run``), the
relational baseline (``relational.engine``), and dynamic maintained views
(``DynamicGraph``/``MaintainedAggregateView``) — with entry-for-entry
parity, and ``.stream()`` must yield monotonically refining top-k states
that converge to ``.run()``'s answer on both backends.
"""

from __future__ import annotations

import random

import pytest

from repro.core.backends import numpy_available
from repro.core.base import base_topk
from repro.core.batch import BatchQuery, BatchResult, BatchTopKEngine
from repro.core.query import QuerySpec
from repro.core.request import QueryRequest
from repro.core.results import StreamUpdate
from repro.dynamic.graph import DynamicGraph
from repro.dynamic.maintenance import MaintainedAggregateView
from repro.errors import InvalidParameterError
from repro.relational.engine import relational_topk
from repro.relevance import BinaryRelevance
from repro.session import Network, QueryBuilder
from tests.conftest import random_graph, rounded

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


def continuous_scores(n: int, seed: int) -> list:
    """Strictly positive, pairwise-distinct scores: tie-free top-k."""
    rng = random.Random(seed)
    return [0.05 + 0.9 * rng.random() for _ in range(n)]


@pytest.fixture(scope="module")
def net_graph():
    return random_graph(60, 0.08, seed=311)


@pytest.fixture(scope="module")
def net_scores(net_graph):
    return continuous_scores(net_graph.num_nodes, seed=312)


@pytest.fixture()
def net(net_graph, net_scores):
    session = Network(net_graph, hops=2)
    session.add_scores("dense", net_scores)
    session.add_scores(
        "sparse", BinaryRelevance(0.05, seed=313).scores(net_graph)
    )
    return session


class TestSessionBasics:
    def test_named_scores(self, net):
        assert net.score_names() == ("dense", "sparse")
        assert len(net.scores_of("dense")) == 60

    def test_unknown_score_rejected_early(self, net):
        with pytest.raises(InvalidParameterError, match="unknown score"):
            net.query("missing")

    def test_add_scores_is_chainable(self, net_graph):
        session = Network(net_graph).add_scores("a", [0.5] * 60)
        assert session.score_names() == ("a",)

    def test_from_edges(self):
        session = Network.from_edges([(0, 1), (1, 2)], hops=1)
        assert session.graph.num_nodes == 3

    def test_builder_is_immutable(self, net):
        base = net.query("dense").limit(5)
        avg = base.aggregate("avg")
        assert base.request().aggregate.value == "sum"
        assert avg.request().aggregate.value == "avg"
        assert base is not avg

    def test_limit_required(self, net):
        with pytest.raises(InvalidParameterError, match="limit"):
            net.query("dense").run()

    def test_hops_must_match_session(self, net):
        assert isinstance(net.query("dense").hops(2), QueryBuilder)
        with pytest.raises(InvalidParameterError, match="hops"):
            net.query("dense").hops(3)

    def test_request_lowering(self, net):
        request = (
            net.query("dense")
            .limit(7)
            .aggregate("avg")
            .algorithm("backward")
            .backend("python")
            .gamma(0.5)
            .request()
        )
        assert isinstance(request, QueryRequest)
        assert (request.k, request.score) == (7, "dense")
        assert request.aggregate.value == "avg"
        assert request.algorithm == "backward"
        assert request.backend == "python"
        assert request.gamma == 0.5
        spec = request.spec()
        assert isinstance(spec, QuerySpec)
        assert (spec.k, spec.hops, spec.backend) == (7, 2, "python")

    def test_topk_convenience(self, net, net_graph, net_scores):
        result = net.topk("dense", 4, "sum")
        expected = base_topk(net_graph, net_scores, QuerySpec(k=4, hops=2))
        assert result.entries == expected.entries


class TestSingleQueryParity:
    """Entry-for-entry parity with the old TopKEngine paths."""

    @pytest.mark.parametrize("algorithm", ["base", "forward", "backward"])
    @pytest.mark.parametrize("aggregate", ["sum", "avg"])
    def test_algorithms_match_old_engine(
        self, net, net_graph, net_scores, algorithm, aggregate
    ):
        from repro.core.engine import TopKEngine

        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(net_graph, net_scores, hops=2)
        old = engine.topk(6, aggregate, algorithm)
        new = (
            net.query("dense")
            .limit(6)
            .aggregate(aggregate)
            .algorithm(algorithm)
            .run()
        )
        assert new.entries == old.entries
        assert new.stats.algorithm == old.stats.algorithm

    def test_auto_matches_old_auto(self, net, net_graph):
        from repro.core.engine import TopKEngine

        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(
                net_graph, net.scores_of("sparse"), hops=2
            )
        old = engine.topk(5, "sum", "auto")
        new = net.query("sparse").limit(5).run()
        assert new.entries == old.entries
        assert new.stats.algorithm == "backward"  # sparse -> backward

    def test_planned_algorithm(self, net):
        result = net.query("dense").limit(5).algorithm("planned").run()
        plan = net.query("dense").limit(5).explain()
        assert result.stats.algorithm == plan.chosen

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_pinning(self, net, backend):
        result = (
            net.query("dense")
            .limit(5)
            .algorithm("backward")
            .backend(backend)
            .run()
        )
        assert result.stats.backend == backend

    def test_max_min_route_to_base(self, net):
        for aggregate in ("max", "min"):
            result = net.query("dense").limit(3).aggregate(aggregate).run()
            assert result.stats.algorithm == "base"

    def test_index_sharing_across_scores(self, net):
        net.build_indexes()
        dense = net.query("dense").limit(5).algorithm("forward").run()
        sparse = net.query("sparse").limit(5).algorithm("forward").run()
        assert dense.stats.index_build_sec == 0.0
        assert sparse.stats.index_build_sec == 0.0


class TestWhereFilter:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_node_set_filter(self, net, net_graph, net_scores, backend):
        candidates = list(range(0, 60, 3))
        result = (
            net.query("dense")
            .limit(5)
            .where(candidates)
            .backend(backend)
            .run()
        )
        full = base_topk(net_graph, net_scores, QuerySpec(k=60, hops=2))
        by_node = dict(full.entries)
        expected = sorted(
            ((u, by_node[u]) for u in candidates),
            key=lambda pair: (-pair[1], pair[0]),
        )[:5]
        assert [n for n, _ in result.entries] == [n for n, _ in expected]
        assert rounded(result.values) == rounded([v for _, v in expected])

    def test_predicate_filter(self, net):
        via_pred = (
            net.query("dense").limit(5).where(lambda v: v % 2 == 0).run()
        )
        via_set = (
            net.query("dense").limit(5).where(range(0, 60, 2)).run()
        )
        assert via_pred.entries == via_set.entries

    def test_chained_where_intersects(self, net):
        chained = (
            net.query("dense")
            .limit(5)
            .where(range(0, 30))
            .where(range(20, 60))
            .run()
        )
        direct = net.query("dense").limit(5).where(range(20, 30)).run()
        assert chained.entries == direct.entries

    def test_filter_smaller_than_k(self, net):
        result = net.query("dense").limit(10).where([4, 7]).run()
        assert sorted(node for node, _ in result.entries) == [4, 7]

    def test_out_of_range_candidate_rejected(self, net):
        with pytest.raises(InvalidParameterError, match="not in graph"):
            net.query("dense").where([999])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_parity_on_filter(self, net, backend):
        reference = (
            net.query("dense").limit(6).where(range(0, 40)).backend("python").run()
        )
        other = (
            net.query("dense").limit(6).where(range(0, 40)).backend(backend).run()
        )
        assert [n for n, _ in other.entries] == [n for n, _ in reference.entries]
        assert rounded(other.values) == rounded(reference.values)


class TestRelationalParity:
    def test_matches_functional_relational(self, net, net_graph, net_scores):
        old = relational_topk(net_graph, net_scores, QuerySpec(k=6, hops=2))
        new = net.query("dense").limit(6).algorithm("relational").run()
        assert new.entries == old.entries
        assert new.stats.algorithm == "relational"

    def test_matches_deprecated_engine_class(self, net, net_graph, net_scores):
        from repro.relational.engine import RelationalTopKEngine

        with pytest.warns(DeprecationWarning):
            engine = RelationalTopKEngine(net_graph, net_scores)
        old = engine.topk(4, "avg", hops=2)
        new = (
            net.query("dense")
            .limit(4)
            .aggregate("avg")
            .algorithm("relational")
            .run()
        )
        assert new.entries == old.entries

    def test_relational_with_filter(self, net):
        candidates = range(0, 60, 4)
        relational = (
            net.query("dense")
            .limit(5)
            .where(candidates)
            .algorithm("relational")
            .run()
        )
        graphwise = net.query("dense").limit(5).where(candidates).run()
        assert [n for n, _ in relational.entries] == [
            n for n, _ in graphwise.entries
        ]
        assert rounded(relational.values) == rounded(graphwise.values)


class TestBatch:
    def test_matches_old_batch_engine(self, net, net_graph):
        queries = [
            BatchQuery(net.scores_of("dense"), k=5),
            BatchQuery(net.scores_of("sparse"), k=4),
            BatchQuery(net.scores_of("dense"), k=3, aggregate="avg"),
        ]
        engine = BatchTopKEngine(net_graph, hops=2)
        old = engine.run(queries)
        new = net.batch(queries)
        assert isinstance(new, BatchResult)
        assert len(new) == len(old)
        for old_result, new_result in zip(old, new):
            assert new_result.entries == old_result.entries

    def test_accepts_builders(self, net):
        batch = net.batch(
            [
                net.query("dense").limit(5),
                net.query("sparse").limit(4),
                net.query("dense").limit(3).aggregate("avg"),
            ]
        )
        singles = [
            net.query("dense").limit(5).run(),
            net.query("sparse").limit(4).run(),
            net.query("dense").limit(3).aggregate("avg").run(),
        ]
        for batched, single in zip(batch, singles):
            assert rounded(batched.values) == rounded(single.values)
            assert sorted(n for n, _ in batched.entries) == sorted(
                n for n, _ in single.entries
            )

    def test_routing_policy_preserved(self, net):
        batch = net.batch(
            [net.query("dense").limit(5), net.query("sparse").limit(4)]
        )
        assert batch[0].stats.algorithm == "batch-base"
        assert batch[1].stats.algorithm == "backward"

    def test_filtered_builder_rejected(self, net):
        with pytest.raises(InvalidParameterError, match="batch entry"):
            net.batch([net.query("dense").limit(5).where([1, 2, 3])])

    def test_combined_stats_sum_per_query(self, net):
        batch = net.batch(
            [
                net.query("dense").limit(5),
                net.query("dense").limit(3),
                net.query("sparse").limit(4),
            ]
        )
        shared = batch[0].stats
        sparse = batch[2].stats
        combined = batch.stats
        assert combined.extra["num_queries"] == 3.0
        # Shared-scan traversal counted once (not twice), sparse added once.
        assert combined.edges_scanned == (
            shared.edges_scanned + sparse.edges_scanned
        )
        assert combined.nodes_evaluated == (
            shared.nodes_evaluated + sparse.nodes_evaluated
        )


class TestStream:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("aggregate", ["sum", "avg"])
    def test_monotone_refinement_and_convergence(
        self, net, backend, aggregate
    ):
        builder = (
            net.query("dense").limit(5).aggregate(aggregate).backend(backend)
        )
        updates = list(builder.stream())
        assert updates, "stream must yield at least one update"
        assert all(isinstance(u, StreamUpdate) for u in updates)
        # Monotone: bounds never increase, k-th best never decreases.
        for prev, cur in zip(updates, updates[1:]):
            assert cur.bound <= prev.bound + 1e-12
            assert cur.kth_value >= prev.kth_value - 1e-12
        final = updates[-1]
        assert final.done
        exact = builder.run()
        assert [n for n, _ in final.entries] == exact.nodes
        assert rounded([v for _, v in final.entries]) == rounded(exact.values)

    def test_streams_agree_across_backends(self, net):
        if len(BACKENDS) < 2:
            pytest.skip("numpy not available")
        py = list(net.query("dense").limit(5).backend("python").stream())
        npy = list(net.query("dense").limit(5).backend("numpy").stream())
        assert [u.node for u in py] == [u.node for u in npy]
        assert [u.evaluated for u in py] == [u.evaluated for u in npy]
        assert rounded([u.value for u in py]) == rounded([u.value for u in npy])

    def test_stream_can_terminate_early(self, net_graph):
        # A strongly skewed vector lets the bound close before a full scan.
        scores = [0.0] * net_graph.num_nodes
        scores[0] = 1.0
        session = Network(net_graph, hops=2).add_scores("spike", scores)
        updates = list(session.query("spike").limit(1).stream())
        assert updates[-1].done
        assert updates[-1].evaluated <= net_graph.num_nodes

    def test_stream_respects_filter(self, net):
        candidates = list(range(0, 60, 5))
        updates = list(
            net.query("dense").limit(3).where(candidates).stream()
        )
        assert {u.node for u in updates} <= set(candidates)
        exact = net.query("dense").limit(3).where(candidates).run()
        assert rounded([v for _, v in updates[-1].entries]) == rounded(
            exact.values
        )

    def test_stream_updates_carry_exact_values(self, net, net_graph, net_scores):
        full = dict(
            base_topk(net_graph, net_scores, QuerySpec(k=60, hops=2)).entries
        )
        for update in net.query("dense").limit(5).stream():
            assert round(update.value, 9) == round(full[update.node], 9)

    def test_stream_rejects_relational(self, net):
        with pytest.raises(InvalidParameterError, match="stream"):
            list(net.query("dense").limit(3).algorithm("relational").stream())


class TestDynamic:
    @pytest.fixture()
    def dyn(self):
        graph = DynamicGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]
        )
        scores = continuous_scores(graph.num_nodes, seed=401)
        session = Network(graph, hops=2).add_scores("live", scores)
        return session, scores

    def test_view_parity_with_old_path(self, dyn):
        session, scores = dyn
        session.maintain("live")
        old_graph = DynamicGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]
        )
        old_view = MaintainedAggregateView(old_graph, scores, hops=2)
        old = old_view.topk(3, "sum")
        new = session.query("live").limit(3).algorithm("view").run()
        assert new.entries == old.entries
        assert new.stats.algorithm == "maintained-view"

    def test_view_requires_maintain(self, dyn):
        session, _scores = dyn
        with pytest.raises(InvalidParameterError, match="maintained view"):
            session.query("live").limit(3).algorithm("view").run()

    def test_mutations_repair_view_and_caches(self, dyn):
        session, _scores = dyn
        session.maintain("live")
        session.build_indexes()
        assert session.diff_index is not None
        repaired = session.add_edge(2, 5)
        assert repaired > 0
        # Caches dropped: the old differential index would be unsound now.
        assert session.diff_index is None
        via_view = session.query("live").limit(3).algorithm("view").run()
        via_base = session.query("live").limit(3).algorithm("base").run()
        assert rounded(via_view.values) == rounded(via_base.values)

    def test_remove_edge_repairs(self, dyn):
        session, _scores = dyn
        session.maintain("live")
        session.add_edge(2, 5)
        session.remove_edge(2, 5)
        via_view = session.query("live").limit(3).algorithm("view").run()
        via_base = session.query("live").limit(3).algorithm("base").run()
        assert rounded(via_view.values) == rounded(via_base.values)

    def test_update_score_syncs_named_vector(self, dyn):
        session, _scores = dyn
        session.maintain("live")
        session.update_score("live", 0, 0.99)
        assert session.scores_of("live")[0] == 0.99
        via_view = session.query("live").limit(3).algorithm("view").run()
        via_base = session.query("live").limit(3).algorithm("base").run()
        assert rounded(via_view.values) == rounded(via_base.values)

    def test_update_score_without_view(self, dyn):
        session, _scores = dyn
        session.update_score("live", 1, 0.42)
        assert session.scores_of("live")[1] == 0.42

    def test_mutation_requires_dynamic_graph(self, net):
        with pytest.raises(InvalidParameterError, match="DynamicGraph"):
            net.add_edge(0, 1)

    def test_maintain_requires_dynamic_graph(self, net):
        with pytest.raises(InvalidParameterError, match="DynamicGraph"):
            net.maintain("dense")

    def test_filtered_view_query(self, dyn):
        session, _scores = dyn
        session.maintain("live")
        filtered = (
            session.query("live")
            .limit(2)
            .algorithm("view")
            .where([0, 1, 2])
            .run()
        )
        assert {n for n, _ in filtered.entries} <= {0, 1, 2}


class TestContractEdges:
    """Regressions from review: no silently dropped pins, no stale views."""

    def test_replacing_scores_rebuilds_maintained_view(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        session = Network(graph, hops=2).add_scores(
            "s", [0.1, 0.9, 0.3, 0.5, 0.2]
        )
        session.maintain("s")
        session.add_scores("s", [0.9, 0.1, 0.1, 0.1, 0.9])
        via_view = session.query("s").limit(3).algorithm("view").run()
        via_base = session.query("s").limit(3).algorithm("base").run()
        assert rounded(via_view.values) == rounded(via_base.values)

    def test_filtered_query_rejects_pruning_algorithm_pin(self, net):
        for algorithm in ("forward", "backward", "planned"):
            with pytest.raises(InvalidParameterError, match="where"):
                (
                    net.query("dense")
                    .limit(3)
                    .algorithm(algorithm)
                    .where([0, 1, 2])
                    .run()
                )

    def test_filtered_query_allows_base_and_relational(self, net):
        base = (
            net.query("dense").limit(3).algorithm("base").where([0, 1, 2]).run()
        )
        rel = (
            net.query("dense")
            .limit(3)
            .algorithm("relational")
            .where([0, 1, 2])
            .run()
        )
        assert rounded(base.values) == rounded(rel.values)

    def test_stream_rejects_algorithm_pins(self, net):
        for algorithm in ("forward", "backward", "planned", "view"):
            with pytest.raises(InvalidParameterError, match="stream"):
                list(net.query("dense").limit(3).algorithm(algorithm).stream())

    def test_stream_on_empty_filter_is_empty(self, net):
        updates = list(
            net.query("dense").limit(3).where(lambda v: False).stream()
        )
        assert updates == []
        result = net.query("dense").limit(3).where(lambda v: False).run()
        assert result.entries == []

    def test_batch_rejects_algorithm_pin(self, net):
        with pytest.raises(InvalidParameterError, match="batch entry"):
            net.batch([net.query("sparse").limit(3).algorithm("base")])

    def test_batch_rejects_backend_pin(self, net):
        other = "python" if net.backend != "python" else "numpy"
        with pytest.raises(InvalidParameterError, match="batch entry"):
            net.batch([net.query("dense").limit(3).backend(other)])

    def test_batch_rejects_gamma_pin(self, net):
        with pytest.raises(InvalidParameterError, match="batch entry"):
            net.batch([net.query("sparse").limit(3).gamma(0.5)])

    def test_batch_accepts_session_backend_pin(self, net):
        batch = net.batch(
            [net.query("dense").limit(3).backend(net.backend)]
        )
        assert len(batch) == 1

    def test_topk_rejects_terminal_methods_as_options(self, net):
        with pytest.raises(InvalidParameterError, match="unknown query option"):
            net.topk("dense", 2, run=True)
        with pytest.raises(InvalidParameterError, match="unknown query option"):
            net.topk("dense", 2, limit=5)

    def test_topk_accepts_refinement_options(self, net):
        result = net.topk("dense", 2, algorithm="backward", gamma=0.5)
        assert result.stats.extra["gamma"] == 0.5

    def test_stream_rejects_mismatched_context(self, net_graph, net_scores):
        """Round 2 review: stream() must enforce the hops/ball guard too."""
        from repro.core import executor
        from repro.core.context import GraphContext
        from repro.relevance import ScoreVector

        ctx = GraphContext(net_graph, hops=1)
        request = QueryRequest(k=5, hops=2)
        with pytest.raises(InvalidParameterError, match="context built for"):
            list(executor.stream(ctx, ScoreVector(net_scores), request))

    def test_update_score_bad_node_leaves_view_intact(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        session = Network(graph, hops=2).add_scores(
            "s", [0.1, 0.9, 0.3, 0.5, 0.2]
        )
        session.maintain("s")
        before = session.query("s").limit(5).algorithm("view").run().entries
        for bad in (-1, 99):
            with pytest.raises(InvalidParameterError, match="not in graph"):
                session.update_score("s", bad, 0.7)
        after = session.query("s").limit(5).algorithm("view").run().entries
        assert after == before

    def test_engine_auto_rejects_inapplicable_options(self, net_graph, net_scores):
        """Old-engine contract: resolve auto first, then reject bad knobs."""
        from repro.core.engine import TopKEngine

        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(net_graph, net_scores, hops=2)
        # Dense, no index -> auto resolves to base, which takes no options.
        with pytest.raises(InvalidParameterError, match="unknown query options"):
            engine.topk(3, "sum", "auto", gamma=0.5)

    def test_add_edge_refuses_after_outside_mutation(self):
        """Round 3 review: mutating past a stale view must raise, not bake
        the stale state into a 'repaired' view."""
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        session = Network(graph, hops=2).add_scores(
            "s", [0.1, 0.9, 0.3, 0.5, 0.2]
        )
        session.maintain("s")
        graph.add_edge(0, 3)  # outside the session
        with pytest.raises(InvalidParameterError, match="outside the view"):
            session.add_edge(1, 4)

    def test_filtered_view_query_detects_stale_view(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        session = Network(graph, hops=2).add_scores(
            "s", [0.1, 0.9, 0.3, 0.5, 0.2]
        )
        session.maintain("s")
        graph.add_edge(0, 3)  # outside the session
        with pytest.raises(InvalidParameterError, match="outside the view"):
            session.query("s").limit(2).algorithm("view").where([2, 3]).run()

    def test_explain_honors_backend_pin(self, net):
        if len(BACKENDS) < 2:
            pytest.skip("numpy not available")
        pinned = net.query("dense").limit(5).backend("python").explain()
        assert pinned.backend == "python"
        run = net.query("dense").limit(5).backend("python").algorithm(
            "backward"
        ).run()
        assert run.stats.backend == pinned.backend

    def test_batch_does_not_eagerly_build_caches(self, net):
        # An all-sparse batch runs backward only: no CSR conversion needed.
        net.batch([net.query("sparse").limit(3)])
        assert net._ctx._csr is None

    def test_filtered_max_runs_vectorized(self, net):
        """MAX/MIN reduce with segmented reduceat: numpy covers them too."""
        if len(BACKENDS) < 2:
            pytest.skip("numpy not available")
        result = (
            net.query("dense")
            .limit(3)
            .aggregate("max")
            .where(range(0, 20))
            .backend("numpy")
            .run()
        )
        assert result.stats.backend == "numpy"
        python = (
            net.query("dense")
            .limit(3)
            .aggregate("max")
            .where(range(0, 20))
            .backend("python")
            .run()
        )
        assert python.stats.backend == "python"
        assert result.entries == python.entries
        summed = (
            net.query("dense")
            .limit(3)
            .where(range(0, 20))
            .backend("numpy")
            .run()
        )
        assert summed.stats.backend == "numpy"

    def test_network_topk_weighted_matches_engine(self, net_graph, net_scores):
        from repro.aggregates import inverse_distance
        from repro.core.engine import TopKEngine

        session = Network(net_graph, hops=2).add_scores("w", net_scores)
        new = session.topk_weighted("w", 4, inverse_distance)
        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(net_graph, net_scores, hops=2)
        old = engine.topk_weighted(4, inverse_distance)
        assert rounded(new.values) == rounded(old.values)
        with pytest.raises(InvalidParameterError, match="unknown query options"):
            session.topk_weighted("w", 4, inverse_distance, nonsense=1)

    def test_builder_rejects_inapplicable_knobs(self, net):
        """Round 5 review: a knob the resolved algorithm ignores must raise."""
        with pytest.raises(InvalidParameterError, match="no effect"):
            net.query("dense").limit(3).algorithm("backward").ordering(
                "degree"
            ).run()
        with pytest.raises(InvalidParameterError, match="no effect"):
            net.query("dense").limit(3).algorithm("forward").gamma(0.5).run()
        with pytest.raises(InvalidParameterError, match="no effect"):
            net.query("dense").limit(3).algorithm("base").exact_sizes().run()
        with pytest.raises(InvalidParameterError, match="no effect"):
            net.query("dense").limit(3).where([1, 2]).gamma(0.5).run()
        with pytest.raises(InvalidParameterError, match="no effect"):
            list(net.query("dense").limit(3).ordering("degree").stream())
        # Applicable pins still work.
        ok = net.query("dense").limit(3).algorithm("backward").gamma(0.5).run()
        assert ok.stats.extra["gamma"] == 0.5

    def test_view_query_rejects_inapplicable_knobs(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        session = Network(graph, hops=2).add_scores("s", [0.1, 0.9, 0.3, 0.5])
        session.maintain("s")
        with pytest.raises(InvalidParameterError, match="no effect"):
            session.query("s").limit(2).algorithm("view").gamma(0.5).run()

    def test_stream_validates_eagerly(self, net):
        """Misuse raises at .stream() call time, not at first next()."""
        with pytest.raises(InvalidParameterError):
            net.query("dense").limit(3).algorithm("forward").stream()
