"""Tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graph.generators import (
    barabasi_albert,
    citation_dag,
    coauthorship,
    erdos_renyi,
    powerlaw_cluster,
    ring_lattice,
    star_burst,
    watts_strogatz,
)
from repro.graph.validation import validate_graph


class TestErdosRenyi:
    def test_exact_counts(self):
        g = erdos_renyi(50, 100, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges == 100
        validate_graph(g)

    def test_deterministic_by_seed(self):
        a = erdos_renyi(30, 60, seed=5)
        b = erdos_renyi(30, 60, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = erdos_renyi(30, 60, seed=5)
        b = erdos_renyi(30, 60, seed=6)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_zero_edges(self):
        g = erdos_renyi(10, 0, seed=1)
        assert g.num_edges == 0

    def test_complete_graph(self):
        g = erdos_renyi(6, 15, seed=1)
        assert g.num_edges == 15

    def test_too_many_edges_rejected(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi(4, 7, seed=1)

    def test_negative_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi(-1, 0)


class TestBarabasiAlbert:
    def test_counts_and_validity(self):
        g = barabasi_albert(100, 3, seed=2)
        assert g.num_nodes == 100
        validate_graph(g)
        # every non-seed node adds exactly m edges
        assert g.num_edges == 3 + (100 - 4) * 3

    def test_min_degree(self):
        g = barabasi_albert(80, 2, seed=3)
        assert min(g.degree(u) for u in g.nodes()) >= 2

    def test_hub_emerges(self):
        g = barabasi_albert(300, 2, seed=4)
        degrees = sorted((g.degree(u) for u in g.nodes()), reverse=True)
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_invalid_m(self):
        with pytest.raises(InvalidParameterError):
            barabasi_albert(10, 0)
        with pytest.raises(InvalidParameterError):
            barabasi_albert(10, 10)


class TestPowerlawCluster:
    def test_validity(self):
        g = powerlaw_cluster(150, 3, 0.6, seed=5)
        assert g.num_nodes == 150
        validate_graph(g)

    def test_triangle_prob_bounds(self):
        with pytest.raises(InvalidParameterError):
            powerlaw_cluster(20, 2, 1.5)

    def test_clustering_increases_with_triangle_prob(self):
        def triangles(graph):
            count = 0
            for u in graph.nodes():
                nbrs = set(graph.neighbors(u))
                for v in nbrs:
                    count += len(nbrs & set(graph.neighbors(v)))
            return count

        low = powerlaw_cluster(300, 3, 0.0, seed=6)
        high = powerlaw_cluster(300, 3, 0.9, seed=6)
        assert triangles(high) > triangles(low)

    def test_heavy_tail_creates_low_degree_nodes(self):
        uniform = powerlaw_cluster(400, 4, 0.5, seed=7)
        heavy = powerlaw_cluster(400, 4, 0.5, seed=7, heavy_tail=True)
        low_uniform = sum(1 for u in uniform.nodes() if uniform.degree(u) <= 2)
        low_heavy = sum(1 for u in heavy.nodes() if heavy.degree(u) <= 2)
        assert low_heavy > low_uniform

    def test_deterministic(self):
        a = powerlaw_cluster(100, 3, 0.5, seed=8, heavy_tail=True)
        b = powerlaw_cluster(100, 3, 0.5, seed=8, heavy_tail=True)
        assert sorted(a.edges()) == sorted(b.edges())


class TestCitationDag:
    def test_validity_and_direction(self):
        g = citation_dag(120, 4, seed=9)
        assert g.directed
        validate_graph(g)

    def test_acyclic_arcs_point_backward(self):
        g = citation_dag(200, 5, seed=10)
        for u, v in g.arcs():
            assert v < u, "citations must reference earlier nodes"

    def test_in_degree_skew(self):
        g = citation_dag(400, 4, seed=11)
        indeg = [0] * 400
        for _u, v in g.arcs():
            indeg[v] += 1
        top = max(indeg)
        assert top >= 15

    def test_heavy_tail_spreads_out_degree(self):
        g = citation_dag(300, 5, seed=12, heavy_tail=True)
        outs = {g.degree(u) for u in g.nodes()}
        assert len(outs) > 5

    def test_invalid_recency(self):
        with pytest.raises(InvalidParameterError):
            citation_dag(50, 3, recency_bias=2.0)


class TestStarBurst:
    def test_validity_and_sparsity(self):
        g = star_burst(500, num_hubs=30, hub_degree_mean=8.0, seed=13)
        validate_graph(g)
        assert g.num_edges < 4 * g.num_nodes

    def test_hub_heavy_tail(self):
        g = star_burst(800, num_hubs=50, hub_degree_mean=10.0, seed=14)
        degrees = sorted((g.degree(u) for u in g.nodes()), reverse=True)
        assert degrees[0] >= 10
        assert degrees[len(degrees) // 2] <= 3

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            star_burst(1, num_hubs=1, hub_degree_mean=2.0)
        with pytest.raises(InvalidParameterError):
            star_burst(10, num_hubs=0, hub_degree_mean=2.0)
        with pytest.raises(InvalidParameterError):
            star_burst(10, num_hubs=2, hub_degree_mean=-1.0)
        with pytest.raises(InvalidParameterError):
            star_burst(10, num_hubs=2, hub_degree_mean=2.0, cross_link_fraction=1.5)


class TestCoauthorship:
    def test_validity(self):
        g = coauthorship(300, seed=15)
        assert g.num_nodes == 300
        validate_graph(g)

    def test_clique_structure_gives_triangles(self):
        g = coauthorship(300, team_mean=3.5, seed=16)
        triangle_nodes = 0
        for u in g.nodes():
            nbrs = set(g.neighbors(u))
            if any(set(g.neighbors(v)) & nbrs for v in nbrs):
                triangle_nodes += 1
        assert triangle_nodes > 50

    def test_deterministic(self):
        a = coauthorship(200, seed=17)
        b = coauthorship(200, seed=17)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            coauthorship(1)
        with pytest.raises(InvalidParameterError):
            coauthorship(10, papers_per_author=0.0)
        with pytest.raises(InvalidParameterError):
            coauthorship(10, team_mean=0.5)
        with pytest.raises(InvalidParameterError):
            coauthorship(10, max_team=1)
        with pytest.raises(InvalidParameterError):
            coauthorship(10, prolific_bias=-0.1)


class TestLatticeAndSmallWorld:
    def test_ring_lattice_degrees(self):
        g = ring_lattice(20, 3)
        assert all(g.degree(u) == 6 for u in g.nodes())
        validate_graph(g)

    def test_ring_lattice_validation(self):
        with pytest.raises(InvalidParameterError):
            ring_lattice(2, 1)
        with pytest.raises(InvalidParameterError):
            ring_lattice(10, 5)

    def test_watts_strogatz_preserves_edge_count(self):
        base = ring_lattice(30, 2)
        ws = watts_strogatz(30, 2, 0.3, seed=18)
        assert ws.num_edges == base.num_edges
        validate_graph(ws)

    def test_watts_strogatz_zero_prob_is_lattice(self):
        ws = watts_strogatz(30, 2, 0.0, seed=19)
        assert sorted(ws.edges()) == sorted(ring_lattice(30, 2).edges())

    def test_watts_strogatz_rewires(self):
        ws = watts_strogatz(40, 2, 0.9, seed=20)
        assert sorted(ws.edges()) != sorted(ring_lattice(40, 2).edges())

    def test_invalid_rewire_prob(self):
        with pytest.raises(InvalidParameterError):
            watts_strogatz(20, 2, -0.1)
