"""Tests for the relational plan against the graph-side oracle."""

from __future__ import annotations

import pytest

from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.errors import PlanError
from repro.relational.engine import RelationalTopKEngine, relational_topk
from repro.relational.operators import OperatorStats
from repro.relational.planner import (
    edges_table,
    neighborhood_pairs,
    nodes_table,
    scores_table,
)
from tests.conftest import random_graph, random_scores, ref_ball, rounded


class TestBaseTables:
    def test_edges_table_undirected_has_both_arcs(self, path_graph):
        t = edges_table(path_graph)
        assert t.num_rows == 8  # 4 edges x 2 directions
        assert set(zip(t.column("src"), t.column("dst"))) == set(path_graph.arcs())

    def test_edges_table_directed(self, directed_cycle):
        t = edges_table(directed_cycle)
        assert t.num_rows == 4

    def test_nodes_and_scores_tables(self, path_graph):
        assert nodes_table(path_graph).column("node") == [0, 1, 2, 3, 4]
        st = scores_table([0.1, 0.2])
        assert st.column("score") == [0.1, 0.2]


class TestNeighborhoodPairs:
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    @pytest.mark.parametrize("include_self", [True, False])
    def test_pairs_equal_balls(self, hops, include_self):
        g = random_graph(20, 0.15, seed=101)
        stats = OperatorStats()
        pairs = neighborhood_pairs(
            edges_table(g), nodes_table(g), hops, include_self=include_self, stats=stats
        )
        got = {}
        for src, dst in zip(pairs.column("src"), pairs.column("dst")):
            got.setdefault(src, set()).add(dst)
        for u in range(20):
            expected = ref_ball(g, u, hops, include_self=include_self)
            assert got.get(u, set()) == expected, u

    def test_pairs_are_distinct(self):
        g = random_graph(15, 0.25, seed=102)
        stats = OperatorStats()
        pairs = neighborhood_pairs(
            edges_table(g), nodes_table(g), 2, include_self=True, stats=stats
        )
        rows = pairs.to_rows()
        assert len(rows) == len(set(rows))

    def test_negative_hops_rejected(self, path_graph):
        with pytest.raises(PlanError):
            neighborhood_pairs(
                edges_table(path_graph),
                nodes_table(path_graph),
                -1,
                include_self=True,
                stats=OperatorStats(),
            )


class TestRelationalTopK:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("hops", [1, 2])
    def test_matches_base(self, aggregate, hops):
        g = random_graph(30, 0.12, seed=103)
        scores = random_scores(30, seed=104)
        spec = QuerySpec(k=6, hops=hops, aggregate=aggregate)
        expected = base_topk(g, scores, spec)
        actual = relational_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_directed_matches_base(self):
        g = random_graph(25, 0.1, seed=105, directed=True)
        scores = random_scores(25, seed=106)
        spec = QuerySpec(k=5)
        expected = base_topk(g, scores, spec)
        actual = relational_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_isolated_nodes_included(self, two_components):
        scores = [0.0] * 6
        spec = QuerySpec(k=6)
        actual = relational_topk(two_components, scores, spec)
        assert len(actual) == 6

    def test_open_ball(self):
        g = random_graph(20, 0.2, seed=107)
        scores = random_scores(20, seed=108)
        spec = QuerySpec(k=5, include_self=False)
        expected = base_topk(g, scores, spec)
        actual = relational_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_max_rejected(self, path_graph):
        with pytest.raises(PlanError):
            relational_topk(path_graph, [0.1] * 5, QuerySpec(k=2, aggregate="max"))

    def test_engine_wrapper(self):
        g = random_graph(20, 0.2, seed=109)
        scores = random_scores(20, seed=110)
        engine = RelationalTopKEngine(g, scores)
        result = engine.topk(4, "sum", hops=2)
        expected = base_topk(g, scores, QuerySpec(k=4))
        assert rounded(result.values) == rounded(expected.values)
        assert result.stats.algorithm == "relational"

    def test_stats_expose_row_work(self):
        g = random_graph(20, 0.2, seed=111)
        scores = random_scores(20, seed=112)
        result = relational_topk(g, scores, QuerySpec(k=4))
        assert result.stats.extra["rows_scanned"] > 0
        assert result.stats.extra["join_probes"] > 0

    def test_two_hop_join_blowup_visible(self):
        """The 2-hop plan materializes more rows than the 1-hop plan —
        the paper's 'gigantic self-join' claim, measured."""
        g = random_graph(25, 0.2, seed=113)
        scores = random_scores(25, seed=114)
        one = relational_topk(g, scores, QuerySpec(k=3, hops=1))
        two = relational_topk(g, scores, QuerySpec(k=3, hops=2))
        assert (
            two.stats.extra["rows_scanned"] > one.stats.extra["rows_scanned"]
        )
