"""Tests for LONA-Backward: correctness, gamma policy, shortcut paths."""

from __future__ import annotations

import pytest

from repro.core.backward import backward_topk, resolve_gamma
from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError
from repro.graph.generators import powerlaw_cluster
from repro.graph.neighborhood import NeighborhoodSizeIndex
from repro.relevance import BinaryRelevance
from tests.conftest import random_graph, random_scores, rounded


class TestGammaResolution:
    def test_float_passthrough(self):
        assert resolve_gamma(0.4, [0.9, 0.5, 0.1]) == 0.4

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_gamma(-0.1, [0.5])

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_gamma("magic", [0.5])

    def test_auto_picks_fraction_depth(self):
        ordered = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05]
        assert resolve_gamma("auto", ordered, distribution_fraction=0.3) == 0.7

    def test_auto_binary_distributes_everything(self):
        assert resolve_gamma("auto", [1.0] * 40) == 1.0

    def test_auto_empty_scores(self):
        assert resolve_gamma("auto", []) == 1.0

    def test_auto_bad_fraction(self):
        with pytest.raises(InvalidParameterError):
            resolve_gamma("auto", [0.5], distribution_fraction=0.0)


class TestAgreementWithBase:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("hops", [1, 2])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_random_graph_agreement(self, aggregate, hops, k):
        g = random_graph(45, 0.1, seed=51)
        scores = random_scores(45, seed=52)
        spec = QuerySpec(k=k, hops=hops, aggregate=aggregate)
        expected = base_topk(g, scores, spec)
        actual = backward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    @pytest.mark.parametrize("gamma", [0.0, 0.2, 0.5, 0.9, 1.0, "auto"])
    def test_any_gamma_is_correct(self, gamma, medium_graph):
        scores = random_scores(60, seed=53)
        spec = QuerySpec(k=6)
        expected = base_topk(medium_graph, scores, spec)
        actual = backward_topk(medium_graph, scores, spec, gamma=gamma)
        assert rounded(actual.values) == rounded(expected.values)

    def test_gamma_above_max_score_degenerates_to_scan(self, medium_graph):
        scores = random_scores(60, seed=54)
        spec = QuerySpec(k=6)
        expected = base_topk(medium_graph, scores, spec)
        actual = backward_topk(medium_graph, scores, spec, gamma=5.0)
        assert rounded(actual.values) == rounded(expected.values)
        assert actual.stats.extra["distributed_nodes"] == 0.0

    def test_exact_sizes_index(self, medium_graph):
        scores = random_scores(60, seed=55)
        sizes = NeighborhoodSizeIndex.exact(medium_graph, 2)
        spec = QuerySpec(k=6)
        expected = base_topk(medium_graph, scores, spec)
        actual = backward_topk(medium_graph, scores, spec, sizes=sizes)
        assert rounded(actual.values) == rounded(expected.values)

    def test_directed_graph_agreement(self):
        g = random_graph(35, 0.08, seed=56, directed=True)
        scores = random_scores(35, seed=57)
        spec = QuerySpec(k=5)
        expected = base_topk(g, scores, spec)
        actual = backward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_directed_avg_agreement(self):
        g = random_graph(30, 0.1, seed=58, directed=True)
        scores = random_scores(30, seed=59)
        spec = QuerySpec(k=5, aggregate="avg")
        expected = base_topk(g, scores, spec)
        actual = backward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_open_ball_agreement(self):
        g = random_graph(35, 0.12, seed=60)
        scores = random_scores(35, seed=61)
        spec = QuerySpec(k=6, include_self=False)
        expected = base_topk(g, scores, spec)
        actual = backward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_all_zero_scores(self, medium_graph):
        result = backward_topk(medium_graph, [0.0] * 60, QuerySpec(k=4))
        assert result.values == [0.0] * 4


class TestShortcutAndStats:
    def test_binary_uses_exact_shortcut(self):
        g = powerlaw_cluster(300, 3, 0.5, seed=62)
        scores = BinaryRelevance(0.05, seed=63).scores(g).values()
        sizes = NeighborhoodSizeIndex.exact(g, 2)
        result = backward_topk(g, scores, QuerySpec(k=10), sizes=sizes)
        assert result.stats.extra["exact_shortcut"] == 1.0
        assert result.stats.candidates_verified == 0
        expected = base_topk(g, scores, QuerySpec(k=10))
        assert rounded(result.values) == rounded(expected.values)

    def test_binary_avg_shortcut_needs_exact_sizes(self):
        g = powerlaw_cluster(200, 3, 0.5, seed=64)
        scores = BinaryRelevance(0.05, seed=65).scores(g).values()
        spec = QuerySpec(k=5, aggregate="avg")
        # Index-free: estimated sizes cannot shortcut AVG, must verify.
        indexfree = backward_topk(g, scores, spec)
        assert indexfree.stats.extra["exact_shortcut"] == 0.0
        exact = backward_topk(
            g, scores, spec, sizes=NeighborhoodSizeIndex.exact(g, 2)
        )
        assert exact.stats.extra["exact_shortcut"] == 1.0
        assert rounded(indexfree.values) == rounded(exact.values)

    def test_continuous_scores_verify_candidates(self, medium_graph):
        scores = random_scores(60, seed=66)
        result = backward_topk(medium_graph, scores, QuerySpec(k=5))
        assert result.stats.extra["exact_shortcut"] == 0.0
        assert result.stats.candidates_verified >= 5

    def test_distribution_stats(self, medium_graph):
        scores = random_scores(60, seed=67)
        result = backward_topk(
            medium_graph, scores, QuerySpec(k=5), gamma=0.5
        )
        stats = result.stats
        assert stats.algorithm == "backward"
        assert stats.extra["gamma"] == 0.5
        assert stats.distribution_pushes > 0
        assert stats.bound_evaluations == 60

    def test_early_termination_flag_on_sparse(self):
        g = powerlaw_cluster(300, 3, 0.5, seed=68)
        scores = BinaryRelevance(0.02, seed=69).scores(g).values()
        result = backward_topk(
            g, scores, QuerySpec(k=3), sizes=NeighborhoodSizeIndex.exact(g, 2)
        )
        assert result.stats.early_terminated
        assert result.stats.pruned_nodes > 0

    def test_max_min_rejected(self, medium_graph):
        with pytest.raises(InvalidParameterError):
            backward_topk(medium_graph, [0.1] * 60, QuerySpec(k=2, aggregate="min"))
