"""Process-parallel backend: parity, shared-memory lifecycle, resilience.

The contract mirrors the numpy backend's (``tests/test_backend_parity.py``):
``backend="parallel"`` must return entry-for-entry the numpy answer on
every route it covers — base (all aggregates), forward, backward, weighted,
filtered, batch — while actually running the work in worker processes over
shared-memory CSR shards.  Beyond parity, this module pins the
shared-memory lifecycle: export/attach round-trips, version-stamp
invalidation after dynamic mutations, unlink on ``Network.close``, and
worker-crash recovery.

The graphs here are far below the engine's production ``min_nodes`` floor,
so every fixture forces the process path with ``min_nodes=0``; the decline
rule itself is tested explicitly.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.backends import BACKENDS
from repro.core.request import QueryRequest
from repro.errors import InvalidParameterError, ParallelError
from repro.graph.csr import (
    AttachedArray,
    AttachedCSR,
    SharedArray,
    SharedCSR,
    to_csr,
)
from repro.graph.graph import Graph
from repro.parallel.merge import merge_shard_entries
from repro.parallel.pool import ShardWorkerPool
from repro.parallel.shards import build_shard_plan
from repro.session import Network
from tests.conftest import random_graph

np = pytest.importorskip("numpy")

#: Worker-process count for the test pools; the CI parallel-smoke job
#: raises it to 4 on multi-core runners.
WORKERS = int(os.environ.get("REPRO_PARALLEL_TEST_WORKERS", "2"))


def _entries(result):
    return [(node, round(value, 9)) for node, value in result.entries]


def _dense_scores(n, seed):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]

def _sparse_scores(n, seed, nonzero=0.03):
    rng = random.Random(seed)
    values = [0.0] * n
    for u in rng.sample(range(n), max(1, int(nonzero * n))):
        values[u] = rng.random()
    return values


@pytest.fixture(scope="module")
def parallel_net():
    g = random_graph(400, 0.015, seed=42)
    net = Network(g, hops=2)
    net.add_scores("dense", _dense_scores(400, 1))
    net.add_scores("sparse", _sparse_scores(400, 2))
    net.add_scores("binary", [1.0 if u % 9 == 0 else 0.0 for u in range(400)])
    net.parallel(workers=WORKERS, min_nodes=0)
    yield net
    net.close()


class TestBackendRegistration:
    def test_parallel_is_a_backend(self):
        assert "parallel" in BACKENDS

    def test_request_accepts_parallel(self):
        request = QueryRequest(k=3, backend="parallel")
        assert request.spec().backend == "parallel"


class TestScanParity:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count", "max", "min"])
    def test_base_all_aggregates(self, parallel_net, aggregate):
        run = lambda backend: (  # noqa: E731
            parallel_net.query("dense")
            .limit(10)
            .aggregate(aggregate)
            .algorithm("base")
            .backend(backend)
            .run()
        )
        par, ref = run("parallel"), run("numpy")
        assert _entries(par) == _entries(ref)
        assert par.stats.backend == "parallel"
        assert par.stats.extra["shards"] == float(WORKERS)

    def test_forward(self, parallel_net):
        par = (
            parallel_net.query("dense").limit(8)
            .algorithm("forward").backend("parallel").run()
        )
        ref = (
            parallel_net.query("dense").limit(8)
            .algorithm("forward").backend("numpy").run()
        )
        assert _entries(par) == _entries(ref)
        # The sharded forward scan prunes on static bounds per shard.
        assert par.stats.algorithm == "forward"

    def test_forward_max_raises_like_every_backend(self, parallel_net):
        # Validation must not depend on the backend (or on whether the
        # engine declines): forward + MAX raises the canonical error.
        for backend in ("numpy", "parallel"):
            with pytest.raises(InvalidParameterError, match="LONA-Forward"):
                (
                    parallel_net.query("dense").limit(5).aggregate("max")
                    .algorithm("forward").backend(backend).run()
                )

    @pytest.mark.parametrize("score", ["sparse", "dense"])
    def test_backward(self, parallel_net, score):
        par = (
            parallel_net.query(score).limit(7)
            .algorithm("backward").backend("parallel").run()
        )
        ref = (
            parallel_net.query(score).limit(7)
            .algorithm("backward").backend("numpy").run()
        )
        assert _entries(par) == _entries(ref)
        assert par.stats.backend == "parallel"
        assert par.stats.extra["gamma"] == ref.stats.extra["gamma"]
        assert par.stats.extra["rest_bound"] == ref.stats.extra["rest_bound"]

    def test_backward_binary_shortcut_declines(self, parallel_net):
        # Binary scores fully distribute (auto-gamma 1.0, rest_bound 0):
        # the exact-shortcut regime's answers are order-sensitive partial
        # sums, so the engine declines it to keep entries bit-identical —
        # and there is no verification work to parallelize there anyway.
        par = (
            parallel_net.query("binary").limit(7)
            .algorithm("backward").backend("parallel").run()
        )
        ref = (
            parallel_net.query("binary").limit(7)
            .algorithm("backward").backend("numpy").run()
        )
        assert _entries(par) == _entries(ref)
        assert par.stats.backend == "numpy"  # declined to in-process
        assert par.stats.extra["exact_shortcut"] == 1.0

    def test_backward_avg(self, parallel_net):
        par = (
            parallel_net.query("sparse").limit(5).aggregate("avg")
            .algorithm("backward").backend("parallel").run()
        )
        ref = (
            parallel_net.query("sparse").limit(5).aggregate("avg")
            .algorithm("backward").backend("numpy").run()
        )
        assert _entries(par) == _entries(ref)

    def test_filtered_where(self, parallel_net):
        candidates = tuple(range(0, 400, 3))
        par = (
            parallel_net.query("dense").limit(6)
            .where(candidates).backend("parallel").run()
        )
        ref = (
            parallel_net.query("dense").limit(6)
            .where(candidates).backend("numpy").run()
        )
        assert _entries(par) == _entries(ref)
        assert par.stats.extra["candidates"] == float(len(candidates))

    def test_weighted(self, parallel_net):
        from repro.core import executor

        spec_par = QueryRequest(k=6, backend="parallel").spec()
        spec_ref = QueryRequest(k=6, backend="numpy").spec()
        par = executor.execute_weighted(
            parallel_net._ctx, parallel_net.scores_of("dense"), spec_par
        )
        ref = executor.execute_weighted(
            parallel_net._ctx, parallel_net.scores_of("dense"), spec_ref
        )
        assert _entries(par) == _entries(ref)
        assert par.stats.backend == "parallel"

    def test_weighted_with_tuned_gamma_stays_in_process(self, parallel_net):
        # The sharded weighted route is an exact scan; a tuned distribution
        # knob must reach the kernel that honors it.
        from repro.core import executor

        spec = QueryRequest(k=6, backend="parallel").spec()
        result = executor.execute_weighted(
            parallel_net._ctx,
            parallel_net.scores_of("dense"),
            spec,
            None,
            "backward",
            {"gamma": 0.5},
        )
        assert result.stats.backend == "numpy"

    def test_batch_coalesced_parity(self, parallel_net):
        from repro.core.batch import BatchQuery

        queries = [
            BatchQuery(scores=parallel_net.scores_of("dense"), k=6),
            BatchQuery(
                scores=parallel_net.scores_of("dense"), k=4, aggregate="avg"
            ),
        ]
        par = parallel_net._run_batch(queries, backend="parallel")
        ref = parallel_net._run_batch(queries, backend="numpy")
        for p, r in zip(par, ref):
            assert _entries(p) == _entries(r)
        assert par[0].stats.backend == "parallel"
        assert par[0].stats.extra["batch_size"] == 2.0

    def test_batch_wider_than_score_export_lru(self, parallel_net):
        # Regression, two layers: (1) a fused batch with more distinct
        # score vectors than the engine's score-export LRU evicted — and
        # unlinked — segments that earlier tasks of the *same* round still
        # referenced (round crashed with ParallelError); (2) wider than the
        # *worker's* attachment cache, eviction unmapped buffers under the
        # running kernel's live numpy views (worker segfault).  Engine
        # evictions defer their unlink until the round returns; worker
        # evictions defer their unmap until between tasks.
        from repro.core.batch import BatchQuery
        from repro.parallel.engine import _SCORE_EXPORT_LIMIT
        from repro.parallel.worker import _ATTACH_CACHE_LIMIT
        from repro.relevance.base import ScoreVector

        width = max(_SCORE_EXPORT_LIMIT, _ATTACH_CACHE_LIMIT) + 4
        vectors = [
            ScoreVector(_dense_scores(400, 100 + i)) for i in range(width)
        ]
        queries = [BatchQuery(scores=v, k=3) for v in vectors]
        par = parallel_net._run_batch(queries, backend="parallel")
        ref = parallel_net._run_batch(queries, backend="numpy")
        assert len(par) == width
        for p, r in zip(par, ref):
            assert _entries(p) == _entries(r)

    def test_directed_graph_backward(self):
        rng = random.Random(5)
        edges = {(rng.randrange(120), rng.randrange(120)) for _ in range(400)}
        g = Graph.from_edges(
            sorted((u, v) for u, v in edges if u != v),
            num_nodes=120,
            directed=True,
        )
        net = Network(g, hops=2)
        net.add_scores("s", _sparse_scores(120, 9))
        net.parallel(workers=WORKERS, min_nodes=0)
        try:
            par = (
                net.query("s").limit(5)
                .algorithm("backward").backend("parallel").run()
            )
            ref = (
                net.query("s").limit(5)
                .algorithm("backward").backend("numpy").run()
            )
            assert _entries(par) == _entries(ref)
        finally:
            net.close()


class TestSharedMemoryLifecycle:
    def test_shared_array_roundtrip(self):
        source = np.asarray([3, 1, 4, 1, 5], dtype=np.int64)
        export = SharedArray.create(source)
        try:
            view = AttachedArray.attach(export.meta())
            assert view.array.tolist() == source.tolist()
            view.close()
        finally:
            export.unlink()
            export.close()

    def test_shared_array_empty(self):
        export = SharedArray.create(np.empty(0, dtype=np.float64))
        try:
            view = AttachedArray.attach(export.meta())
            assert view.array.size == 0
            view.close()
        finally:
            export.unlink()
            export.close()

    def test_shared_csr_roundtrip_and_stamp(self):
        g = random_graph(60, 0.05, seed=3)
        csr = to_csr(g, use_numpy=True)
        export = SharedCSR.export(csr, version=7)
        try:
            attached = AttachedCSR.attach(export.meta())
            assert attached.version == 7
            assert attached.fresh()
            assert attached.csr.num_nodes == csr.num_nodes
            assert attached.csr.indices.tolist() == csr.indices.tolist()
            export.mark_stale()
            assert not attached.fresh()
            attached.close()
        finally:
            export.unlink()
            export.close()

    def test_close_unlinks_segments(self):
        g = random_graph(150, 0.03, seed=8)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(150, 4))
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        net.query("s").limit(3).backend("parallel").run()
        meta = engine._csr_export.meta()
        net.close()
        assert engine.closed
        with pytest.raises(FileNotFoundError):
            AttachedCSR.attach(meta)

    def test_version_stamp_invalidation_after_add_edge(self):
        from repro.dynamic.graph import DynamicGraph

        g = DynamicGraph.from_graph(random_graph(200, 0.02, seed=12))
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(200, 5))
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        try:
            first = net.query("s").limit(5).backend("parallel").run()
            # Attach to the live export the way a worker does; the mapping
            # stays valid across the owner's unlink.
            attached = AttachedCSR.attach(engine._csr_export.meta())
            assert attached.fresh()
            old_version = engine.stats()["export_version"]
            net.add_edge(0, 199)
            par = net.query("s").limit(5).backend("parallel").run()
            # The engine noticed the version move on the next query and
            # stamped the old export stale (before unlinking), so a worker
            # still attached to it refuses to serve from it.
            assert not attached.fresh()
            attached.close()
            ref = net.query("s").limit(5).backend("numpy").run()
            assert _entries(par) == _entries(ref)
            assert engine.stats()["export_version"] != old_version
            assert first.entries  # sanity: pre-mutation answer existed
        finally:
            net.close()

    def test_score_export_refreshes_after_update_score(self):
        from repro.dynamic.graph import DynamicGraph

        g = DynamicGraph.from_graph(random_graph(200, 0.02, seed=13))
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(200, 6))
        net.parallel(workers=WORKERS, min_nodes=0)
        try:
            probe = lambda: (  # noqa: E731 - F(7) includes f(7) itself
                net.query("s").limit(1).where([7]).backend("parallel").run()
            )
            before = probe()
            net.update_score("s", 7, 1.0)
            par = net.query("s").limit(5).backend("parallel").run()
            ref = net.query("s").limit(5).backend("numpy").run()
            assert _entries(par) == _entries(ref)
            # The mutated score actually flowed into the workers' view:
            # node 7's own aggregate includes f(7), which just changed.
            after = probe()
            assert _entries(after) != _entries(before)
        finally:
            net.close()


class TestResilience:
    def test_worker_crash_recovers(self, parallel_net):
        engine = parallel_net.parallel()
        parallel_net.query("dense").limit(3).backend("parallel").run()
        pool = engine._resources["pool"]
        assert pool is not None and pool.started
        # Kill one worker out from under the pool; the next round must
        # respawn and still answer exactly.
        victim = pool._members[0].process
        victim.terminate()
        victim.join(timeout=5)
        par = parallel_net.query("dense").limit(3).backend("parallel").run()
        ref = parallel_net.query("dense").limit(3).backend("numpy").run()
        assert _entries(par) == _entries(ref)
        assert pool.alive_workers == WORKERS

    def test_pool_rejects_bad_sizes(self):
        with pytest.raises(ParallelError):
            ShardWorkerPool(0)

    def test_closed_pool_rejects_work(self):
        pool = ShardWorkerPool(1)
        pool.close()
        with pytest.raises(ParallelError):
            pool.run([{"kind": "scan"}])

    def test_queries_and_invalidation_do_not_deadlock(self):
        # Regression: parallel queries take engine-lock -> ctx-lock;
        # context invalidation/close must never take ctx-lock -> engine-lock
        # (ABBA).  Hammer both sides concurrently and require completion.
        import threading

        g = random_graph(200, 0.03, seed=22)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(200, 14))
        net.parallel(workers=WORKERS, min_nodes=0)
        errors = []

        def query_loop():
            try:
                for _ in range(10):
                    net.query("s").limit(3).backend("parallel").run()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        thread = threading.Thread(target=query_loop, daemon=True)
        thread.start()
        try:
            for _ in range(50):
                net._ctx.invalidate()
            thread.join(timeout=60)
            assert not thread.is_alive(), "query/invalidate deadlocked"
            assert not errors, errors
        finally:
            net.close()

    def test_engine_close_is_idempotent(self):
        g = random_graph(80, 0.04, seed=21)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(80, 7))
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        net.close()
        net.close()
        assert engine.closed


class TestDeclineRule:
    def test_small_graph_declines_to_numpy(self):
        g = random_graph(100, 0.04, seed=30)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(100, 8))
        engine = net.parallel(workers=WORKERS)  # default min_nodes floor
        try:
            result = net.query("s").limit(4).backend("parallel").run()
            ref = net.query("s").limit(4).backend("numpy").run()
            assert _entries(result) == _entries(ref)
            # Declined: ran in-process, no worker pool was ever spawned.
            assert result.stats.backend == "numpy"
            assert engine.stats()["declined"] >= 1
            assert not engine.stats()["pool_started"]
        finally:
            net.close()

    def test_single_worker_declines(self):
        g = random_graph(100, 0.04, seed=31)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(100, 9))
        net.parallel(workers=1, min_nodes=0)
        try:
            result = net.query("s").limit(4).backend("parallel").run()
            assert result.stats.backend == "numpy"
        finally:
            net.close()

    def test_planner_charges_parallel_fixed_cost(self):
        from repro.core.planner import BACKEND_FIXED_COSTS, QueryPlanner
        from repro.core.query import QuerySpec

        g = random_graph(120, 0.03, seed=32)
        scores = _dense_scores(120, 10)
        par = QueryPlanner(g, scores, hops=2, backend="parallel").plan(
            QuerySpec(k=5)
        )
        ref = QueryPlanner(g, scores, hops=2, backend="numpy").plan(
            QuerySpec(k=5)
        )
        fixed = BACKEND_FIXED_COSTS["parallel"]
        assert fixed > 0
        for algorithm in ("base", "backward"):
            assert par.estimate_for(algorithm).fixed_cost == fixed
            assert ref.estimate_for(algorithm).fixed_cost == 0.0
        # On a tiny graph the fixed cost dominates: every parallel estimate
        # is costlier than its numpy twin, which is exactly why the engine
        # declines such graphs at runtime.
        assert (
            par.estimate_for("base").total_amortized()
            > ref.estimate_for("base").total_amortized()
        )
        assert "sharded multi-process" in par.explain()


class TestServiceProcessMode:
    def test_service_runs_queries_on_parallel_backend(self):
        g = random_graph(300, 0.02, seed=40)
        net = Network(g, hops=2)
        net.add_scores("a", _dense_scores(300, 11))
        net.add_scores("b", _dense_scores(300, 12))
        net.parallel(workers=WORKERS, min_nodes=0)
        try:
            net.service(workers=2, processes=True)
            handles = [
                net.query(s).limit(5).submit(cached=False)
                for s in ("a", "b", "a", "b")
            ]
            results = [h.result(timeout=120) for h in handles]
            backends = {r.stats.backend for r in results}
            assert backends <= {"parallel"}
            refs = [
                net.query(s).limit(5).backend("numpy").run()
                for s in ("a", "b", "a", "b")
            ]
            for got, ref in zip(results, refs):
                assert _entries(got) == _entries(ref)
        finally:
            net.close()

    def test_pinned_backend_survives_process_mode(self):
        g = random_graph(300, 0.02, seed=41)
        net = Network(g, hops=2)
        net.add_scores("a", _dense_scores(300, 13))
        net.parallel(workers=WORKERS, min_nodes=0)
        try:
            net.service(workers=2, processes=True)
            result = (
                net.query("a").limit(5).backend("numpy")
                .submit(cached=False).result(timeout=120)
            )
            assert result.stats.backend == "numpy"
        finally:
            net.close()


class TestShardPlanAndMerge:
    def test_shard_plan_covers_every_node_once(self):
        g = random_graph(200, 0.03, seed=50)
        plan = build_shard_plan(g, 3)
        seen = np.concatenate(plan.owned)
        assert sorted(seen.tolist()) == list(range(200))
        assert plan.num_shards == 3
        assert sum(plan.sizes()) == 200

    def test_shard_plan_validates(self):
        g = random_graph(20, 0.1, seed=51)
        with pytest.raises(InvalidParameterError):
            build_shard_plan(g, 0)
        with pytest.raises(InvalidParameterError):
            build_shard_plan(g, 2, partitioner="metis")

    def test_merge_resolves_ties_by_node_id(self):
        merged = merge_shard_entries(
            [[(5, 1.0), (9, 0.5)], [(2, 1.0), (7, 0.5)]], 3
        )
        assert merged == [(2, 1.0), (5, 1.0), (7, 0.5)]

    def test_partition_members_index_cached(self):
        from repro.distributed.partition import Partition

        partition = Partition([0, 1, 0, 1, 0], 2)
        first = partition.members(0)
        assert first == [0, 2, 4]
        assert partition.members(0) is first  # served from the index
        assert partition.members(1) == [1, 3]
        arr = partition.as_array()
        assert arr is not None and arr.tolist() == [0, 1, 0, 1, 0]
        assert partition.as_array() is arr
