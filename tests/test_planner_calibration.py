"""Planner calibration: ``planned`` must agree with measured reality.

``BACKEND_COST_FACTORS`` is calibrated from a fresh
``benchmarks/bench_backend_coverage.py`` run (see the committed baseline
``benchmarks/BENCH_backend_coverage.json``).  These tests pin the *outcome*
of that calibration on the two canonical workloads — the fig1
collaboration-like and fig2 citation-like graphs with the paper's mixture
relevance — where the measured numpy route timings rank backward well
ahead of base and forward (sparse mixture scores; backward's cost tracks
the non-zero count).  A kernel change that shifts the measured ordering
should re-run the bench, update the factors, and then update these pins in
the same commit.

Timing inside a unit test would be flaky on shared runners, so the tests
assert the planner's *choice*, which is a pure function of the factors and
the workload statistics.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import figure
from repro.core.planner import (
    BACKEND_COST_FACTORS,
    BACKEND_FIXED_COSTS,
    QueryPlanner,
)
from repro.core.query import QuerySpec

pytest.importorskip("numpy")

#: Route measured fastest under numpy on both canonical workloads
#: (benchmarks/BENCH_backend_coverage.json: backward 6.1x over python vs
#: base 4.2x / forward 3.7x, and absolute numpy timings ~20x apart).
MEASURED_FASTEST = "backward"


@pytest.fixture(scope="module", params=["fig1", "fig2"])
def workload(request):
    spec = figure(request.param)
    graph = spec.build_graph(0.5)
    scores = spec.build_scores(graph).values()
    return request.param, spec, graph, scores


def test_planned_picks_measured_fastest_route(workload) -> None:
    _fig, spec, graph, scores = workload
    planner = QueryPlanner(
        graph,
        scores,
        hops=spec.hops,
        index_available=True,
        backend="numpy",
    )
    plan = planner.plan(QuerySpec(k=100, hops=spec.hops))
    assert plan.chosen == MEASURED_FASTEST


def test_parallel_plan_keeps_the_same_route_ordering(workload) -> None:
    # The parallel factors are the numpy factors scaled by nominal worker
    # parallelism; they must not reorder the canonical workloads' routes.
    _fig, spec, graph, scores = workload
    plan = QueryPlanner(
        graph,
        scores,
        hops=spec.hops,
        index_available=True,
        backend="parallel",
    ).plan(QuerySpec(k=100, hops=spec.hops))
    assert plan.chosen == MEASURED_FASTEST


def test_native_plan_keeps_the_same_route_ordering(workload, monkeypatch) -> None:
    # The native factors discount every route below numpy's without
    # reordering the canonical workloads.  The interpreted escape hatch
    # makes the tier resolvable on runners without numba; plan choice is a
    # pure function of the factor tables either way.
    monkeypatch.setenv("REPRO_NATIVE_INTERPRETED", "1")
    _fig, spec, graph, scores = workload
    plan = QueryPlanner(
        graph,
        scores,
        hops=spec.hops,
        index_available=True,
        backend="native",
    ).plan(QuerySpec(k=100, hops=spec.hops))
    assert plan.chosen == MEASURED_FASTEST


def test_factor_tables_cover_every_backend_and_route() -> None:
    for backend in ("python", "numpy", "native", "parallel"):
        assert set(BACKEND_COST_FACTORS[backend]) == {
            "base",
            "forward",
            "backward",
        }
        assert backend in BACKEND_FIXED_COSTS
    # Calibration sanity: vectorized execution is a discount, never a
    # markup, and parallel discounts at least as deeply per expansion.
    for route in ("base", "forward", "backward"):
        assert 0 < BACKEND_COST_FACTORS["numpy"][route] < 1
        assert (
            0
            < BACKEND_COST_FACTORS["parallel"][route]
            < BACKEND_COST_FACTORS["numpy"][route]
        )
        # The compiled tier beats numpy per expansion too (bench_native.py:
        # jitted stamp-BFS vs the slab-gather numpy kernels).
        assert (
            0
            < BACKEND_COST_FACTORS["native"][route]
            < BACKEND_COST_FACTORS["numpy"][route]
        )


def test_fixed_costs_rank_process_tiers() -> None:
    # Warm-tier fixed costs: in-process backends pay none (native's jit
    # compile is once-per-machine via the on-disk cache, not per query);
    # the process pool pays spawn/IPC; the socket cluster pays more.
    assert BACKEND_FIXED_COSTS["python"] == 0.0
    assert BACKEND_FIXED_COSTS["numpy"] == 0.0
    assert BACKEND_FIXED_COSTS["native"] == 0.0
    assert 0 < BACKEND_FIXED_COSTS["parallel"] < BACKEND_FIXED_COSTS["cluster"]
