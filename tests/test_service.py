"""The concurrent serving surface: handles, scheduler, coalescing, cache.

Covers the :mod:`repro.service` package end to end through the session
front door — handle lifecycle (result/cancel/timeout/deadline), admission
control, scan coalescing parity against sequential ``.run()``, the
graph-version-keyed result cache and its invalidation on mutations, the
set-fields mask on ``QueryRequest``, and the bounded session ball caches.

Score vectors here are quantized (0 / 0.25 / 0.5 / 1 multiples), so every
aggregate is an exact dyadic float and reduction order cannot produce
last-ULP drift: coalesced, cached, and sequential answers must be
*entry-for-entry identical*, not merely approximately equal.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core.request import QueryRequest
from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    QueryCancelledError,
    ServiceOverloadedError,
    ServiceShutdownError,
)
from repro.relevance.base import ScoreVector
from repro.service import QueryHandle, ResultCache
from repro.session import Network
from tests.conftest import random_graph


def quantized_scores(n: int, seed: int, *, density: float = 0.6):
    """Dyadic scores: sums are exact floats in any summation order."""
    rng = random.Random(seed)
    levels = (0.25, 0.5, 0.75, 1.0)
    return ScoreVector(
        [rng.choice(levels) if rng.random() < density else 0.0 for _ in range(n)]
    )


def hold_worker(net):
    """Occupy one worker with a query that blocks until the event is set.

    Patches the session's ``_run`` (instance attribute shadowing) so a
    sentinel score name parks inside execution; returns ``(release_event,
    blocker_handle)``.  Everything else executes unchanged.
    """
    release = threading.Event()
    real_run = net._run

    def slow_run(request, _real=real_run, _release=release):
        if request.score == "__slow__":
            _release.wait(10)
        return _real(request)

    net._run = slow_run
    if "__slow__" not in net.score_names():
        net.add_scores("__slow__", [0.5] * net.graph.num_nodes)
    blocker = net.query("__slow__").limit(2).submit(cached=False)
    deadline = time.monotonic() + 5
    while not blocker.running() and time.monotonic() < deadline:
        time.sleep(0.001)
    assert blocker.running(), "blocker never started"
    return release, blocker


@pytest.fixture
def net():
    graph = random_graph(70, 0.07, seed=31)
    session = Network(graph, hops=2)
    session.add_scores("a", quantized_scores(70, seed=1))
    session.add_scores("b", quantized_scores(70, seed=2))
    session.add_scores("c", quantized_scores(70, seed=3, density=0.9))
    yield session
    if session._service is not None:
        session._service.shutdown(wait=True)


@pytest.fixture
def dyn_net():
    from repro.dynamic.graph import DynamicGraph

    graph = DynamicGraph.from_graph(random_graph(50, 0.08, seed=77))
    session = Network(graph, hops=2)
    session.add_scores("a", quantized_scores(50, seed=5))
    yield session
    if session._service is not None:
        session._service.shutdown(wait=True)


# ---------------------------------------------------------------------------
# Handle lifecycle
# ---------------------------------------------------------------------------
class TestHandles:
    def test_submit_returns_done_result(self, net):
        handle = net.query("a").limit(5).submit()
        result = handle.result(timeout=10)
        assert handle.done() and handle.state == "done"
        assert result.entries == net.query("a").limit(5).run().entries

    def test_run_is_submit_result_shim(self, net):
        # .run() flows through the same service (counted as a submission)
        # but bypasses the result cache: every run executes.
        before = net.service().stats()["submitted"]
        first = net.query("a").limit(4).run()
        second = net.query("a").limit(4).run()
        stats = net.service().stats()
        assert stats["submitted"] == before + 2
        assert first.entries == second.entries
        assert "result_cache" not in second.stats.extra

    def test_result_timeout_raises_builtin_timeout(self, net):
        net.service(workers=1)
        release, blocker = hold_worker(net)
        with pytest.raises(TimeoutError):
            blocker.result(timeout=0.01)
        release.set()
        assert len(blocker.result(timeout=10).entries) == 2

    def test_cancel_pending(self, net):
        service = net.service(workers=1)
        release, blocker = hold_worker(net)
        queued = net.query("b").limit(3).submit()
        assert queued.cancel() is True
        assert queued.cancelled() and queued.state == "cancelled"
        with pytest.raises(QueryCancelledError):
            queued.result(timeout=1)
        release.set()
        blocker.result(timeout=10)
        service.drain(timeout=10)
        assert service.stats()["cancelled"] == 1

    def test_cancel_completed_is_false(self, net):
        handle = net.query("a").limit(3).submit()
        handle.result(timeout=10)
        assert handle.cancel() is False

    def test_deadline_expires_queued_query(self, net):
        service = net.service(workers=1)
        release, blocker = hold_worker(net)
        late = net.query("b").limit(3).submit(deadline=0.02)
        with pytest.raises(DeadlineExceededError):
            late.result(timeout=5)
        assert late.state == "expired" and late.cancelled()
        release.set()
        blocker.result(timeout=10)
        assert service.stats()["expired"] == 1

    def test_deadline_from_builder_knob(self, net):
        request = net.query("a").limit(3).deadline(2.5).priority(7).request()
        assert request.deadline == 2.5 and request.priority == 7
        # Serving metadata never splits cache keys or equality.
        assert request == net.query("a").limit(3).request()
        assert hash(request) == hash(net.query("a").limit(3).request())

    def test_invalid_deadline_rejected(self, net):
        with pytest.raises(InvalidParameterError):
            net.query("a").limit(3).deadline(-1.0).request()
        with pytest.raises(InvalidParameterError):
            net.query("a").limit(3).submit(deadline=0.0)

    def test_done_callback_fires(self, net):
        seen = []
        handle = net.query("a").limit(3).submit()
        handle.result(timeout=10)
        handle.add_done_callback(lambda h: seen.append(h.state))
        assert seen == ["done"]

    def test_failure_propagates_original_error(self, net):
        # An executor-level validation error surfaces from result() with
        # its type intact (here: knob inapplicable to the algorithm).
        handle = net.query("a").limit(3).algorithm("base").gamma(0.5).submit()
        with pytest.raises(InvalidParameterError, match="gamma"):
            handle.result(timeout=10)
        assert handle.state == "failed"
        assert isinstance(handle.exception(), InvalidParameterError)

    def test_streaming_subscription(self, net):
        handle = net.query("a").limit(4).submit(stream=True)
        updates = list(handle.updates(timeout=10))
        assert updates, "stream produced no refinements"
        assert updates[-1].done
        expected = net.query("a").limit(4).run()
        assert list(updates[-1].entries) == expected.entries
        assert handle.result(timeout=10).entries == expected.entries

    def test_updates_requires_stream_submission(self, net):
        handle = net.query("a").limit(3).submit()
        handle.result(timeout=10)
        with pytest.raises(QueryCancelledError, match="stream=True"):
            next(handle.updates())

    def test_stream_validation_is_eager(self, net):
        with pytest.raises(InvalidParameterError, match="stream"):
            net.query("a").limit(3).algorithm("backward").submit(stream=True)


# ---------------------------------------------------------------------------
# Scheduler: priority, admission, coalescing
# ---------------------------------------------------------------------------
class TestScheduler:
    def test_priority_orders_queue(self, net):
        service = net.service(workers=1, coalesce=False)
        order = []
        release, blocker = hold_worker(net)
        low = net.query("a").limit(2).submit(priority=0, cached=False)
        high = net.query("b").limit(2).submit(priority=10, cached=False)
        low.add_done_callback(lambda h: order.append("low"))
        high.add_done_callback(lambda h: order.append("high"))
        release.set()
        blocker.result(timeout=10)
        assert service.drain(timeout=10)
        assert order == ["high", "low"]

    def test_admission_control_rejects_over_queue_bound(self, net):
        service = net.service(workers=1, max_pending=2, coalesce=False)
        release, blocker = hold_worker(net)
        held = [net.query("b").limit(2).submit(cached=False) for _ in range(2)]
        with pytest.raises(ServiceOverloadedError):
            net.query("c").limit(2).submit()
        assert service.stats()["rejected"] == 1
        release.set()
        blocker.result(timeout=10)
        for handle in held:
            handle.result(timeout=10)

    def test_submit_after_shutdown_raises(self, net):
        service = net.service(workers=1)
        service.shutdown()
        with pytest.raises(ServiceShutdownError):
            service.submit(net.query("a").limit(2))

    def test_shutdown_fails_queued_handles_and_run_recovers(self, net):
        service = net.service(workers=1)
        release, blocker = hold_worker(net)
        queued = net.query("b").limit(2).submit()
        service.shutdown(wait=False)  # clears the queue, fails `queued`
        release.set()
        with pytest.raises(ServiceShutdownError):
            queued.result(timeout=10)
        blocker.result(timeout=10)  # in-flight work still completes
        service.shutdown(wait=True)
        # The session replaces a closed service transparently.
        assert len(net.query("a").limit(3).run().entries) == 3

    def test_coalescing_parity_and_accounting(self, net):
        # Hold the single worker, queue six compatible queries, release:
        # they must execute as ONE fused batch with per-query answers
        # identical to sequential .run().
        expected = {
            (name, k): net.query(name).limit(k).run().entries
            for name in ("a", "b", "c")
            for k in (3, 7)
        }
        service = net.service(workers=1)
        release, blocker = hold_worker(net)
        handles = {
            (name, k): net.query(name).limit(k).submit(cached=False)
            for name in ("a", "b", "c")
            for k in (3, 7)
        }
        release.set()
        blocker.result(timeout=10)
        for key, handle in handles.items():
            assert handle.result(timeout=10).entries == expected[key], key
        stats = service.stats()
        assert stats["coalesced_batches"] == 1
        assert stats["coalesced_queries"] == 6
        one = handles[("a", 3)].result()
        assert one.stats.extra["coalesced_group"] == 6.0
        assert one.stats.extra["batch_size"] == 6.0

    def test_coalescing_skips_pinned_and_filtered_queries(self, net):
        from repro.core.batch import coalescible_request

        plain = net.query("a").limit(3).request()
        assert coalescible_request(plain, hops=2, include_self=True, backend="auto")
        for builder in (
            net.query("a").limit(3).algorithm("base"),
            net.query("a").limit(3).where([1, 2, 3]),
            net.query("a").limit(3).aggregate("max"),
            net.query("a").limit(3).backend("python"),
            net.query("a").limit(3).gamma("auto"),  # default-valued pin
        ):
            assert not coalescible_request(
                builder.request(), hops=2, include_self=True, backend="auto"
            )

    def test_non_coalescible_submissions_run_individually(self, net):
        service = net.service(workers=2)
        handle = net.query("a").limit(4).algorithm("backward").submit()
        direct = net.query("a").limit(4).algorithm("backward").run()
        assert handle.result(timeout=10).entries == direct.entries
        assert service.stats()["coalesced_batches"] == 0

    def test_inline_service_has_no_threads(self, net):
        before = threading.active_count()
        net.query("a").limit(3).run()
        handle = net.query("a").limit(3).submit()
        handle.result(timeout=10)
        assert threading.active_count() == before
        assert net.service().workers == 0

    def test_service_reconfigure_is_idempotent(self, net):
        one = net.service(workers=2)
        assert net.service(workers=2) is one
        assert net.service() is one
        two = net.service(workers=2, coalesce=False)
        assert two is not one and one.closed


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_hot_query_served_from_cache(self, net):
        service = net.service(workers=1)
        first = net.query("a").limit(5).submit().result(timeout=10)
        second = net.query("a").limit(5).submit().result(timeout=10)
        assert second.entries == first.entries
        assert second.stats.extra.get("result_cache") == 1.0
        assert "result_cache" not in first.stats.extra
        stats = service.stats()
        assert stats["cache_hits"] == 1 and stats["cache_misses"] == 1

    def test_cached_copies_are_isolated(self, net):
        net.service(workers=1)
        first = net.query("a").limit(5).submit().result(timeout=10)
        first.entries.clear()  # a rude caller cannot poison the cache
        second = net.query("a").limit(5).submit().result(timeout=10)
        assert len(second.entries) == 5

    def test_different_requests_different_entries(self, net):
        net.service(workers=1)
        net.query("a").limit(5).submit().result(timeout=10)
        other = net.query("a").limit(6).submit().result(timeout=10)
        assert "result_cache" not in other.stats.extra

    def test_add_edge_invalidates(self, dyn_net):
        service = dyn_net.service(workers=1)
        before = dyn_net.query("a").limit(5).submit().result(timeout=10)
        dyn_net.add_edge(0, 49)
        after = dyn_net.query("a").limit(5).submit().result(timeout=10)
        assert "result_cache" not in after.stats.extra
        assert after.entries == dyn_net.query("a").limit(5).run().entries
        assert service.cache.stats()["invalidations"] >= 1
        # `before` stays a valid snapshot of the pre-mutation answer.
        assert len(before.entries) == 5

    def test_update_score_invalidates(self, dyn_net):
        dyn_net.service(workers=1)
        stale = dyn_net.query("a").limit(5).submit().result(timeout=10)
        node = stale.entries[0][0]
        dyn_net.update_score("a", node, 0.0)
        fresh = dyn_net.query("a").limit(5).submit().result(timeout=10)
        assert "result_cache" not in fresh.stats.extra
        assert fresh.entries == dyn_net.query("a").limit(5).run().entries

    def test_update_score_keeps_unrelated_scores_hot(self, dyn_net):
        # Per-score invalidation (not a whole-cache flush): mutating "a"
        # must leave "b"'s cached answer resident and hitting — the
        # hit-rate regression the serving follow-up closed.
        dyn_net.add_scores("b", quantized_scores(50, seed=6))
        service = dyn_net.service(workers=1)
        dyn_net.query("a").limit(5).submit().result(timeout=10)
        dyn_net.query("b").limit(5).submit().result(timeout=10)
        hits_before = service.cache.stats()["hits"]
        dyn_net.update_score("a", 0, 0.75)
        survivor = dyn_net.query("b").limit(5).submit().result(timeout=10)
        assert survivor.stats.extra.get("result_cache") == 1.0
        stats = service.cache.stats()
        assert stats["hits"] == hits_before + 1
        assert stats["score_invalidations"] >= 1
        assert stats["invalidations"] == 0  # no whole-cache flush happened
        # And "a" itself re-executes (its entry was evicted).
        fresh = dyn_net.query("a").limit(5).submit().result(timeout=10)
        assert "result_cache" not in fresh.stats.extra

    def test_add_scores_evicts_only_that_score(self, dyn_net):
        dyn_net.add_scores("b", quantized_scores(50, seed=7))
        service = dyn_net.service(workers=1)
        dyn_net.query("a").limit(5).submit().result(timeout=10)
        dyn_net.query("b").limit(5).submit().result(timeout=10)
        dyn_net.add_scores("a", quantized_scores(50, seed=8))
        assert len(service.cache) == 1  # only "b"'s entry survived
        survivor = dyn_net.query("b").limit(5).submit().result(timeout=10)
        assert survivor.stats.extra.get("result_cache") == 1.0

    def test_pinned_variant_never_served_unpinned_cache_entry(self, net):
        # `pinned` is hash-excluded on QueryRequest, but it changes
        # validation semantics: after the plain request is cached, the
        # default-valued-knob-pinned variant must still raise, not be
        # served the cached answer.
        net.service(workers=1)
        net.query("a").limit(5).submit().result(timeout=10)
        pinned = net.query("a").limit(5).algorithm("base").gamma("auto").submit()
        with pytest.raises(InvalidParameterError, match="gamma"):
            pinned.result(timeout=10)

    def test_midflight_add_scores_cannot_poison_cache(self, net):
        # A worker executing a query for score 'a' while add_scores('a',
        # ...) replaces the vector: the mutation waits for the in-flight
        # query (write guard), and the old answer must never be served
        # under the new epoch.
        from tests.test_service import hold_worker  # self-import for clarity

        net.service(workers=1)
        release, blocker = hold_worker(net)
        inflight = net.query("a").limit(5).submit()  # queued, cached=True
        swapped = quantized_scores(70, seed=555)
        swapper = threading.Thread(
            target=lambda: net.add_scores("a", swapped), daemon=True
        )
        swapper.start()
        release.set()
        blocker.result(timeout=10)
        inflight.result(timeout=10)
        swapper.join(timeout=10)
        assert not swapper.is_alive()
        after = net.query("a").limit(5).submit().result(timeout=10)
        assert after.entries == net.query("a").limit(5).run().entries

    def test_add_scores_bumps_epoch(self, net):
        net.service(workers=1)
        net.query("a").limit(5).submit().result(timeout=10)
        net.add_scores("a", quantized_scores(70, seed=42))
        refreshed = net.query("a").limit(5).submit().result(timeout=10)
        assert "result_cache" not in refreshed.stats.extra
        assert refreshed.entries == net.query("a").limit(5).run().entries

    def test_cache_disabled_by_size_zero(self, net):
        net.service(workers=1, cache_entries=0)
        net.query("a").limit(5).submit().result(timeout=10)
        again = net.query("a").limit(5).submit().result(timeout=10)
        assert "result_cache" not in again.stats.extra

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        from repro.core.results import QueryStats, TopKResult

        def result(tag):
            return TopKResult(entries=[(tag, 1.0)], stats=QueryStats())

        cache.put("x", result(1))
        cache.put("y", result(2))
        assert cache.get("x") is not None  # refresh x
        cache.put("z", result(3))  # evicts y (LRU)
        assert cache.get("y") is None
        assert cache.get("x") is not None and cache.get("z") is not None
        assert cache.stats()["evictions"] == 1


# ---------------------------------------------------------------------------
# The set-fields mask (PR 2 review follow-up)
# ---------------------------------------------------------------------------
class TestSetFieldsMask:
    def test_default_valued_knob_pin_rejected(self, net):
        # Pinning a knob to its *default* value on an algorithm that cannot
        # honor it is now rejected exactly like a non-default pin.
        cases = [
            (net.query("a").limit(3).algorithm("base").gamma("auto"), "gamma"),
            (
                net.query("a").limit(3).algorithm("base").distribution_fraction(0.1),
                "distribution_fraction",
            ),
            (net.query("a").limit(3).algorithm("base").exact_sizes(False), "exact_sizes"),
            (
                net.query("a").limit(3).algorithm("backward").ordering("ubound"),
                "ordering",
            ),
        ]
        for builder, knob in cases:
            with pytest.raises(InvalidParameterError, match=knob):
                builder.run()

    def test_mask_recorded_on_lowering(self, net):
        request = net.query("a").limit(3).gamma(0.4).request()
        assert request.is_pinned("gamma") and request.is_pinned("k")
        assert not request.is_pinned("ordering")

    def test_direct_requests_keep_value_based_check(self):
        # A hand-built request (empty mask) with default knob values still
        # passes on any algorithm — old behavior, unchanged.
        request = QueryRequest(k=3, algorithm="base")
        assert request.pinned == frozenset()

    def test_unknown_pinned_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="pinned"):
            QueryRequest(k=3, pinned=frozenset({"not_a_field"}))

    def test_applicable_default_pin_still_allowed(self, net):
        # gamma pinned to its default on *backward* is applicable: fine.
        result = net.query("a").limit(3).algorithm("backward").gamma("auto").run()
        assert len(result.entries) == 3


# ---------------------------------------------------------------------------
# Bounded session ball caches (ROADMAP open item)
# ---------------------------------------------------------------------------
class TestBoundedBallCaches:
    def test_lru_byte_budget_evicts(self):
        pytest.importorskip("numpy")
        from repro.graph.csr import CSRBallCache, to_csr

        graph = random_graph(40, 0.15, seed=9)
        csr = to_csr(graph, use_numpy=True)
        unbounded = CSRBallCache(csr, 2)
        sizes = [int(unbounded.ball(v).nbytes) for v in range(40)]
        budget = sum(sizes[:10])
        cache = CSRBallCache(csr, 2, max_bytes=budget)
        for v in range(40):
            cache.ball(v)
        stats = cache.stats()
        assert stats["evictions"] > 0
        assert stats["bytes"] <= budget
        assert len(cache) < 40
        # Evicted balls are recomputed correctly on demand.
        assert cache.ball(0).tolist() == unbounded.ball(0).tolist()

    def test_hit_counters_exposed_via_session_stats(self, net):
        pytest.importorskip("numpy")
        net.query("c").limit(4).backend("numpy").algorithm("backward").run()
        net.query("c").limit(4).backend("numpy").algorithm("backward").run()
        payload = net.service().stats()["session_caches"]
        ball = payload["ball_cache"]
        assert ball is not None and ball["hits"] > 0
        assert ball["max_bytes"] == net._ctx.ball_cache_bytes

    def test_dist_cache_budget(self):
        pytest.importorskip("numpy")
        from repro.graph.csr import CSRDistanceBallCache, to_csr

        graph = random_graph(30, 0.15, seed=11)
        csr = to_csr(graph, use_numpy=True)
        cache = CSRDistanceBallCache(csr, 2, max_bytes=2048)
        for v in range(30):
            cache.ball(v)
        stats = cache.stats()
        assert stats["bytes"] <= 2048 or stats["entries"] == 1
        members, dists = cache.ball(3)
        assert members.size == dists.size


class TestHandleRepr:
    def test_states_are_strings(self, net):
        handle = net.query("a").limit(2).submit()
        handle.result(timeout=10)
        assert isinstance(handle, QueryHandle)
        assert handle.state in {"done"}
        assert handle.running() is False

    def test_stream_cancel_after_last_update_still_cancels(self, net):
        # cancel() on a running stream returns True ("will not produce a
        # result"); even if execution completes before the worker checks
        # the abort flag again, the handle must land cancelled, not done.
        from repro.core.results import QueryStats, TopKResult

        handle = QueryHandle(
            net.query("a").limit(2).request(), stream=True
        )
        assert handle._start(0.0)
        assert handle.cancel() is True  # running + stream -> cooperative
        handle._finish(TopKResult(entries=[(0, 1.0)], stats=QueryStats()))
        assert handle.state == "cancelled"
        with pytest.raises(QueryCancelledError):
            handle.result(timeout=1)

    def test_deadline_error_names_configured_seconds(self, net):
        net.service(workers=1)
        release, blocker = hold_worker(net)
        late = net.query("b").limit(3).submit(deadline=0.015)
        with pytest.raises(DeadlineExceededError, match="0.015s"):
            late.result(timeout=5)
        release.set()
        blocker.result(timeout=10)
