"""Tests for the relevance-function layer."""

from __future__ import annotations

import pytest

from repro.errors import RelevanceError
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.relevance import (
    BinaryRelevance,
    IterativeClassifierRelevance,
    MixtureRelevance,
    RandomAssignmentRelevance,
    RandomWalkRelevance,
    ScoreVector,
    indicator_scores,
    uniform_scores,
    walk_diffusion,
)


class TestScoreVector:
    def test_basic_accessors(self):
        sv = ScoreVector([0.0, 0.5, 1.0])
        assert len(sv) == 3
        assert sv[1] == 0.5
        assert list(sv) == [0.0, 0.5, 1.0]

    def test_range_validated(self):
        with pytest.raises(RelevanceError):
            ScoreVector([0.5, 1.2])
        with pytest.raises(RelevanceError):
            ScoreVector([-0.1])

    def test_nonzero_and_density(self):
        sv = ScoreVector([0.0, 0.3, 0.0, 1.0])
        assert sv.nonzero_nodes == (1, 3)
        assert sv.density == 0.5

    def test_is_binary(self):
        assert ScoreVector([0.0, 1.0, 1.0]).is_binary
        assert not ScoreVector([0.0, 0.5]).is_binary

    def test_descending_nonzero_order(self):
        sv = ScoreVector([0.2, 0.9, 0.0, 0.9, 0.5])
        assert sv.descending_nonzero() == [1, 3, 4, 0]

    def test_total(self):
        assert ScoreVector([0.25, 0.75]).total() == 1.0

    def test_values_returns_copy(self):
        sv = ScoreVector([0.1, 0.2])
        values = sv.values()
        values[0] = 0.9
        assert sv[0] == 0.1

    def test_check_graph(self, path_graph):
        ScoreVector([0.0] * 5).check_graph(path_graph)
        with pytest.raises(RelevanceError):
            ScoreVector([0.0] * 4).check_graph(path_graph)

    def test_empty_vector(self):
        sv = ScoreVector([])
        assert sv.density == 0.0
        assert sv.is_binary


class TestHelpers:
    def test_uniform_scores(self, path_graph):
        sv = uniform_scores(path_graph, 0.5)
        assert all(v == 0.5 for v in sv)
        with pytest.raises(RelevanceError):
            uniform_scores(path_graph, 1.5)

    def test_indicator_scores(self, path_graph):
        sv = indicator_scores(path_graph, [0, 3])
        assert sv.values() == [1.0, 0.0, 0.0, 1.0, 0.0]
        assert sv.is_binary

    def test_indicator_rejects_bad_node(self, path_graph):
        with pytest.raises(RelevanceError):
            indicator_scores(path_graph, [9])


class TestBinaryAndAssignment:
    def test_binary_ratio(self):
        g = erdos_renyi(200, 300, seed=1)
        sv = BinaryRelevance(0.1, seed=2).scores(g)
        assert sv.is_binary
        assert len(sv.nonzero_nodes) == 20

    def test_binary_deterministic(self):
        g = erdos_renyi(100, 150, seed=1)
        a = BinaryRelevance(0.2, seed=3).scores(g)
        b = BinaryRelevance(0.2, seed=3).scores(g)
        assert a.values() == b.values()

    def test_binary_ratio_bounds(self):
        with pytest.raises(RelevanceError):
            BinaryRelevance(1.5)

    def test_assignment_blacked_count(self):
        g = erdos_renyi(300, 400, seed=4)
        sv = RandomAssignmentRelevance(0.05, seed=5).scores(g)
        blacked = sum(1 for v in sv if v == 1.0)
        assert blacked == 15

    def test_assignment_tail_in_range(self):
        g = erdos_renyi(200, 250, seed=6)
        sv = RandomAssignmentRelevance(0.0, rate=5.0, seed=7).scores(g)
        assert all(0.0 <= v < 1.0 for v in sv)
        # exponential tail concentrates near zero
        assert sum(v < 0.3 for v in sv) > 140

    def test_assignment_zero_fraction(self):
        g = erdos_renyi(300, 350, seed=8)
        sv = RandomAssignmentRelevance(
            0.0, zero_fraction=0.5, seed=9
        ).scores(g)
        zeros = sum(1 for v in sv if v == 0.0)
        assert 100 <= zeros <= 200

    def test_assignment_validation(self):
        with pytest.raises(RelevanceError):
            RandomAssignmentRelevance(0.1, rate=0.0)
        with pytest.raises(RelevanceError):
            RandomAssignmentRelevance(0.1, zero_fraction=2.0)


class TestRandomWalk:
    def test_diffusion_spreads_mass(self, path_graph):
        out = walk_diffusion(path_graph, [1.0, 0.0, 0.0, 0.0, 0.0], iterations=2)
        assert out[1] > 0.0
        assert out[2] > 0.0

    def test_diffusion_zero_stays_zero(self, path_graph):
        out = walk_diffusion(path_graph, [0.0] * 5)
        assert out == [0.0] * 5

    def test_diffusion_normalized(self, star_graph):
        out = walk_diffusion(star_graph, [1.0, 0, 0, 0, 0, 0], iterations=3)
        assert max(out) == 1.0

    def test_diffusion_validation(self, path_graph):
        with pytest.raises(RelevanceError):
            walk_diffusion(path_graph, [1.0] * 4)
        with pytest.raises(RelevanceError):
            walk_diffusion(path_graph, [1.0] * 5, restart_prob=0.0)
        with pytest.raises(RelevanceError):
            walk_diffusion(path_graph, [1.0] * 5, iterations=-1)

    def test_dangling_nodes_keep_mass(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)  # node 2 isolated
        out = walk_diffusion(g, [0.0, 0.0, 1.0], iterations=4)
        assert out[2] == 1.0

    def test_relevance_wrapper(self, path_graph):
        base = BinaryRelevance(0.4, seed=11)
        walked = RandomWalkRelevance(base, iterations=2).scores(path_graph)
        assert len(walked) == 5
        assert not walked.is_binary or walked.density in (0.0, 1.0)

    def test_wrapper_rejects_non_relevance(self):
        with pytest.raises(RelevanceError):
            RandomWalkRelevance(object())


class TestMixture:
    def test_blacked_nodes_stay_one(self):
        g = erdos_renyi(200, 400, seed=12)
        sv = MixtureRelevance(0.1, seed=13).scores(g)
        assert sum(1 for v in sv if v == 1.0) >= 20

    def test_binary_mode(self):
        g = erdos_renyi(150, 200, seed=14)
        sv = MixtureRelevance(0.1, binary=True, seed=15).scores(g)
        assert sv.is_binary
        assert len(sv.nonzero_nodes) == 15

    def test_truncation_sparsifies(self):
        g = erdos_renyi(200, 400, seed=16)
        dense = MixtureRelevance(0.05, zero_fraction=0.0, seed=17).scores(g)
        sparse = MixtureRelevance(
            0.05, zero_fraction=0.0, truncate_below=0.2, seed=17
        ).scores(g)
        assert sparse.density < dense.density
        # surviving scores are untouched
        for lo, hi in zip(sparse, dense):
            if lo > 0.0:
                assert lo == hi

    def test_deterministic(self):
        g = erdos_renyi(100, 200, seed=18)
        a = MixtureRelevance(0.05, seed=19).scores(g)
        b = MixtureRelevance(0.05, seed=19).scores(g)
        assert a.values() == b.values()

    def test_validation(self):
        with pytest.raises(RelevanceError):
            MixtureRelevance(0.1, alpha=1.5)
        with pytest.raises(RelevanceError):
            MixtureRelevance(0.1, truncate_below=-0.2)


class TestIterativeClassifier:
    def test_seeds_clamped(self, path_graph):
        sv = IterativeClassifierRelevance([0], [4]).scores(path_graph)
        assert sv[0] == 1.0
        assert sv[4] == 0.0

    def test_proximity_orders_scores(self, path_graph):
        sv = IterativeClassifierRelevance([0], [4], iterations=8).scores(path_graph)
        assert sv[1] > sv[3]

    def test_no_iterations_returns_priors(self, path_graph):
        sv = IterativeClassifierRelevance([0], prior=0.3, iterations=0).scores(
            path_graph
        )
        assert sv[2] == pytest.approx(0.3)

    def test_overlapping_seeds_rejected(self):
        with pytest.raises(RelevanceError):
            IterativeClassifierRelevance([1], [1])

    def test_out_of_graph_seed_rejected(self, path_graph):
        with pytest.raises(RelevanceError):
            IterativeClassifierRelevance([10]).scores(path_graph)

    def test_scores_in_range(self):
        g = erdos_renyi(80, 160, seed=20)
        sv = IterativeClassifierRelevance(
            [0, 1, 2], [70, 71], iterations=6
        ).scores(g)
        assert all(0.0 <= v <= 1.0 for v in sv)
