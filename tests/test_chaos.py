"""Seeded chaos: parity and bounded-time liveness under fault presets.

Every test runs a real distributed engine (socket cluster, process pool,
HTTP serving) under a deterministic :class:`repro.faults.FaultPlan` and
asserts the two acceptance gates from the resilience work:

* **Parity** — the chaos answer is entry-for-entry identical to the
  fault-free reference.  Crashes, stragglers, and corrupted frames are
  allowed to cost time, never correctness.
* **Liveness** — recovery converges within a per-test deadline.  A fault
  schedule that wedges a round is a bug in the re-issue machinery, and it
  fails here as a deadline miss instead of hanging CI.

The coordinator side installs the plan in-process; worker processes
inherit it through ``REPRO_FAULT_PLAN`` (set via monkeypatch *before* the
engine spawns them).  The CI chaos-smoke job pins one profile per matrix
cell by exporting ``REPRO_FAULT_PLAN=preset:NAME,seed=N``; when that
variable is present this module narrows its parameterization to exactly
that profile, so each cell replays one schedule rather than all of them.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.client import RemoteNetwork, RetryPolicy
from repro.faults import ENV_VAR, clear_plan, install_plan, preset_plan
from repro.serving import QueryServer, ServerConfig
from repro.session import Network
from tests.conftest import random_graph

np = pytest.importorskip("numpy")

#: Liveness bound per chaos run.  Generous against slow CI cells — the
#: point is catching hangs (which would otherwise eat the whole job), not
#: benchmarking recovery latency (that is ``benchmarks/bench_faults.py``).
DEADLINE = 120.0

WORKERS = 2


def _profiles():
    """(preset, seed) cells — narrowed to the env-pinned one under CI."""
    spec = os.environ.get(ENV_VAR, "")
    if spec.startswith("preset:"):
        body = spec[len("preset:"):]
        name, _, tail = body.partition(",")
        seed = int(tail.partition("=")[2] or 0)
        return [(name.strip(), seed)]
    return [
        ("crash-heavy", 0),
        ("crash-heavy", 1),
        ("delay-heavy", 0),
        ("corrupt-heavy", 0),
        ("corrupt-heavy", 1),
    ]


PROFILES = _profiles()


@pytest.fixture(autouse=True)
def _fresh_plan_state():
    """No plan leaks across tests (including the env bootstrap's)."""
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def chaos(request, monkeypatch):
    """Install ``(profile, seed)`` coordinator-side and for spawned workers."""
    name, seed = request.param
    monkeypatch.setenv(ENV_VAR, f"preset:{name},seed={seed}")
    install_plan(preset_plan(name, seed=seed))
    yield name, seed
    clear_plan()


def _bounded(fn, seconds=DEADLINE):
    """Run ``fn`` under a liveness deadline; a hang fails loudly."""
    out = {}

    def target():
        try:
            out["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            out["error"] = exc

    worker = threading.Thread(target=target, daemon=True)
    started = time.monotonic()
    worker.start()
    worker.join(seconds)
    if worker.is_alive():
        pytest.fail(
            f"chaos run still live after {seconds:.0f}s "
            f"(elapsed {time.monotonic() - started:.1f}s): "
            "recovery did not converge"
        )
    if "error" in out:
        raise out["error"]
    return out["value"]


def _entries(result):
    return [(node, round(value, 9)) for node, value in result.entries]


def _scores(n, seed):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


@pytest.mark.parametrize("chaos", PROFILES, indirect=True, ids=str)
class TestClusterChaos:
    def test_parity_and_liveness(self, chaos):
        g = random_graph(300, 0.02, seed=700)
        net = Network(g, hops=2)
        net.add_scores("s", _scores(300, 701))
        # The fault-free reference first: the numpy backend crosses no
        # fault points, so computing it under the installed plan is safe
        # and keeps the whole test inside one fixture lifetime.
        ref_scan = net.query("s").limit(6).backend("numpy").run()
        ref_back = (
            net.query("s").limit(5).algorithm("backward")
            .backend("numpy").run()
        )
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            got_scan = _bounded(
                lambda: net.query("s").limit(6).backend("cluster").run()
            )
            got_back = _bounded(
                lambda: net.query("s").limit(5).algorithm("backward")
                .backend("cluster").run()
            )
            assert _entries(got_scan) == _entries(ref_scan)
            assert _entries(got_back) == _entries(ref_back)
        finally:
            net.close()


@pytest.mark.parametrize("chaos", PROFILES, indirect=True, ids=str)
class TestParallelChaos:
    def test_parity_and_liveness(self, chaos):
        g = random_graph(300, 0.02, seed=710)
        net = Network(g, hops=2)
        net.add_scores("s", _scores(300, 711))
        ref = net.query("s").limit(6).backend("numpy").run()
        net.parallel(workers=WORKERS, min_nodes=0)
        try:
            got = _bounded(
                lambda: net.query("s").limit(6).backend("parallel").run()
            )
            assert _entries(got) == _entries(ref)
        finally:
            net.close()


@pytest.mark.parametrize("chaos", PROFILES, indirect=True, ids=str)
class TestServingChaos:
    def test_client_parity_under_chaos(self, chaos):
        g = random_graph(80, 0.08, seed=720)
        net = Network(g, hops=2)
        net.add_scores("s", _scores(80, 721))
        ref = net.query("s").limit(5).run()
        server = QueryServer(net, ServerConfig(replicas=1)).start()
        try:
            def roundtrip():
                with RemoteNetwork(
                    server.url,
                    retry=RetryPolicy(
                        attempts=5, base_delay=0.02, jitter=0.0
                    ),
                ) as client:
                    return client.topk("s", 5)

            got = _bounded(roundtrip)
            assert _entries(got) == _entries(ref)
        finally:
            server.close()
            net.close()


class TestChaosObservability:
    """Fired faults are visible after the fact — a chaos run that injected
    nothing would silently test nothing, so the engine stats prove the
    schedule actually fired (crash-heavy's worker crashes show up as
    respawns charged against the budget)."""

    @pytest.mark.parametrize(
        "chaos", [("crash-heavy", 0)], indirect=True, ids=str
    )
    def test_crash_preset_charges_the_respawn_budget(self, chaos):
        g = random_graph(300, 0.02, seed=730)
        net = Network(g, hops=2)
        net.add_scores("s", _scores(300, 731))
        ref = net.query("s").limit(5).backend("numpy").run()
        engine = net.cluster(workers=WORKERS, min_nodes=0)
        try:
            # Crash-heavy kills each worker on its 4th task; keep issuing
            # queries until a death has been absorbed (bounded — the
            # trigger is deterministic, so a handful of rounds suffices).
            for _ in range(6):
                got = _bounded(
                    lambda: net.query("s").limit(5).backend("cluster").run()
                )
                assert _entries(got) == _entries(ref)
                if engine.stats()["respawns"] >= 1:
                    break
            assert engine.stats()["respawns"] >= 1
        finally:
            net.close()
