"""Tests for LONA-Forward: correctness, pruning behavior, configuration."""

from __future__ import annotations

import pytest

from repro.core.base import base_topk
from repro.core.forward import forward_topk
from repro.core.ordering import ORDERINGS, make_order
from repro.core.query import QuerySpec
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.graph.diffindex import build_differential_index
from repro.graph.generators import powerlaw_cluster
from repro.relevance import BinaryRelevance
from tests.conftest import random_graph, random_scores, rounded


class TestAgreementWithBase:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    @pytest.mark.parametrize("hops", [1, 2])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_random_graph_agreement(self, aggregate, hops, k):
        g = random_graph(45, 0.1, seed=31)
        scores = random_scores(45, seed=32)
        spec = QuerySpec(k=k, hops=hops, aggregate=aggregate)
        expected = base_topk(g, scores, spec)
        actual = forward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_every_ordering_agrees(self, ordering, medium_graph):
        scores = random_scores(60, seed=33, density=0.3)
        spec = QuerySpec(k=8)
        expected = base_topk(medium_graph, scores, spec)
        actual = forward_topk(
            medium_graph, scores, spec, ordering=ordering, seed=5
        )
        assert rounded(actual.values) == rounded(expected.values)

    def test_open_ball_agreement(self):
        g = random_graph(35, 0.12, seed=34)
        scores = random_scores(35, seed=35)
        spec = QuerySpec(k=6, include_self=False)
        expected = base_topk(g, scores, spec)
        actual = forward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_directed_graph_agreement(self):
        g = random_graph(35, 0.08, seed=36, directed=True)
        scores = random_scores(35, seed=37)
        spec = QuerySpec(k=5)
        expected = base_topk(g, scores, spec)
        actual = forward_topk(g, scores, spec)
        assert rounded(actual.values) == rounded(expected.values)

    def test_sparse_binary_agreement(self):
        g = powerlaw_cluster(300, 3, 0.6, seed=38, heavy_tail=True)
        scores = BinaryRelevance(0.03, seed=39).scores(g).values()
        for k in (1, 10, 50):
            spec = QuerySpec(k=k)
            expected = base_topk(g, scores, spec)
            actual = forward_topk(g, scores, spec)
            assert rounded(actual.values) == rounded(expected.values)

    def test_all_zero_scores(self, medium_graph):
        spec = QuerySpec(k=4)
        result = forward_topk(medium_graph, [0.0] * 60, spec)
        assert result.values == [0.0] * 4

    def test_all_one_scores(self, medium_graph):
        spec = QuerySpec(k=4)
        expected = base_topk(medium_graph, [1.0] * 60, spec)
        actual = forward_topk(medium_graph, [1.0] * 60, spec)
        assert rounded(actual.values) == rounded(expected.values)


class TestPruningBehavior:
    def test_pruning_reduces_evaluations(self):
        g = powerlaw_cluster(400, 3, 0.6, seed=40, heavy_tail=True)
        scores = BinaryRelevance(0.05, seed=41).scores(g).values()
        spec = QuerySpec(k=5)
        base = base_topk(g, scores, spec)
        fwd = forward_topk(g, scores, spec)
        assert fwd.stats.nodes_evaluated < base.stats.nodes_evaluated
        assert fwd.stats.pruned_nodes > 0
        assert (
            fwd.stats.nodes_evaluated + fwd.stats.pruned_nodes
            <= g.num_nodes
        )

    def test_prebuilt_index_reused(self, medium_graph):
        scores = random_scores(60, seed=42)
        idx = build_differential_index(medium_graph, 2)
        result = forward_topk(
            medium_graph, scores, QuerySpec(k=3), diff_index=idx
        )
        assert result.stats.index_build_sec == 0.0

    def test_index_built_when_missing(self, medium_graph):
        scores = random_scores(60, seed=43)
        result = forward_topk(medium_graph, scores, QuerySpec(k=3))
        assert result.stats.index_build_sec > 0.0

    def test_incompatible_index_rejected(self, medium_graph):
        scores = random_scores(60, seed=44)
        idx = build_differential_index(medium_graph, 1)
        with pytest.raises(IndexNotBuiltError):
            forward_topk(medium_graph, scores, QuerySpec(k=3, hops=2), diff_index=idx)

    def test_stats_fields(self, medium_graph):
        scores = random_scores(60, seed=45)
        result = forward_topk(medium_graph, scores, QuerySpec(k=3))
        assert result.stats.algorithm == "forward"
        assert result.stats.extra["ordering"] == "ubound"
        assert result.stats.balls_expanded == result.stats.nodes_evaluated


class TestConfiguration:
    def test_max_min_rejected(self, medium_graph):
        with pytest.raises(InvalidParameterError):
            forward_topk(medium_graph, [0.1] * 60, QuerySpec(k=2, aggregate="max"))

    def test_unknown_ordering_rejected(self, medium_graph):
        with pytest.raises(InvalidParameterError):
            forward_topk(
                medium_graph, [0.1] * 60, QuerySpec(k=2), ordering="sideways"
            )

    def test_make_order_requires_sizes_for_ubound(self, medium_graph):
        with pytest.raises(InvalidParameterError):
            make_order("ubound", medium_graph, [0.1] * 60)

    def test_make_order_shapes(self, path_graph):
        assert make_order("arbitrary", path_graph, [0.0] * 5) == [0, 1, 2, 3, 4]
        by_degree = make_order("degree", path_graph, [0.0] * 5)
        assert by_degree[0] in (1, 2, 3)
        shuffled = make_order("random", path_graph, [0.0] * 5, seed=1)
        assert sorted(shuffled) == [0, 1, 2, 3, 4]
