"""Tests for the benchmark harness, workloads, reporting, and CLI."""

from __future__ import annotations

import csv
import io
import os

import pytest

from repro.bench.figures import main as figures_main
from repro.bench.harness import run_figure
from repro.bench.reporting import (
    format_figure,
    format_speedups,
    write_csv,
    write_series,
)
from repro.bench.workloads import FIGURES, PAPER_KS, figure
from repro.errors import InvalidParameterError


class TestWorkloads:
    def test_six_figures_defined(self):
        assert sorted(FIGURES) == ["fig1", "fig2", "fig3", "fig4", "fig5", "fig6"]

    def test_parameters_match_paper(self):
        assert FIGURES["fig1"].aggregate == "sum"
        assert FIGURES["fig3"].blacking_ratio == 0.2
        assert FIGURES["fig6"].blacking_ratio == 0.01
        assert all(spec.hops == 2 for spec in FIGURES.values())
        assert all(spec.ks == PAPER_KS for spec in FIGURES.values())

    def test_figure_lookup_forms(self):
        assert figure("1").figure_id == "fig1"
        assert figure("fig2").figure_id == "fig2"
        mixture = figure("3-mixture")
        assert mixture.figure_id == "fig3-mixture"
        assert not mixture.binary_relevance

    def test_unknown_figure(self):
        with pytest.raises(InvalidParameterError):
            figure("fig9")

    def test_build_graph_and_scores(self):
        spec = FIGURES["fig1"]
        g = spec.build_graph(scale=0.05)
        scores = spec.build_scores(g)
        assert len(scores) == g.num_nodes
        assert scores.is_binary

    def test_mixture_variant_scores_not_binary(self):
        spec = figure("1-mixture")
        g = spec.build_graph(scale=0.05)
        assert not spec.build_scores(g).is_binary


@pytest.fixture(scope="module")
def small_run():
    """One cheap harness execution shared by the reporting tests."""
    return run_figure(FIGURES["fig1"], scale=0.05, ks=[3, 6], repetitions=1)


class TestHarness:
    def test_measurements_cover_grid(self, small_run):
        cells = {(m.algorithm, m.k) for m in small_run.measurements}
        assert cells == {
            (a, k) for a in ("base", "forward", "backward") for k in (3, 6)
        }

    def test_cross_algorithm_verification_ran(self, small_run):
        by_k = {}
        for m in small_run.measurements:
            by_k.setdefault(m.k, set()).add(round(m.top_value, 9))
        for k, tops in by_k.items():
            assert len(tops) == 1, f"algorithms disagreed at k={k}"

    def test_series_sorted_by_k(self, small_run):
        ks = [m.k for m in small_run.series("base")]
        assert ks == sorted(ks)

    def test_speedup_keys(self, small_run):
        speedups = small_run.speedup_over_base("backward")
        assert set(speedups) == {3, 6}
        assert all(s > 0 for s in speedups.values())

    def test_index_built_once(self, small_run):
        assert small_run.index_build_sec > 0.0

    def test_algorithm_override(self):
        run = run_figure(
            FIGURES["fig1"], scale=0.05, ks=[3], algorithms=["base", "materialized"]
        )
        algos = {m.algorithm for m in run.measurements}
        assert algos == {"base", "materialized"}

    def test_backward_indexfree_alias(self):
        run = run_figure(
            FIGURES["fig1"],
            scale=0.05,
            ks=[3],
            algorithms=["base", "backward-indexfree"],
        )
        assert {m.algorithm for m in run.measurements} == {
            "base",
            "backward-indexfree",
        }

    def test_invalid_repetitions(self):
        with pytest.raises(InvalidParameterError):
            run_figure(FIGURES["fig1"], scale=0.05, repetitions=0)


class TestReporting:
    def test_format_figure_contains_series(self, small_run):
        text = format_figure(small_run)
        assert "Fig. 1" in text
        assert "base (s)" in text
        assert "speedup over base" in text

    def test_format_with_counters(self, small_run):
        text = format_figure(small_run, show_counters=True)
        assert "ball evaluations" in text

    def test_format_speedups_no_base(self):
        run = run_figure(FIGURES["fig1"], scale=0.05, ks=[3], algorithms=["backward"])
        assert "unavailable" in format_speedups(run)

    def test_write_csv(self, small_run, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(small_run, path)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(small_run.measurements)
        assert rows[0]["figure"] == "fig1"

    def test_write_csv_to_buffer(self, small_run):
        buffer = io.StringIO()
        write_csv(small_run, buffer)
        assert "elapsed_sec" in buffer.getvalue()

    def test_write_series(self, small_run, tmp_path):
        paths = write_series(small_run, tmp_path)
        assert len(paths) == 3
        for path in paths:
            assert os.path.exists(path)
            with open(path) as handle:
                content = handle.read()
            assert content.startswith("#")


class TestCLI:
    def test_single_figure(self, capsys):
        code = figures_main(["--figure", "1", "--scale", "0.05", "--ks", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig1" in out

    def test_csv_and_series_output(self, tmp_path, capsys):
        code = figures_main(
            [
                "--figure",
                "2",
                "--scale",
                "0.05",
                "--ks",
                "3",
                "--csv",
                str(tmp_path / "csv"),
                "--series",
                str(tmp_path / "dat"),
            ]
        )
        assert code == 0
        assert (tmp_path / "csv" / "fig2.csv").exists()
        assert (tmp_path / "dat" / "fig2_base.dat").exists()

    def test_algorithm_subset(self, capsys):
        code = figures_main(
            [
                "--figure",
                "3",
                "--scale",
                "0.05",
                "--ks",
                "3",
                "--algorithms",
                "base,backward",
                "--counters",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backward" in out and "forward (s)" not in out
