"""Tests for the bounded top-k accumulator."""

from __future__ import annotations

import random

import pytest

from repro.core.topk import TopKAccumulator
from repro.errors import InvalidParameterError


class TestBasics:
    def test_k_validation(self):
        with pytest.raises(InvalidParameterError):
            TopKAccumulator(0)

    def test_underfull_threshold_is_neg_inf(self):
        acc = TopKAccumulator(3)
        acc.offer(0, 10.0)
        assert acc.threshold == float("-inf")
        assert not acc.is_full

    def test_threshold_is_kth_best(self):
        acc = TopKAccumulator(2)
        for node, value in enumerate([5.0, 1.0, 3.0]):
            acc.offer(node, value)
        assert acc.is_full
        assert acc.threshold == 3.0

    def test_entries_sorted_descending(self):
        acc = TopKAccumulator(3)
        for node, value in enumerate([2.0, 9.0, 4.0, 7.0]):
            acc.offer(node, value)
        assert acc.entries() == [(1, 9.0), (3, 7.0), (2, 4.0)]

    def test_values(self):
        acc = TopKAccumulator(2)
        for node, value in enumerate([1.0, 3.0, 2.0]):
            acc.offer(node, value)
        assert acc.values() == [3.0, 2.0]

    def test_len(self):
        acc = TopKAccumulator(5)
        acc.offer(0, 1.0)
        acc.offer(1, 2.0)
        assert len(acc) == 2

    def test_offer_returns_acceptance(self):
        acc = TopKAccumulator(1)
        assert acc.offer(0, 1.0)
        assert not acc.offer(1, 0.5)
        assert acc.offer(2, 2.0)


class TestTieSemantics:
    def test_equal_value_does_not_evict_earlier(self):
        acc = TopKAccumulator(1)
        acc.offer(7, 5.0)
        accepted = acc.offer(8, 5.0)
        assert not accepted
        assert acc.entries() == [(7, 5.0)]

    def test_would_accept_strictly_greater(self):
        acc = TopKAccumulator(1)
        acc.offer(0, 5.0)
        assert not acc.would_accept(5.0)
        assert acc.would_accept(5.0001)

    def test_would_accept_when_underfull(self):
        acc = TopKAccumulator(2)
        acc.offer(0, 5.0)
        assert acc.would_accept(0.0)

    def test_entries_tie_broken_by_node_id(self):
        acc = TopKAccumulator(3)
        acc.offer(9, 1.0)
        acc.offer(4, 1.0)
        acc.offer(6, 1.0)
        assert acc.entries() == [(4, 1.0), (6, 1.0), (9, 1.0)]


class TestAgainstSortModel:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_values_match_sorted_model(self, seed, k):
        rng = random.Random(seed)
        values = [round(rng.random() * 10, 3) for _ in range(50)]
        acc = TopKAccumulator(k)
        for node, value in enumerate(values):
            acc.offer(node, value)
        assert acc.values() == sorted(values, reverse=True)[:k]

    def test_threshold_never_decreases(self):
        rng = random.Random(1234)
        acc = TopKAccumulator(5)
        last = float("-inf")
        for node in range(200):
            acc.offer(node, rng.random())
            assert acc.threshold >= last
            last = acc.threshold
