"""Tests for the dynamic graph and incremental aggregate maintenance."""

from __future__ import annotations

import random

import pytest

from repro.core.base import base_topk
from repro.core.query import QuerySpec
from repro.dynamic import DynamicGraph, MaintainedAggregateView
from repro.errors import (
    EdgeNotFoundError,
    GraphBuildError,
    InvalidParameterError,
    RelevanceError,
)
from repro.graph.generators import erdos_renyi
from tests.conftest import random_scores, rounded


class TestDynamicGraph:
    def test_from_graph_copies(self, path_graph):
        dg = DynamicGraph.from_graph(path_graph)
        dg.add_edge(0, 4)
        assert not path_graph.has_edge(0, 4)
        assert dg.has_edge(0, 4)

    def test_version_bumps(self, path_graph):
        dg = DynamicGraph.from_graph(path_graph)
        v0 = dg.version
        dg.add_edge(0, 2)
        assert dg.version == v0 + 1
        dg.remove_edge(0, 2)
        assert dg.version == v0 + 2
        dg.add_node()
        assert dg.version == v0 + 3

    def test_duplicate_edge_rejected(self, path_graph):
        dg = DynamicGraph.from_graph(path_graph)
        with pytest.raises(GraphBuildError):
            dg.add_edge(0, 1)
        with pytest.raises(GraphBuildError):
            dg.add_edge(1, 0)  # undirected duplicate

    def test_self_loop_rejected(self, path_graph):
        dg = DynamicGraph.from_graph(path_graph)
        with pytest.raises(GraphBuildError):
            dg.add_edge(2, 2)

    def test_remove_missing_edge(self, path_graph):
        dg = DynamicGraph.from_graph(path_graph)
        with pytest.raises(EdgeNotFoundError):
            dg.remove_edge(0, 3)

    def test_edge_counts_maintained(self, path_graph):
        dg = DynamicGraph.from_graph(path_graph)
        assert dg.num_edges == 4
        dg.add_edge(0, 3)
        assert dg.num_edges == 5
        dg.remove_edge(0, 1)
        assert dg.num_edges == 4

    def test_directed_dynamic(self, directed_cycle):
        dg = DynamicGraph.from_graph(directed_cycle)
        dg.add_edge(0, 2)
        assert dg.has_edge(0, 2)
        assert not dg.has_edge(2, 0)
        dg.add_edge(2, 0)  # reverse arc is distinct
        assert dg.num_edges == 6

    def test_snapshot_immutable(self, path_graph):
        dg = DynamicGraph.from_graph(path_graph)
        snap = dg.snapshot()
        dg.add_edge(0, 4)
        assert not snap.has_edge(0, 4)

    def test_from_edges(self):
        dg = DynamicGraph.from_edges([(0, 1), (1, 2)], num_nodes=4)
        assert dg.num_nodes == 4
        assert dg.num_edges == 2


class TestMaintainedView:
    def _fresh(self, seed=1, n=40, m=80):
        dg = DynamicGraph.from_graph(erdos_renyi(n, m, seed=seed))
        scores = random_scores(n, seed=seed + 100)
        return dg, MaintainedAggregateView(dg, scores, hops=2)

    def _assert_consistent(self, dg, view):
        for aggregate in ("sum", "avg"):
            expected = base_topk(
                dg, view.scores, QuerySpec(k=dg.num_nodes, hops=2, aggregate=aggregate)
            )
            got = view.topk(dg.num_nodes, aggregate)
            assert rounded(got.values) == rounded(expected.values), aggregate

    def test_initial_consistency(self):
        dg, view = self._fresh()
        self._assert_consistent(dg, view)

    def test_edge_insertion(self):
        dg, view = self._fresh(seed=2)
        affected = view.add_edge(0, 1) if not dg.has_edge(0, 1) else 0
        self._assert_consistent(dg, view)
        if affected:
            assert affected >= 2

    def test_edge_deletion(self):
        dg, view = self._fresh(seed=3)
        u, v = next(iter(dg.edges()))
        view.remove_edge(u, v)
        self._assert_consistent(dg, view)

    def test_score_update_is_arithmetic_only(self):
        dg, view = self._fresh(seed=4)
        before = view.nodes_repaired
        view.update_score(5, 1.0)
        assert view.nodes_repaired == before  # no BFS re-evaluation
        assert view.arithmetic_updates > 0
        self._assert_consistent(dg, view)

    def test_noop_score_update(self):
        dg, view = self._fresh(seed=5)
        current = view.scores[3]
        assert view.update_score(3, current) == 0

    def test_add_node_then_connect(self):
        dg, view = self._fresh(seed=6)
        node = view.add_node()
        assert view.value(node, "sum") == 0.0
        view.add_edge(node, 0)
        view.update_score(node, 0.8)
        self._assert_consistent(dg, view)

    def test_random_mutation_stress(self):
        rng = random.Random(77)
        dg, view = self._fresh(seed=7, n=30, m=50)
        for _step in range(40):
            op = rng.random()
            if op < 0.35:
                u, v = rng.randrange(dg.num_nodes), rng.randrange(dg.num_nodes)
                if u != v and not dg.has_edge(u, v):
                    view.add_edge(u, v)
            elif op < 0.6:
                edges = list(dg.edges())
                if edges:
                    u, v = edges[rng.randrange(len(edges))]
                    view.remove_edge(u, v)
            else:
                view.update_score(
                    rng.randrange(dg.num_nodes), round(rng.random(), 3)
                )
        self._assert_consistent(dg, view)

    def test_directed_maintenance(self):
        dg = DynamicGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)], directed=True
        )
        view = MaintainedAggregateView(dg, [0.5, 0.2, 0.9, 0.1], hops=2)
        view.add_edge(0, 2)
        view.update_score(2, 0.3)
        view.remove_edge(1, 3)
        expected = base_topk(dg, view.scores, QuerySpec(k=4, hops=2))
        assert rounded(view.topk(4).values) == rounded(expected.values)

    def test_external_mutation_detected(self):
        dg, view = self._fresh(seed=8)
        dg.add_node()  # bypasses the view
        with pytest.raises(InvalidParameterError):
            view.topk(3)

    def test_score_validation(self):
        dg, view = self._fresh(seed=9)
        with pytest.raises(RelevanceError):
            view.update_score(0, 1.5)
        with pytest.raises(RelevanceError):
            MaintainedAggregateView(dg, [2.0] * dg.num_nodes)

    def test_max_rejected(self):
        dg, view = self._fresh(seed=10)
        with pytest.raises(InvalidParameterError):
            view.topk(3, "max")

    def test_stats_exposed(self):
        dg, view = self._fresh(seed=11)
        view.update_score(0, 1.0)
        result = view.topk(3)
        assert result.stats.algorithm == "maintained-view"
        assert result.stats.extra["arithmetic_updates_total"] > 0
