"""Deprecation shims: old entry points warn but stay entry-for-entry exact.

The API redesign keeps every pre-session path working — ``TopKEngine``,
``RelationalTopKEngine``, ``topk_sum``/``topk_avg`` — while the engine
classes emit :class:`DeprecationWarning` pointing at the ``Network``
facade.  These tests pin both halves of that contract: the warning fires
on construction, and the answers are identical to the facade's.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.engine import TopKEngine, topk_avg, topk_sum
from repro.relational.engine import RelationalTopKEngine
from repro.session import Network
from tests.conftest import random_graph, random_scores, rounded


@pytest.fixture(scope="module")
def graph():
    return random_graph(40, 0.12, seed=511)


@pytest.fixture(scope="module")
def scores():
    return random_scores(40, seed=512, density=0.9)


@pytest.fixture(scope="module")
def net(graph, scores):
    return Network(graph, hops=2).add_scores("s", scores)


class TestTopKEngineShim:
    def test_construction_warns(self, graph, scores):
        with pytest.warns(DeprecationWarning, match="Network"):
            TopKEngine(graph, scores)

    @pytest.mark.parametrize("algorithm", ["base", "forward", "backward", "auto"])
    def test_old_path_identical_entries(self, graph, scores, algorithm):
        # Fresh session and engine: "auto" depends on cache state (a built
        # index flips dense queries to forward), so parity needs both sides
        # cold.
        fresh = Network(graph, hops=2).add_scores("s", scores)
        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(graph, scores, hops=2)
        old = engine.topk(5, "sum", algorithm)
        new = fresh.query("s").limit(5).algorithm(algorithm).run()
        assert old.entries == new.entries
        assert old.stats.algorithm == new.stats.algorithm

    def test_old_options_still_forwarded(self, graph, scores):
        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(graph, scores, hops=2)
        result = engine.topk(3, "sum", "backward", gamma=0.5)
        assert result.stats.extra["gamma"] == 0.5

    def test_index_lifecycle_still_works(self, graph, scores, tmp_path):
        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(graph, scores, hops=2)
        assert engine.build_indexes() > 0.0
        path = tmp_path / "old.lonaidx"
        engine.save_index(path)
        with pytest.warns(DeprecationWarning):
            reader = TopKEngine(graph, scores, hops=2)
        reader.load_index(path)
        assert reader.diff_index is not None

    def test_explain_still_works(self, graph, scores, net):
        with pytest.warns(DeprecationWarning):
            engine = TopKEngine(graph, scores, hops=2)
        old_plan = engine.explain(5)
        new_plan = net.query("s").limit(5).explain()
        assert old_plan.chosen == new_plan.chosen


class TestRelationalShim:
    def test_construction_warns(self, graph, scores):
        with pytest.warns(DeprecationWarning, match="Network"):
            RelationalTopKEngine(graph, scores)

    def test_identical_entries(self, graph, scores, net):
        with pytest.warns(DeprecationWarning):
            engine = RelationalTopKEngine(graph, scores)
        old = engine.topk(5, "sum", hops=2)
        new = net.query("s").limit(5).algorithm("relational").run()
        assert old.entries == new.entries


class TestConvenienceFunctions:
    """topk_sum/topk_avg route through the facade and must not warn."""

    def test_no_deprecation_warning(self, graph, scores):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            topk_sum(graph, scores, 3)
            topk_avg(graph, scores, 3)

    def test_identical_to_facade(self, graph, scores, net):
        old_sum = topk_sum(graph, scores, 4)
        old_avg = topk_avg(graph, scores, 4)
        new_sum = net.query("s").limit(4).run()
        new_avg = net.query("s").limit(4).aggregate("avg").run()
        assert rounded(old_sum.values) == rounded(new_sum.values)
        assert rounded(old_avg.values) == rounded(new_avg.values)


class TestErrorImportShims:
    """The error taxonomy moved to repro.errors; old paths warn but work."""

    @pytest.mark.parametrize(
        "name",
        [
            "ServiceError",
            "ServiceOverloadedError",
            "QueryCancelledError",
            "DeadlineExceededError",
            "ServiceShutdownError",
            "QuotaExceededError",
            "RateLimitedError",
        ],
    )
    def test_old_import_warns_and_is_same_class(self, name):
        import repro.errors
        import repro.service

        with pytest.warns(DeprecationWarning, match="repro.errors"):
            shimmed = getattr(repro.service, name)
        assert shimmed is getattr(repro.errors, name)

    def test_unknown_name_still_raises(self):
        import repro.service

        with pytest.raises(AttributeError):
            repro.service.NotAnError

    def test_canonical_import_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.errors import ServiceOverloadedError  # noqa: F401
