"""Tests for batch (multi-query) processing."""

from __future__ import annotations

import pytest

from repro.core.base import base_topk
from repro.core.batch import BatchQuery, BatchResult, BatchTopKEngine, batch_base_topk
from repro.core.query import QuerySpec
from repro.core.results import combine_query_stats
from repro.errors import InvalidParameterError, RelevanceError
from repro.relevance import BinaryRelevance, ScoreVector
from tests.conftest import random_graph, random_scores, rounded


@pytest.fixture(scope="module")
def batch_graph():
    return random_graph(50, 0.1, seed=191)


def _vectors(n, count, seed):
    return [ScoreVector(random_scores(n, seed=seed + i)) for i in range(count)]


class TestBatchBase:
    def test_matches_individual_base(self, batch_graph):
        vectors = _vectors(50, 4, seed=200)
        queries = [BatchQuery(v, k=5 + i) for i, v in enumerate(vectors)]
        results = batch_base_topk(batch_graph, queries, hops=2)
        assert len(results) == 4
        for query, result in zip(queries, results):
            expected = base_topk(
                batch_graph, query.scores.values(), QuerySpec(k=query.k, hops=2)
            )
            assert rounded(result.values) == rounded(expected.values)

    def test_mixed_aggregates(self, batch_graph):
        vector = ScoreVector(random_scores(50, seed=210))
        queries = [
            BatchQuery(vector, k=5, aggregate="sum"),
            BatchQuery(vector, k=5, aggregate="avg"),
            BatchQuery(vector, k=5, aggregate="count"),
        ]
        results = batch_base_topk(batch_graph, queries, hops=2)
        for query, result in zip(queries, results):
            expected = base_topk(
                batch_graph,
                vector.values(),
                QuerySpec(k=5, hops=2, aggregate=query.aggregate),
            )
            assert rounded(result.values) == rounded(expected.values)

    def test_tuple_shorthand(self, batch_graph):
        scores = random_scores(50, seed=220)
        results = batch_base_topk(
            batch_graph, [(scores, 3), (scores, 7, "avg")], hops=2
        )
        assert len(results[0]) == 3
        assert len(results[1]) == 7
        assert results[1].stats.aggregate == "avg"

    def test_shared_traversal_cost(self, batch_graph):
        """The whole batch does one Base run's traversal, not q of them."""
        vectors = _vectors(50, 5, seed=230)
        results = batch_base_topk(
            batch_graph, [BatchQuery(v, k=4) for v in vectors], hops=2
        )
        single = base_topk(
            batch_graph, vectors[0].values(), QuerySpec(k=4, hops=2)
        )
        for result in results:
            assert result.stats.edges_scanned == single.stats.edges_scanned
            assert result.stats.extra["batch_size"] == 5.0

    def test_empty_batch(self, batch_graph):
        assert batch_base_topk(batch_graph, []) == []

    def test_open_ball(self, batch_graph):
        vector = ScoreVector(random_scores(50, seed=240))
        results = batch_base_topk(
            batch_graph, [BatchQuery(vector, k=5)], hops=2, include_self=False
        )
        expected = base_topk(
            batch_graph,
            vector.values(),
            QuerySpec(k=5, hops=2, include_self=False),
        )
        assert rounded(results[0].values) == rounded(expected.values)

    def test_wrong_length_rejected(self, batch_graph):
        with pytest.raises(RelevanceError):
            batch_base_topk(
                batch_graph, [BatchQuery(ScoreVector([0.5] * 10), k=2)]
            )

    def test_max_rejected(self, batch_graph):
        vector = ScoreVector(random_scores(50, seed=250))
        with pytest.raises(InvalidParameterError):
            batch_base_topk(
                batch_graph, [BatchQuery(vector, k=2, aggregate="max")]
            )

    def test_malformed_entry_rejected(self, batch_graph):
        with pytest.raises(InvalidParameterError):
            batch_base_topk(batch_graph, [42])  # type: ignore[list-item]


class TestBatchEngine:
    def test_routing_and_correctness(self, batch_graph):
        sparse = BinaryRelevance(0.02, seed=260).scores(batch_graph)
        dense = ScoreVector(random_scores(50, seed=261, density=0.9))
        engine = BatchTopKEngine(batch_graph, hops=2, sparse_threshold=0.05)
        results = engine.run(
            [BatchQuery(sparse, k=4), BatchQuery(dense, k=6)]
        )
        assert results[0].stats.algorithm == "backward"
        assert results[1].stats.algorithm == "batch-base"
        for vector, result in ((sparse, results[0]), (dense, results[1])):
            expected = base_topk(
                batch_graph, vector.values(), QuerySpec(k=result.stats.k, hops=2)
            )
            assert rounded(result.values) == rounded(expected.values)

    def test_all_sparse_batch(self, batch_graph):
        vectors = [
            BinaryRelevance(0.02, seed=270 + i).scores(batch_graph)
            for i in range(3)
        ]
        engine = BatchTopKEngine(batch_graph, hops=2)
        results = engine.run([BatchQuery(v, k=3) for v in vectors])
        assert all(r.stats.algorithm == "backward" for r in results)

    def test_shared_csr_injection(self, batch_graph):
        """A prebuilt CSR view must not change the answers."""
        pytest.importorskip("numpy")
        from repro.graph.csr import to_csr

        dense = ScoreVector(random_scores(50, seed=285, density=0.9))
        plain = BatchTopKEngine(batch_graph, hops=2, backend="numpy")
        shared = BatchTopKEngine(
            batch_graph,
            hops=2,
            backend="numpy",
            csr=to_csr(batch_graph, use_numpy=True),
        )
        queries = [BatchQuery(dense, k=5)]
        assert plain.run(queries)[0].entries == shared.run(queries)[0].entries

    def test_results_in_input_order(self, batch_graph):
        sparse = BinaryRelevance(0.02, seed=280).scores(batch_graph)
        dense = ScoreVector(random_scores(50, seed=281, density=0.9))
        engine = BatchTopKEngine(batch_graph, hops=2)
        results = engine.run(
            [
                BatchQuery(dense, k=2),
                BatchQuery(sparse, k=3),
                BatchQuery(dense, k=4),
            ]
        )
        assert [len(r) for r in results] == [2, 3, 4]


class TestBatchStatsAggregation:
    """Regression: workload-level stats must sum per-query counters.

    Each shared-scan member's ``QueryStats`` carries the *whole* batch
    scan's counters (tagged with ``extra["batch_size"]``); naively summing
    them multiplies the shared traversal by the batch size, and reporting
    one member's stats drops the individually-routed queries entirely.
    ``combine_query_stats`` (surfaced as ``BatchResult.stats``) must count
    the shared scan once and add each peeled-off query's own work.
    """

    def test_shared_scan_counted_once(self, batch_graph):
        vectors = _vectors(50, 4, seed=300)
        results = batch_base_topk(
            batch_graph, [BatchQuery(v, k=5) for v in vectors], hops=2
        )
        single = base_topk(
            batch_graph, vectors[0].values(), QuerySpec(k=5, hops=2)
        )
        combined = BatchResult(results).stats
        # NOT 4x the scan: the whole batch did one Base run's traversal.
        assert combined.edges_scanned == single.stats.edges_scanned
        assert combined.balls_expanded == single.stats.balls_expanded
        assert combined.nodes_evaluated == batch_graph.num_nodes
        assert combined.extra["num_queries"] == 4.0

    def test_mixed_routing_sums_per_query(self, batch_graph):
        sparse = BinaryRelevance(0.02, seed=310).scores(batch_graph)
        dense = ScoreVector(random_scores(50, seed=311, density=0.9))
        engine = BatchTopKEngine(batch_graph, hops=2)
        results = engine.run(
            [BatchQuery(dense, k=5), BatchQuery(sparse, k=3)]
        )
        combined = BatchResult(results).stats
        shared, backward = results[0].stats, results[1].stats
        assert combined.edges_scanned == (
            shared.edges_scanned + backward.edges_scanned
        )
        assert combined.nodes_evaluated == (
            shared.nodes_evaluated + backward.nodes_evaluated
        )
        assert combined.algorithm == "batch"

    def test_not_last_query_stats(self, batch_graph):
        """The old failure mode: batch-level reporting showed only the last
        member's counters."""
        sparse = BinaryRelevance(0.02, seed=320).scores(batch_graph)
        dense = ScoreVector(random_scores(50, seed=321, density=0.9))
        engine = BatchTopKEngine(batch_graph, hops=2)
        results = engine.run(
            [BatchQuery(dense, k=5), BatchQuery(sparse, k=3)]
        )
        combined = BatchResult(results).stats
        last = results[-1].stats
        assert combined.nodes_evaluated > last.nodes_evaluated
        assert combined.edges_scanned > last.edges_scanned

    def test_uniform_vs_mixed_labels(self, batch_graph):
        vectors = _vectors(50, 2, seed=330)
        same = combine_query_stats(
            r.stats
            for r in batch_base_topk(
                batch_graph, [BatchQuery(v, k=3) for v in vectors], hops=2
            )
        )
        assert same.aggregate == "sum"
        mixed = combine_query_stats(
            r.stats
            for r in batch_base_topk(
                batch_graph,
                [
                    BatchQuery(vectors[0], k=3, aggregate="sum"),
                    BatchQuery(vectors[1], k=3, aggregate="avg"),
                ],
                hops=2,
            )
        )
        assert mixed.aggregate == "mixed"

    def test_empty_batch_stats(self):
        combined = BatchResult([]).stats
        assert combined.nodes_evaluated == 0
        assert combined.algorithm == "batch"

    def test_elapsed_is_per_query_share(self, batch_graph):
        vectors = _vectors(50, 5, seed=340)
        results = batch_base_topk(
            batch_graph, [BatchQuery(v, k=3) for v in vectors], hops=2
        )
        combined = BatchResult(results).stats
        # Every member reports the whole-batch wall clock; the combined
        # elapsed must be one batch's, not five.
        assert combined.elapsed_sec == pytest.approx(
            results[0].stats.elapsed_sec, rel=1e-6
        )
