"""Tests for the cost-based planner and engine explain()."""

from __future__ import annotations

import pytest

from repro.core.base import base_topk
from repro.core.engine import TopKEngine
from repro.core.planner import QueryPlanner
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError
from repro.graph.generators import powerlaw_cluster
from repro.relevance import BinaryRelevance, MixtureRelevance
from tests.conftest import random_graph, random_scores, rounded


@pytest.fixture(scope="module")
def planner_graph():
    return powerlaw_cluster(400, 3, 0.5, seed=7, heavy_tail=True)


class TestPlanChoice:
    def test_sparse_binary_picks_backward(self, planner_graph):
        scores = BinaryRelevance(0.01, seed=8).scores(planner_graph).values()
        planner = QueryPlanner(planner_graph, scores, hops=2)
        plan = planner.plan(QuerySpec(k=10))
        assert plan.chosen == "backward"
        backward = plan.estimate_for("backward")
        assert backward.online_ball_expansions < planner_graph.num_nodes / 5
        assert "exact shortcut" in backward.note

    def test_all_zero_scores_backward_trivial(self, planner_graph):
        planner = QueryPlanner(planner_graph, [0.0] * 400, hops=2)
        plan = planner.plan(QuerySpec(k=5))
        assert plan.chosen == "backward"

    def test_max_falls_back_to_base(self, planner_graph):
        scores = random_scores(400, seed=9)
        planner = QueryPlanner(planner_graph, scores, hops=2)
        plan = planner.plan(QuerySpec(k=5, aggregate="max"))
        assert plan.chosen == "base"
        assert [e.algorithm for e in plan.estimates] == ["base"]

    def test_amortization_affects_forward_cost(self, planner_graph):
        scores = random_scores(400, seed=10)
        planner = QueryPlanner(planner_graph, scores, hops=2, index_available=False)
        cold = planner.plan(QuerySpec(k=5), amortize_index=False)
        warm = planner.plan(QuerySpec(k=5), amortize_index=True)
        fwd_cold = cold.estimate_for("forward").total_first_query()
        fwd_warm = warm.estimate_for("forward").total_amortized()
        assert fwd_cold > fwd_warm

    def test_index_available_zeroes_offline(self, planner_graph):
        scores = random_scores(400, seed=11)
        planner = QueryPlanner(planner_graph, scores, hops=2, index_available=True)
        plan = planner.plan(QuerySpec(k=5))
        assert plan.estimate_for("forward").offline_ball_expansions == 0.0

    def test_hops_mismatch_rejected(self, planner_graph):
        planner = QueryPlanner(planner_graph, [0.0] * 400, hops=2)
        with pytest.raises(InvalidParameterError):
            planner.plan(QuerySpec(k=5, hops=1))

    def test_explain_text(self, planner_graph):
        scores = BinaryRelevance(0.02, seed=12).scores(planner_graph).values()
        planner = QueryPlanner(planner_graph, scores, hops=2)
        text = planner.plan(QuerySpec(k=7)).explain()
        assert "chosen algorithm" in text
        assert "->" in text
        assert "base" in text and "backward" in text

    def test_estimate_for_unknown(self, planner_graph):
        planner = QueryPlanner(planner_graph, [0.0] * 400, hops=2)
        plan = planner.plan(QuerySpec(k=5))
        with pytest.raises(InvalidParameterError):
            plan.estimate_for("quantum")


class TestEngineIntegration:
    def test_engine_explain(self, planner_graph):
        engine = TopKEngine(planner_graph, BinaryRelevance(0.01, seed=13), hops=2)
        plan = engine.explain(10, "sum")
        assert plan.chosen in ("base", "forward", "backward")

    def test_planned_execution_is_correct(self):
        g = random_graph(50, 0.1, seed=14)
        scores = random_scores(50, seed=15)
        engine = TopKEngine(g, scores, hops=2)
        result = engine.topk(6, "sum", "planned")
        expected = base_topk(g, scores, QuerySpec(k=6))
        assert rounded(result.values) == rounded(expected.values)

    def test_planner_rebuilt_after_index_build(self, planner_graph):
        engine = TopKEngine(
            planner_graph, MixtureRelevance(0.01, zero_fraction=0.0, seed=16), hops=2
        )
        cold_plan = engine.explain(10, "sum", amortize_index=False)
        engine.build_indexes()
        warm_plan = engine.explain(10, "sum", amortize_index=False)
        cold_forward = cold_plan.estimate_for("forward").offline_ball_expansions
        warm_forward = warm_plan.estimate_for("forward").offline_ball_expansions
        assert cold_forward > 0.0
        assert warm_forward == 0.0
