"""Tests for the column-store Table."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.relational.table import Table


class TestConstruction:
    def test_from_columns(self):
        t = Table({"a": [1, 2], "b": ["x", "y"]})
        assert t.num_rows == 2
        assert t.column_names == ["a", "b"]

    def test_ragged_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1, 2], "b": [1]})

    def test_no_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table({})

    def test_from_rows(self):
        t = Table.from_rows(["a", "b"], [(1, "x"), (2, "y")])
        assert t.column("a") == [1, 2]
        assert t.column("b") == ["x", "y"]

    def test_from_rows_arity_checked(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["a", "b"], [(1,)])

    def test_from_rows_duplicate_names(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["a", "a"], [(1, 2)])

    def test_empty(self):
        t = Table.empty(["a", "b"])
        assert t.num_rows == 0
        assert len(t) == 0


class TestAccess:
    def test_unknown_column(self):
        t = Table({"a": [1]})
        with pytest.raises(SchemaError):
            t.column("z")

    def test_row_and_iter(self):
        t = Table({"a": [1, 2], "b": [10, 20]})
        assert t.row(1) == (2, 20)
        assert list(t.iter_rows()) == [(1, 10), (2, 20)]

    def test_has_column(self):
        t = Table({"a": [1]})
        assert t.has_column("a")
        assert not t.has_column("b")

    def test_to_rows(self):
        t = Table({"a": [3, 4]})
        assert t.to_rows() == [(3,), (4,)]


class TestSchemaOps:
    def test_project(self):
        t = Table({"a": [1], "b": [2], "c": [3]})
        p = t.project(["c", "a"])
        assert p.column_names == ["c", "a"]
        assert p.row(0) == (3, 1)

    def test_project_unknown(self):
        t = Table({"a": [1]})
        with pytest.raises(SchemaError):
            t.project(["zzz"])

    def test_rename(self):
        t = Table({"a": [1], "b": [2]})
        r = t.rename({"a": "x"})
        assert r.column_names == ["x", "b"]
        assert r.column("x") == [1]

    def test_rename_unknown(self):
        t = Table({"a": [1]})
        with pytest.raises(SchemaError):
            t.rename({"q": "x"})

    def test_rename_collision(self):
        t = Table({"a": [1], "b": [2]})
        with pytest.raises(SchemaError):
            t.rename({"a": "b"})
