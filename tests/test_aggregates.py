"""Tests for aggregate functions and distance-weighted aggregation."""

from __future__ import annotations

import pytest

from repro.aggregates.functions import (
    AggregateKind,
    coerce_aggregate,
    evaluate_scores,
    finalize_sum,
)
from repro.aggregates.weighted import (
    exponential_decay,
    inverse_distance,
    precompute_weights,
    uniform_weight,
    weighted_ball_sum,
)
from repro.errors import InvalidParameterError
from tests.conftest import random_graph, random_scores, ref_ball


class TestAggregateKind:
    def test_coerce_strings(self):
        assert coerce_aggregate("sum") is AggregateKind.SUM
        assert coerce_aggregate("AVG") is AggregateKind.AVG
        assert coerce_aggregate(AggregateKind.MIN) is AggregateKind.MIN

    def test_coerce_unknown(self):
        with pytest.raises(InvalidParameterError):
            coerce_aggregate("median")

    def test_sum_convertible_partition(self):
        convertible = {k for k in AggregateKind if k.sum_convertible}
        assert convertible == {
            AggregateKind.SUM,
            AggregateKind.AVG,
            AggregateKind.COUNT,
        }

    def test_lona_supported(self):
        assert AggregateKind.SUM.lona_supported
        assert not AggregateKind.MAX.lona_supported


class TestFinalizeAndEvaluate:
    def test_finalize_sum(self):
        assert finalize_sum(AggregateKind.SUM, 4.5, 9) == 4.5

    def test_finalize_avg(self):
        assert finalize_sum(AggregateKind.AVG, 4.5, 9) == 0.5

    def test_finalize_avg_empty_ball(self):
        assert finalize_sum(AggregateKind.AVG, 0.0, 0) == 0.0

    def test_finalize_rejects_max(self):
        with pytest.raises(InvalidParameterError):
            finalize_sum(AggregateKind.MAX, 1.0, 2)

    def test_evaluate_all_kinds(self):
        values = [0.0, 0.5, 1.0]
        assert evaluate_scores(AggregateKind.SUM, values) == 1.5
        assert evaluate_scores(AggregateKind.AVG, values) == 0.5
        assert evaluate_scores(AggregateKind.COUNT, values) == 2.0
        assert evaluate_scores(AggregateKind.MAX, values) == 1.0
        assert evaluate_scores(AggregateKind.MIN, values) == 0.0

    def test_evaluate_empty(self):
        assert evaluate_scores(AggregateKind.AVG, []) == 0.0
        assert evaluate_scores(AggregateKind.MAX, []) == 0.0


class TestDecayProfiles:
    def test_inverse_distance(self):
        assert inverse_distance(0) == 1.0
        assert inverse_distance(1) == 1.0
        assert inverse_distance(2) == 0.5
        assert inverse_distance(4) == 0.25

    def test_exponential_decay(self):
        profile = exponential_decay(0.5)
        assert profile(0) == 1.0
        assert profile(2) == 0.25

    def test_exponential_validation(self):
        with pytest.raises(InvalidParameterError):
            exponential_decay(0.0)
        with pytest.raises(InvalidParameterError):
            exponential_decay(1.5)

    def test_uniform(self):
        assert uniform_weight(5) == 1.0

    def test_precompute_validates_range(self):
        with pytest.raises(InvalidParameterError):
            precompute_weights(lambda d: 2.0, 2)


class TestWeightedBallSum:
    def test_path_inverse_distance(self, path_graph):
        scores = [0.0, 1.0, 0.0, 1.0, 0.0]
        # From node 1 with h=2: itself (w=1) at d0, nodes 0,2 at d1 (w=1),
        # node 3 at d2 (w=0.5).
        value = weighted_ball_sum(path_graph, scores, 1, 2)
        assert value == pytest.approx(1.0 + 0.5)

    def test_uniform_weight_equals_plain_sum(self):
        g = random_graph(30, 0.15, seed=91)
        scores = random_scores(30, seed=92)
        for u in range(0, 30, 7):
            plain = sum(scores[v] for v in ref_ball(g, u, 2))
            weighted = weighted_ball_sum(g, scores, u, 2, uniform_weight)
            assert weighted == pytest.approx(plain)

    def test_weighted_never_exceeds_plain(self):
        g = random_graph(30, 0.15, seed=93)
        scores = random_scores(30, seed=94)
        for u in range(0, 30, 5):
            plain = sum(scores[v] for v in ref_ball(g, u, 2))
            weighted = weighted_ball_sum(g, scores, u, 2)
            assert weighted <= plain + 1e-12

    def test_open_ball(self, star_graph):
        scores = [1.0, 0.5, 0.0, 0.0, 0.0, 0.0]
        value = weighted_ball_sum(
            star_graph, scores, 0, 1, include_self=False
        )
        assert value == pytest.approx(0.5)
