"""Tests for the repro-check static-analysis suite (repro.analysis).

Each rule gets a failing and a passing fixture tree built under tmp_path
with a small :class:`~repro.analysis.project.AnalysisConfig` pointing at
it; the suite's own acceptance bar — the live tree analyses clean — is a
test here too, so a regression in any checked invariant fails the normal
test run as well as the CI repro-check job.

The suite is dependency-free by design; none of these tests need numpy.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    BASELINE_NAME,
    all_checkers,
    load_baseline,
    render_json,
    render_text,
    run_checkers,
    write_baseline,
)
from repro.analysis.project import AnalysisConfig, HotModule, LockContract
from repro.analysis.rules.rc001_deadline import DeadlineCoverage
from repro.analysis.rules.rc002_locks import LockDiscipline
from repro.analysis.rules.rc003_backends import BackendRegistryParity
from repro.analysis.rules.rc004_wire import WireCodeExhaustiveness
from repro.analysis.rules.rc005_spawn import SpawnFrameSafety
from repro.analysis.rules.rc006_njit import NjitPurity
from repro.analysis.rules.rc007_faults import FaultPointHygiene

REPO_ROOT = __file__.rsplit("/tests/", 1)[0]


def _tree(tmp_path, files):
    for rel, body in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body), encoding="utf-8")
    return tmp_path


def _run(root, checker):
    return run_checkers(root, checkers=[checker])


# ----------------------------------------------------------------------
# RC001 deadline coverage
# ----------------------------------------------------------------------
class TestRC001:
    CFG = AnalysisConfig(
        hot_paths={
            "mod.py": HotModule(
                functions=frozenset({"scan"}),
                delegates=frozenset({"_round"}),
            )
        },
        expansion_primitives=frozenset({"hop_ball"}),
    )

    def test_unpolled_expansion_loop_is_flagged(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            def scan(centers):
                out = []
                for c in centers:
                    out.append(hop_ball(c))
                return out
        """})
        report = _run(tmp_path, DeadlineCoverage(self.CFG))
        assert [f.rule for f in report.active] == ["RC001"]
        assert "scan" in report.active[0].message

    def test_polled_loop_passes(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            def scan(centers):
                out = []
                for c in centers:
                    check_deadline()
                    out.append(hop_ball(c))
                return out
        """})
        report = _run(tmp_path, DeadlineCoverage(self.CFG))
        assert report.active == []

    def test_delegating_loop_passes(self, tmp_path):
        # The loop expands (hop_ball) but calls the declared polling
        # delegate, which checks the deadline on its behalf.
        _tree(tmp_path, {"mod.py": """
            def scan(rounds):
                for r in rounds:
                    _round(hop_ball(r))
        """})
        report = _run(tmp_path, DeadlineCoverage(self.CFG))
        assert report.active == []

    def test_nested_loop_without_primitive_still_needs_poll(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            def scan(blocks):
                for block in blocks:
                    for item in block:
                        item.work()
        """})
        report = _run(tmp_path, DeadlineCoverage(self.CFG))
        assert len(report.active) == 1

    def test_bookkeeping_loop_is_exempt(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            def scan(pairs):
                total = 0
                for a, b in pairs:
                    total += a * b
                return total
        """})
        report = _run(tmp_path, DeadlineCoverage(self.CFG))
        assert report.active == []

    def test_unlisted_function_calling_primitive_is_flagged(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            def scan(centers):
                for c in centers:
                    check_deadline()
                    hop_ball(c)

            def sneaky(c):
                return hop_ball(c)
        """})
        report = _run(tmp_path, DeadlineCoverage(self.CFG))
        assert len(report.active) == 1
        assert "sneaky" in report.active[0].message

    def test_declared_helper_is_exempt(self, tmp_path):
        cfg = AnalysisConfig(
            hot_paths={
                "mod.py": HotModule(helpers=frozenset({"_block_helper"}))
            },
            expansion_primitives=frozenset({"hop_ball"}),
        )
        _tree(tmp_path, {"mod.py": """
            def _block_helper(c):
                return hop_ball(c)
        """})
        report = _run(tmp_path, DeadlineCoverage(cfg))
        assert report.active == []

    def test_map_rot_is_a_finding(self, tmp_path):
        _tree(tmp_path, {"mod.py": "x = 1\n"})
        report = _run(tmp_path, DeadlineCoverage(self.CFG))
        assert len(report.active) == 1
        assert "'scan'" in report.active[0].message


# ----------------------------------------------------------------------
# RC002 lock discipline
# ----------------------------------------------------------------------
class TestRC002:
    CFG = AnalysisConfig(
        lock_contracts={
            "mod.py": LockContract(
                mutators={"Store": ("put", "clear")},
                locks=frozenset({"_lock"}),
            )
        }
    )

    def test_bare_mutator_is_flagged(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            class Store:
                def put(self, k, v):
                    with self._lock:
                        self._d[k] = v

                def clear(self):
                    self._d.clear()
        """})
        report = _run(tmp_path, LockDiscipline(self.CFG))
        assert len(report.active) == 1
        assert "Store.clear" in report.active[0].message

    def test_locked_and_delegating_mutators_pass(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            class Store:
                def put(self, k, v):
                    with self._lock:
                        self._d[k] = v

                def clear(self):
                    self.put(None, None)
        """})
        report = _run(tmp_path, LockDiscipline(self.CFG))
        assert report.active == []

    def test_missing_method_is_map_rot(self, tmp_path):
        _tree(tmp_path, {"mod.py": """
            class Store:
                def put(self, k, v):
                    with self._lock:
                        self._d[k] = v
        """})
        report = _run(tmp_path, LockDiscipline(self.CFG))
        assert len(report.active) == 1
        assert "no longer exists" in report.active[0].message


# ----------------------------------------------------------------------
# RC003 backend-registry parity
# ----------------------------------------------------------------------
class TestRC003:
    CFG = AnalysisConfig(
        backends_module="backends.py",
        planner_module="planner.py",
        cli_module="cli.py",
        executor_module="executor.py",
        readme="README.md",
    )

    GOOD = {
        "backends.py": 'BACKENDS = ("auto", "python", "numpy")\n',
        "planner.py": """
            BACKEND_COST_FACTORS = {"python": 1.0, "numpy": 0.2}
            BACKEND_FIXED_COSTS = {"python": 0.0, "numpy": 0.1}
        """,
        "cli.py": """
            def build(parser):
                parser.add_argument(
                    "--backend", choices=("auto", "python", "numpy")
                )
        """,
        "executor.py": """
            def pick(name):
                if name == "python":
                    return 1
                if name == "numpy":
                    return 2
        """,
        "README.md": """
            | backend    | substrate |
            |------------|-----------|
            | `"python"` | loops     |
            | `"numpy"`  | arrays    |
        """,
    }

    def test_consistent_mirrors_pass(self, tmp_path):
        _tree(tmp_path, self.GOOD)
        report = _run(tmp_path, BackendRegistryParity(self.CFG))
        assert report.active == []

    def test_each_mirror_drift_is_flagged(self, tmp_path):
        files = dict(
            self.GOOD,
            **{
                "backends.py": (
                    'BACKENDS = ("auto", "python", "numpy", "gpu")\n'
                )
            },
        )
        _tree(tmp_path, files)
        report = _run(tmp_path, BackendRegistryParity(self.CFG))
        paths = sorted({f.path for f in report.active})
        # Unknown backend 'gpu' must surface in every mirror.
        assert paths == ["README.md", "cli.py", "executor.py", "planner.py"]

    def test_stale_planner_key_is_flagged(self, tmp_path):
        files = dict(
            self.GOOD,
            **{
                "planner.py": """
                    BACKEND_COST_FACTORS = {
                        "python": 1.0, "numpy": 0.2, "fortran": 9.9
                    }
                    BACKEND_FIXED_COSTS = {"python": 0.0, "numpy": 0.1}
                """
            },
        )
        _tree(tmp_path, files)
        report = _run(tmp_path, BackendRegistryParity(self.CFG))
        assert any("'fortran'" in f.message for f in report.active)


# ----------------------------------------------------------------------
# RC004 wire-code exhaustiveness
# ----------------------------------------------------------------------
class TestRC004:
    CFG = AnalysisConfig(
        errors_module="errors.py", protocol_module="protocol.py"
    )

    GOOD = {
        "errors.py": """
            class ReproError(Exception):
                code = "error"

            class AlphaError(ReproError):
                code = "alpha"

            class BetaError(AlphaError):
                code = "beta"
        """,
        "protocol.py": """
            from errors import AlphaError

            _STATUS_BY_CLASS = (
                (AlphaError, 400),
            )
        """,
    }

    def test_complete_taxonomy_passes(self, tmp_path):
        _tree(tmp_path, self.GOOD)
        report = _run(tmp_path, WireCodeExhaustiveness(self.CFG))
        assert report.active == []

    def test_inherited_code_is_flagged(self, tmp_path):
        files = dict(self.GOOD)
        files["errors.py"] = files["errors.py"].replace(
            '    code = "beta"\n', "    pass\n"
        )
        _tree(tmp_path, files)
        report = _run(tmp_path, WireCodeExhaustiveness(self.CFG))
        assert any(
            "BetaError" in f.message and "own string" in f.message
            for f in report.active
        )

    def test_duplicate_code_is_flagged(self, tmp_path):
        files = dict(self.GOOD)
        files["errors.py"] = files["errors.py"].replace(
            'code = "beta"', 'code = "alpha"'
        )
        _tree(tmp_path, files)
        report = _run(tmp_path, WireCodeExhaustiveness(self.CFG))
        assert any("reuses wire code" in f.message for f in report.active)

    def test_unmapped_class_is_flagged(self, tmp_path):
        files = dict(self.GOOD)
        files["errors.py"] = """
            class ReproError(Exception):
                code = "error"

            class AlphaError(ReproError):
                code = "alpha"

            class BetaError(AlphaError):
                code = "beta"

            class GammaError(ReproError):
                code = "gamma"
        """
        _tree(tmp_path, files)
        report = _run(tmp_path, WireCodeExhaustiveness(self.CFG))
        assert any(
            "GammaError" in f.message and "500" in f.message
            for f in report.active
        )

    def test_stale_map_entry_is_flagged(self, tmp_path):
        files = dict(self.GOOD)
        files["protocol.py"] = """
            _STATUS_BY_CLASS = (
                (AlphaError, 400),
                (GhostError, 400),
            )
        """
        _tree(tmp_path, files)
        report = _run(tmp_path, WireCodeExhaustiveness(self.CFG))
        assert any("GhostError" in f.message for f in report.active)


# ----------------------------------------------------------------------
# RC005 spawn/frame safety
# ----------------------------------------------------------------------
class TestRC005:
    CFG = AnalysisConfig(dispatch_modules=("dispatch.py",))

    def test_lambda_in_payload_is_flagged(self, tmp_path):
        _tree(tmp_path, {"dispatch.py": """
            def send_task(peer, spec):
                peer.send({"task": spec, "score": lambda x: x + 1})
        """})
        report = _run(tmp_path, SpawnFrameSafety(self.CFG))
        assert len(report.active) == 1
        assert "lambda" in report.active[0].message

    def test_closure_through_local_assignment_is_flagged(self, tmp_path):
        _tree(tmp_path, {"dispatch.py": """
            def run(pool, items):
                def build():
                    return items

                payload = {"builder": build}
                pool.send(payload)
        """})
        report = _run(tmp_path, SpawnFrameSafety(self.CFG))
        assert len(report.active) == 1
        assert "'build'" in report.active[0].message

    def test_generator_payload_is_flagged(self, tmp_path):
        _tree(tmp_path, {"dispatch.py": """
            def ship(sock, rows):
                write_frame(sock, (r for r in rows))
        """})
        report = _run(tmp_path, SpawnFrameSafety(self.CFG))
        assert len(report.active) == 1

    def test_plain_data_payload_passes(self, tmp_path):
        _tree(tmp_path, {"dispatch.py": """
            def send_task(peer, spec, task_id):
                frame = {"type": "task", "task_id": task_id, "task": spec}
                peer.send(frame)

            def helper(items):
                # a nested def not referenced by any sink is fine
                def local():
                    return items

                return local()
        """})
        report = _run(tmp_path, SpawnFrameSafety(self.CFG))
        assert report.active == []


# ----------------------------------------------------------------------
# RC006 njit purity
# ----------------------------------------------------------------------
class TestRC006:
    CFG = AnalysisConfig(kernels_module="kernels.py")

    def test_clean_kernel_passes(self, tmp_path):
        _tree(tmp_path, {"kernels.py": """
            @njit(cache=True)
            def aggregate(indptr, indices, out):
                '''Docstrings are allowed (and stripped before checking).'''
                total = 0.0
                for i in range(len(indices)):
                    if indices[i] >= 0:
                        total += indices[i]
                out.sort()
                return total
        """})
        report = _run(tmp_path, NjitPurity(self.CFG))
        assert report.active == []

    @pytest.mark.parametrize(
        "body,needle",
        [
            ("    x = [i for i in range(3)]\n", "list comprehension"),
            ("    d = {}\n", "dict literal"),
            ("    s = f'{1}'\n", "f-string"),
            ("    with open('f'):\n        pass\n", "`with` block"),
            ("    try:\n        pass\n    except Exception:\n        pass\n", "`try` block"),
            ("    assert True\n", "`assert`"),
            ("    print(1)\n", "print()"),
            ("    y = x.mean()\n", ".mean()"),
        ],
    )
    def test_banned_constructs_are_flagged(self, tmp_path, body, needle):
        _tree(
            tmp_path,
            {"kernels.py": "@njit\ndef kernel(x):\n" + body + "    return 0\n"},
        )
        report = _run(tmp_path, NjitPurity(self.CFG))
        assert report.active, f"expected a finding for: {body!r}"
        assert any(needle in f.message for f in report.active)

    def test_undecorated_functions_are_not_checked(self, tmp_path):
        _tree(tmp_path, {"kernels.py": """
            @njit
            def kernel(x):
                return abs(x)

            def glue(x):
                return {"wrapped": [kernel(v) for v in x]}
        """})
        report = _run(tmp_path, NjitPurity(self.CFG))
        assert report.active == []

    def test_missing_kernels_are_a_finding(self, tmp_path):
        _tree(tmp_path, {"kernels.py": "def plain(x):\n    return x\n"})
        report = _run(tmp_path, NjitPurity(self.CFG))
        assert len(report.active) == 1
        assert "no @njit" in report.active[0].message


# ----------------------------------------------------------------------
# RC007 fault-point hygiene
# ----------------------------------------------------------------------
class TestRC007:
    CFG = AnalysisConfig(
        fault_points={"net.send": "net.py", "net.recv": "net.py"},
        faults_package="faults",
        source_root=".",
    )

    def test_registered_literal_points_pass(self, tmp_path):
        _tree(tmp_path, {"net.py": """
            def ship(data):
                fault_point("net.send", peer=0)
                return fault_frame("net.recv", data)
        """})
        report = _run(tmp_path, FaultPointHygiene(self.CFG))
        assert report.active == []

    def test_computed_name_is_flagged(self, tmp_path):
        _tree(tmp_path, {"net.py": """
            def ship(data, name):
                fault_point("net." + name)
                fault_point("net.send")
                fault_frame("net.recv", data)
        """})
        report = _run(tmp_path, FaultPointHygiene(self.CFG))
        assert len(report.active) == 1
        assert "string literal" in report.active[0].message

    def test_unregistered_name_is_flagged(self, tmp_path):
        _tree(tmp_path, {"net.py": """
            def ship(data):
                fault_point("net.send")
                fault_point("net.mystery")
                fault_frame("net.recv", data)
        """})
        report = _run(tmp_path, FaultPointHygiene(self.CFG))
        assert len(report.active) == 1
        assert "not registered" in report.active[0].message

    def test_duplicate_declaration_is_flagged(self, tmp_path):
        _tree(tmp_path, {"net.py": """
            def ship(data):
                fault_point("net.send")
                fault_frame("net.recv", data)

            def ship_again():
                fault_point("net.send")
        """})
        report = _run(tmp_path, FaultPointHygiene(self.CFG))
        assert len(report.active) == 1
        assert "more than once" in report.active[0].message

    def test_rotted_registration_is_flagged(self, tmp_path):
        _tree(tmp_path, {"net.py": """
            def ship(data):
                fault_point("net.send")
        """})
        report = _run(tmp_path, FaultPointHygiene(self.CFG))
        assert len(report.active) == 1
        assert "no longer declared" in report.active[0].message
        assert "net.recv" in report.active[0].message

    def test_production_install_plan_is_flagged(self, tmp_path):
        _tree(tmp_path, {
            "net.py": """
                def ship(data):
                    fault_point("net.send")
                    fault_frame("net.recv", data)
            """,
            "sneaky.py": """
                from faults import install_plan

                def enable():
                    install_plan(object())
            """,
            "faults/plan.py": """
                def _bootstrap():
                    install_plan(None)  # the package itself may
            """,
        })
        report = _run(tmp_path, FaultPointHygiene(self.CFG))
        assert len(report.active) == 1
        assert report.active[0].path.endswith("sneaky.py")
        assert "never install" in report.active[0].message


# ----------------------------------------------------------------------
# Framework: suppressions, baseline, reporters, registry
# ----------------------------------------------------------------------
class TestFramework:
    CFG = TestRC005.CFG

    BAD = {"dispatch.py": """
        def send_task(peer, spec):
            peer.send({"score": lambda x: x})
    """}

    def test_inline_suppression_waives(self, tmp_path):
        _tree(tmp_path, {"dispatch.py": """
            def send_task(peer, spec):
                # repro: allow[RC005] test double, never crosses a boundary
                peer.send({"score": lambda x: x})
        """})
        report = _run(tmp_path, SpawnFrameSafety(self.CFG))
        assert report.active == []
        assert len(report.waived) == 1
        assert report.exit_code == 0

    def test_suppression_for_another_rule_does_not_waive(self, tmp_path):
        _tree(tmp_path, {"dispatch.py": """
            def send_task(peer, spec):
                # repro: allow[RC001]
                peer.send({"score": lambda x: x})
        """})
        report = _run(tmp_path, SpawnFrameSafety(self.CFG))
        assert len(report.active) == 1
        assert report.exit_code == 1

    def test_baseline_grandfathers_and_expires(self, tmp_path):
        _tree(tmp_path, self.BAD)
        checker = SpawnFrameSafety(self.CFG)
        first = _run(tmp_path, checker)
        assert len(first.active) == 1

        baseline_path = tmp_path / BASELINE_NAME
        write_baseline(
            baseline_path, (f.fingerprint() for f in first.active)
        )
        second = run_checkers(
            tmp_path,
            checkers=[SpawnFrameSafety(self.CFG)],
            baseline=load_baseline(baseline_path),
        )
        assert second.active == []
        assert len(second.baselined) == 1
        assert second.exit_code == 0

        # A *new* violation is not covered by the old baseline.
        (tmp_path / "dispatch.py").write_text(
            textwrap.dedent(self.BAD["dispatch.py"])
            + textwrap.dedent("""
                def other(peer):
                    peer.send({"gen": (x for x in ())})
            """),
            encoding="utf-8",
        )
        third = run_checkers(
            tmp_path,
            checkers=[SpawnFrameSafety(self.CFG)],
            baseline=load_baseline(baseline_path),
        )
        assert len(third.active) == 1
        assert "generator" in third.active[0].message

    def test_baseline_fingerprint_is_line_independent(self, tmp_path):
        _tree(tmp_path, self.BAD)
        first = _run(tmp_path, SpawnFrameSafety(self.CFG))
        baseline = {f.fingerprint() for f in first.active}

        # Shift the finding down the file; the fingerprint must not move.
        (tmp_path / "dispatch.py").write_text(
            "# a new leading comment\n\n"
            + textwrap.dedent(self.BAD["dispatch.py"]),
            encoding="utf-8",
        )
        shifted = run_checkers(
            tmp_path, checkers=[SpawnFrameSafety(self.CFG)], baseline=baseline
        )
        assert shifted.active == []
        assert len(shifted.baselined) == 1

    def test_reporters(self, tmp_path):
        _tree(tmp_path, self.BAD)
        report = _run(tmp_path, SpawnFrameSafety(self.CFG))
        text = render_text(report)
        assert "dispatch.py" in text and "RC005" in text
        payload = json.loads(render_json(report))
        assert payload["counts"]["active"] == 1
        assert payload["findings"][0]["rule"] == "RC005"
        assert payload["exit_code"] == 1

    def test_registry_is_complete_and_ordered(self):
        rules = [cls.rule for cls in all_checkers()]
        assert rules == [
            "RC001", "RC002", "RC003", "RC004", "RC005", "RC006", "RC007",
        ]


# ----------------------------------------------------------------------
# The acceptance bar: the live tree analyses clean
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_live_tree_has_no_active_findings(self):
        report = run_checkers(REPO_ROOT)
        assert report.active == [], "\n" + "\n".join(
            f.render() for f in report.active
        )

    def test_cli_check_exits_zero_on_live_tree(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--root", REPO_ROOT]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK repro-check:")
