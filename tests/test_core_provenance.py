"""Tests for answer provenance (explain_node)."""

from __future__ import annotations

import pytest

from repro.aggregates.weighted import inverse_distance
from repro.core.base import base_topk
from repro.core.provenance import explain_node
from repro.core.query import QuerySpec
from repro.core.weighted import weighted_base_topk
from repro.errors import InvalidParameterError
from tests.conftest import random_graph, random_scores


class TestDecomposition:
    def test_contributions_sum_to_reported_value(self):
        g = random_graph(40, 0.1, seed=301)
        scores = random_scores(40, seed=302)
        result = base_topk(g, scores, QuerySpec(k=5, hops=2))
        for node, value in result.entries:
            explanation = explain_node(g, scores, node, hops=2)
            assert explanation.value == pytest.approx(value)
            assert sum(c.amount for c in explanation.contributions) == pytest.approx(
                value
            )

    def test_avg_decomposition(self):
        g = random_graph(30, 0.15, seed=303)
        scores = random_scores(30, seed=304)
        result = base_topk(g, scores, QuerySpec(k=3, hops=2, aggregate="avg"))
        node, value = result.top()
        explanation = explain_node(g, scores, node, hops=2, aggregate="avg")
        assert explanation.value == pytest.approx(value)

    def test_count_decomposition(self, star_graph):
        scores = [0.0, 0.4, 0.0, 0.9, 0.0, 0.0]
        explanation = explain_node(
            star_graph, scores, 0, hops=1, aggregate="count"
        )
        assert explanation.value == 2.0
        assert all(c.score in (0.0, 1.0) for c in explanation.contributions)

    def test_weighted_decomposition_matches_weighted_query(self):
        g = random_graph(30, 0.12, seed=305)
        scores = random_scores(30, seed=306)
        result = weighted_base_topk(
            g, scores, QuerySpec(k=3, hops=2), inverse_distance
        )
        node, value = result.top()
        explanation = explain_node(
            g, scores, node, hops=2, profile=inverse_distance
        )
        assert explanation.value == pytest.approx(value)

    def test_by_distance_totals(self, path_graph):
        scores = [1.0, 0.0, 0.5, 0.0, 1.0]
        explanation = explain_node(path_graph, scores, 2, hops=2)
        assert explanation.by_distance[0] == pytest.approx(0.5)
        assert explanation.by_distance[1] == pytest.approx(0.0)
        assert explanation.by_distance[2] == pytest.approx(2.0)

    def test_top_contributors_sorted(self):
        g = random_graph(30, 0.15, seed=307)
        scores = random_scores(30, seed=308)
        explanation = explain_node(g, scores, 0, hops=2)
        top = explanation.top_contributors(4)
        amounts = [c.amount for c in top]
        assert amounts == sorted(amounts, reverse=True)

    def test_describe_output(self, star_graph):
        scores = [0.2, 1.0, 0.0, 0.0, 0.0, 0.4]
        text = explain_node(star_graph, scores, 0, hops=1).describe()
        assert "node 0" in text
        assert "top contributors" in text

    def test_open_ball(self, star_graph):
        scores = [1.0, 0.5, 0.0, 0.0, 0.0, 0.0]
        explanation = explain_node(
            star_graph, scores, 0, hops=1, include_self=False
        )
        assert explanation.value == pytest.approx(0.5)
        assert all(c.node != 0 for c in explanation.contributions)

    def test_max_rejected(self, star_graph):
        with pytest.raises(InvalidParameterError):
            explain_node(star_graph, [0.1] * 6, 0, aggregate="max")

    def test_weighted_avg_rejected(self, star_graph):
        with pytest.raises(InvalidParameterError):
            explain_node(
                star_graph,
                [0.1] * 6,
                0,
                aggregate="avg",
                profile=inverse_distance,
            )
