"""Tests for the TopKEngine facade and convenience functions."""

from __future__ import annotations

import pytest

from repro.core.base import base_topk
from repro.core.engine import TopKEngine, topk_avg, topk_sum
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError, RelevanceError
from repro.graph.generators import powerlaw_cluster
from repro.relevance import BinaryRelevance, ScoreVector
from tests.conftest import random_graph, random_scores, rounded


@pytest.fixture
def engine_graph():
    return random_graph(50, 0.1, seed=71)


@pytest.fixture
def engine_scores():
    return random_scores(50, seed=72)


class TestConstruction:
    def test_accepts_score_vector(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, ScoreVector(engine_scores))
        assert engine.scores.density > 0

    def test_accepts_plain_sequence(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        assert len(engine.scores) == 50

    def test_accepts_relevance_function(self, engine_graph):
        engine = TopKEngine(engine_graph, BinaryRelevance(0.1, seed=73))
        assert engine.scores.is_binary

    def test_rejects_wrong_length(self, engine_graph):
        with pytest.raises(RelevanceError):
            TopKEngine(engine_graph, [0.5] * 10)

    def test_rejects_out_of_range(self, engine_graph):
        with pytest.raises(RelevanceError):
            TopKEngine(engine_graph, [2.0] * 50)


class TestIndexLifecycle:
    def test_build_indexes_once(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        first = engine.build_indexes()
        assert first > 0.0
        assert engine.build_indexes() == 0.0
        assert engine.diff_index is not None

    def test_size_index_estimated_by_default(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        idx = engine.size_index()
        assert not idx.is_exact

    def test_size_index_exact_on_request(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        idx = engine.size_index(exact=True)
        assert idx.is_exact

    def test_size_index_upgrades_after_build(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        engine.build_indexes()
        assert engine.size_index().is_exact


class TestQueries:
    @pytest.mark.parametrize("algorithm", ["base", "forward", "backward"])
    @pytest.mark.parametrize("aggregate", ["sum", "avg"])
    def test_all_paths_agree(self, engine_graph, engine_scores, algorithm, aggregate):
        engine = TopKEngine(engine_graph, engine_scores)
        expected = base_topk(
            engine_graph, engine_scores, QuerySpec(k=6, aggregate=aggregate)
        )
        result = engine.topk(6, aggregate, algorithm)
        assert rounded(result.values) == rounded(expected.values)
        assert result.stats.algorithm == algorithm

    def test_max_via_base(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        result = engine.topk(3, "max", "auto")
        assert result.stats.algorithm == "base"

    def test_unknown_algorithm(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        with pytest.raises(InvalidParameterError):
            engine.topk(3, "sum", "sideways")

    def test_unknown_option_rejected(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        with pytest.raises(InvalidParameterError):
            engine.topk(3, "sum", "backward", nonsense=1)

    def test_backward_options_forwarded(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        result = engine.topk(3, "sum", "backward", gamma=0.5)
        assert result.stats.extra["gamma"] == 0.5

    def test_backward_exact_sizes_option(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        result = engine.topk(3, "sum", "backward", exact_sizes=True)
        assert rounded(result.values) == rounded(
            base_topk(engine_graph, engine_scores, QuerySpec(k=3)).values
        )

    def test_forward_ordering_option(self, engine_graph, engine_scores):
        engine = TopKEngine(engine_graph, engine_scores)
        result = engine.topk(3, "sum", "forward", ordering="degree")
        assert result.stats.extra["ordering"] == "degree"

    def test_hops_respected(self, engine_graph, engine_scores):
        engine1 = TopKEngine(engine_graph, engine_scores, hops=1)
        engine2 = TopKEngine(engine_graph, engine_scores, hops=2)
        r1 = engine1.topk(3, "sum", "base")
        r2 = engine2.topk(3, "sum", "base")
        assert r1.values[0] <= r2.values[0]


class TestAutoSelection:
    def test_sparse_picks_backward(self):
        g = powerlaw_cluster(200, 3, 0.5, seed=74)
        engine = TopKEngine(g, BinaryRelevance(0.05, seed=75))
        result = engine.topk(5, "sum", "auto")
        assert result.stats.algorithm == "backward"

    def test_dense_without_index_picks_base(self, engine_graph):
        engine = TopKEngine(engine_graph, [0.9] * 50)
        result = engine.topk(5, "sum", "auto")
        assert result.stats.algorithm == "base"

    def test_dense_with_index_picks_forward(self, engine_graph):
        engine = TopKEngine(engine_graph, [0.9] * 50)
        engine.build_indexes()
        result = engine.topk(5, "sum", "auto")
        assert result.stats.algorithm == "forward"


class TestConvenience:
    def test_topk_sum(self, engine_graph, engine_scores):
        result = topk_sum(engine_graph, engine_scores, 4)
        expected = base_topk(engine_graph, engine_scores, QuerySpec(k=4))
        assert rounded(result.values) == rounded(expected.values)

    def test_topk_avg(self, engine_graph, engine_scores):
        result = topk_avg(engine_graph, engine_scores, 4, algorithm="base")
        expected = base_topk(
            engine_graph, engine_scores, QuerySpec(k=4, aggregate="avg")
        )
        assert rounded(result.values) == rounded(expected.values)
