"""The compiled kernel tier: availability ladder, parity, and the leaner
parallel round it feeds.

The native backend is import-or-decline like numpy (see
:mod:`repro.core.backends`): ``"auto"`` walks native -> numpy -> python,
and asking for ``"native"`` explicitly without its imports raises instead
of silently changing performance class.  ``REPRO_NATIVE_INTERPRETED``
makes the tier available with the kernels running interpreted — same
code, no jit — which is what lets every parity test here run on machines
without numba.  The kernels accumulate in the same order as
``np.bincount`` on sorted members, so base/forward/backward entries are
bit-exact against numpy; batch shares numpy's 1e-9 pairwise-summation
tolerance.

The parallel half covers the PR's round lean-down: work-stealing chunk
arithmetic, shared-memory reply buffers (pipe byte reduction + the
strip-on-respawn fallback), and native-kernel opt-in inside workers.
"""

from __future__ import annotations

import os

import pytest

import repro.core.backends as backends
from repro.core.backends import BACKENDS, resolve_backend
from repro.errors import BackendUnavailableError
from repro.graph.graph import Graph
from repro.parallel.engine import ParallelEngine
from repro.session import Network
from tests.conftest import random_graph, random_scores, rounded

np = pytest.importorskip("numpy")

WORKERS = int(os.environ.get("REPRO_PARALLEL_TEST_WORKERS", "2"))


@pytest.fixture()
def interpreted_native(monkeypatch):
    """Make the native tier resolvable without numba (kernels interpreted)."""
    monkeypatch.setenv("REPRO_NATIVE_INTERPRETED", "1")


def _net(graph, scores, backend, hops=2, **kwargs):
    net = Network(graph, hops=hops, backend=backend, **kwargs)
    net.add_scores("s", scores)
    return net


def _pair(graph, scores, hops=2):
    return (
        _net(graph, scores, "native", hops=hops),
        _net(graph, scores, "numpy", hops=hops),
    )


def assert_same_answer(a, b):
    assert a.nodes == b.nodes
    assert rounded(a.values) == rounded(b.values)


class TestAvailabilityLadder:
    def test_native_is_a_declared_backend(self):
        assert "native" in BACKENDS

    def test_auto_prefers_native_when_available(self, interpreted_native):
        assert resolve_backend("auto") == "native"
        assert resolve_backend("native") == "native"

    def test_auto_declines_to_numpy_without_numba(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_INTERPRETED", raising=False)
        monkeypatch.setattr(backends, "_NUMBA_AVAILABLE", False)
        assert resolve_backend("auto") == "numpy"

    def test_explicit_native_raises_when_unavailable(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_INTERPRETED", raising=False)
        monkeypatch.setattr(backends, "_NUMBA_AVAILABLE", False)
        with pytest.raises(BackendUnavailableError):
            resolve_backend("native")

    def test_numba_import_alone_unlocks_the_tier(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_INTERPRETED", raising=False)
        monkeypatch.setattr(backends, "_NUMBA_AVAILABLE", True)
        assert resolve_backend("auto") == "native"

    def test_explicit_lower_tiers_still_resolve(self, interpreted_native):
        # auto prefers native, but pinning numpy/python must keep working.
        assert resolve_backend("numpy") == "numpy"
        assert resolve_backend("python") == "python"


class TestNativeParity:
    """Entry-for-entry agreement with numpy on every covered route."""

    @pytest.mark.parametrize(
        "aggregate", ["sum", "avg", "count", "max", "min"]
    )
    def test_base_every_aggregate(self, interpreted_native, aggregate):
        g = random_graph(60, 0.08, seed=99)
        scores = random_scores(60, seed=3)
        nat, ref = _pair(g, scores)
        a = nat.query("s").limit(7).aggregate(aggregate).algorithm("base").run()
        b = ref.query("s").limit(7).aggregate(aggregate).algorithm("base").run()
        assert_same_answer(a, b)

    @pytest.mark.parametrize("algorithm", ["forward", "backward"])
    def test_pruned_algorithms(self, interpreted_native, algorithm):
        g = random_graph(70, 0.06, seed=17)
        scores = random_scores(70, seed=5)
        nat, ref = _pair(g, scores)
        a = nat.query("s").limit(9).algorithm(algorithm).run()
        b = ref.query("s").limit(9).algorithm(algorithm).run()
        assert_same_answer(a, b)

    def test_backward_with_sparse_scores(self, interpreted_native):
        # Low non-zero density drives backward's candidate/verify split.
        g = random_graph(80, 0.05, seed=23)
        scores = random_scores(80, seed=11, density=0.15)
        nat, ref = _pair(g, scores)
        a = nat.query("s").limit(5).algorithm("backward").run()
        b = ref.query("s").limit(5).algorithm("backward").run()
        assert_same_answer(a, b)

    def test_weighted_routes(self, interpreted_native):
        g = random_graph(60, 0.08, seed=41)
        scores = random_scores(60, seed=7)
        nat, ref = _pair(g, scores)
        assert_same_answer(
            nat.topk_weighted("s", 8), ref.topk_weighted("s", 8)
        )
        assert_same_answer(
            nat.topk_weighted("s", 8, algorithm="base"),
            ref.topk_weighted("s", 8, algorithm="base"),
        )

    def test_filtered_competitors(self, interpreted_native):
        g = random_graph(60, 0.08, seed=53)
        scores = random_scores(60, seed=13)
        nat, ref = _pair(g, scores)
        a = nat.query("s").limit(6).where(lambda u: u % 2 == 0).run()
        b = ref.query("s").limit(6).where(lambda u: u % 2 == 0).run()
        assert_same_answer(a, b)

    def test_batch_shared_scan(self, interpreted_native):
        g = random_graph(60, 0.08, seed=61)
        scores = random_scores(60, seed=17)
        nat, ref = _pair(g, scores)
        qa = nat.batch(
            [nat.query("s").limit(5), nat.query("s").limit(4).aggregate("avg")]
        )
        qb = ref.batch(
            [ref.query("s").limit(5), ref.query("s").limit(4).aggregate("avg")]
        )
        for a, b in zip(qa, qb):
            assert_same_answer(a, b)

    def test_directed_graphs(self, interpreted_native):
        g = random_graph(50, 0.06, seed=71, directed=True)
        scores = random_scores(50, seed=19)
        nat, ref = _pair(g, scores)
        for algorithm in ("base", "forward", "backward"):
            a = nat.query("s").limit(6).algorithm(algorithm).run()
            b = ref.query("s").limit(6).algorithm(algorithm).run()
            assert_same_answer(a, b)

    def test_integer_score_ties_bit_exact(self, interpreted_native):
        # Integer scores make summation order irrelevant: entries must be
        # *identical*, including tie order.
        g = random_graph(60, 0.08, seed=83)
        scores = [(i % 3) / 2 for i in range(60)]
        nat, ref = _pair(g, scores)
        a = nat.topk("s", 10)
        b = ref.topk("s", 10)
        assert a.entries == b.entries

    def test_empty_balls(self, interpreted_native):
        # Nodes 8/9 are isolated: their balls are empty without self.
        g = Graph.from_edges(
            [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)], num_nodes=10
        )
        scores = [(i + 1) / 16 for i in range(10)]
        for include_self in (True, False):
            nat = Network(g, hops=2, include_self=include_self, backend="native")
            ref = Network(g, hops=2, include_self=include_self, backend="numpy")
            nat.add_scores("s", scores)
            ref.add_scores("s", scores)
            assert nat.topk("s", 10).entries == ref.topk("s", 10).entries


class TestKernelProvenance:
    def test_native_results_tag_kernel_and_mode(self, interpreted_native):
        g = random_graph(40, 0.1, seed=5)
        net = _net(g, random_scores(40, seed=5), "native")
        res = net.topk("s", 5)
        assert res.stats.extra["kernel"] == "native"
        assert res.stats.extra["kernel_mode"] in ("compiled", "interpreted")

    def test_numpy_results_tag_their_tier(self):
        g = random_graph(40, 0.1, seed=5)
        net = _net(g, random_scores(40, seed=5), "numpy")
        assert net.topk("s", 5).stats.extra["kernel"] == "numpy"

    def test_explain_names_the_compiled_tier(self, interpreted_native):
        g = random_graph(40, 0.1, seed=5)
        net = _net(g, random_scores(40, seed=5), "native")
        text = net.query("s").limit(5).explain().explain()
        assert "compiled CSR kernels" in text


class TestWorkStealing:
    def test_chunked_partitions_exactly(self):
        task = {"type": "scan", "shard": 0}
        pieces = ParallelEngine._chunked(None, task, 1000, 100)
        assert len(pieces) > 1
        assert pieces[0]["lo"] == 0 and pieces[-1]["hi"] == 1000
        for left, right in zip(pieces, pieces[1:]):
            assert left["hi"] == right["lo"]  # no gaps, no overlap
        assert all(p["hi"] > p["lo"] for p in pieces)

    def test_chunked_never_splits_below_a_block(self):
        task = {"type": "scan", "shard": 0}
        assert ParallelEngine._chunked(None, task, 150, 100) == [task]
        assert ParallelEngine._chunked(None, dict(task), 0, 100) == [task]

    def test_chunk_count_is_bounded(self):
        pieces = ParallelEngine._chunked(None, {"shard": 1}, 10**6, 10)
        assert len(pieces) <= 4

    def test_skewed_graph_answers_match_numpy(self):
        # A hub-heavy graph gives one shard most of the work; stealing
        # must not change the entries, only the task count.
        import random as _random

        rng = _random.Random(29)
        n = 5000  # each shard must own >= 2 kernel blocks (1024) to split
        edges = {(u, u + 1) for u in range(n - 1)}
        for _ in range(3 * n):
            u, v = rng.randrange(120), rng.randrange(n)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        g = Graph.from_edges(sorted(edges), num_nodes=n)
        scores = random_scores(n, seed=31)
        ref = _net(g, scores, "numpy").topk("s", 12)

        net = _net(g, scores, "parallel")
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        try:
            res = net.topk("s", 12)
            assert res.entries == ref.entries
            stats = engine.stats()
            assert stats["work_stealing"] is True
            # Scans were split into more tasks than shards.
            assert res.stats.extra["tasks"] > len(stats["shards"])
        finally:
            engine.close()


class TestReplyBuffers:
    def test_shared_buffers_cut_reply_bytes(self):
        # Same graph, same k, same static task structure (stealing off on
        # both sides so the task count matches); only the reply transport
        # differs.  The gate is CPU-count independent: it compares bytes
        # per completed round, not wall time.
        import random as _random

        rng = _random.Random(37)
        n = 4000
        edges = set()
        while len(edges) < 3 * n:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        g = Graph.from_edges(sorted(edges), num_nodes=n)
        scores = random_scores(n, seed=41)
        k = 128

        def run(result_buffers):
            net = _net(g, scores, "parallel")
            engine = net.parallel(
                workers=WORKERS,
                min_nodes=0,
                work_stealing=False,
                result_buffers=result_buffers,
            )
            try:
                res = net.topk("s", k)
                return res.entries, res.stats.extra["pipe_bytes_received"]
            finally:
                engine.close()

        lean_entries, lean_bytes = run(True)
        fat_entries, fat_bytes = run(False)
        assert lean_entries == fat_entries
        assert lean_bytes > 0
        assert fat_bytes / lean_bytes >= 5.0

    def test_respawn_falls_back_to_pipe_replies(self):
        # Killing a worker mid-life forces the reissue path: reissued
        # tasks are stripped of their reply buffers (two writers must
        # never share a slot) and the engine rotates segments afterwards.
        g = random_graph(300, 0.02, seed=43)
        scores = random_scores(300, seed=47)
        ref = _net(g, scores, "numpy").topk("s", 10)

        net = _net(g, scores, "parallel")
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        try:
            assert net.topk("s", 10).entries == ref.entries
            pool = engine._pool()
            pool._members[0].process.terminate()
            pool._members[0].process.join()
            assert net.topk("s", 10).entries == ref.entries
            assert pool.respawns >= 1
            # The next healthy round still matches.
            assert net.topk("s", 10).entries == ref.entries
        finally:
            engine.close()

    def test_stats_surface_the_new_gauges(self):
        g = random_graph(200, 0.03, seed=53)
        net = _net(g, random_scores(200, seed=59), "parallel")
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        try:
            res = net.topk("s", 8)
            stats = engine.stats()
            for key in (
                "work_stealing",
                "result_buffers",
                "reply_buffers",
                "pipe_bytes_sent",
                "pipe_bytes_received",
            ):
                assert key in stats
            assert res.stats.extra["pipe_bytes_sent"] > 0
            assert res.stats.extra["pipe_bytes_received"] > 0
        finally:
            engine.close()


class TestWorkerNativeOptIn:
    def test_workers_stay_on_numpy_for_interpreted_kernels(
        self, interpreted_native, monkeypatch
    ):
        # Interpreted native kernels lose to the numpy slab path, so the
        # engine only flips workers to native when the kernels actually
        # compiled — or when the test hatch says otherwise.
        monkeypatch.delenv("REPRO_PARALLEL_NATIVE_INTERPRETED", raising=False)
        g = random_graph(200, 0.03, seed=61)
        net = _net(g, random_scores(200, seed=61), "parallel")
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        try:
            import repro.native.kernels as kernels

            expected = kernels.KERNEL_MODE == "compiled"
            assert engine._workers_native() is expected
        finally:
            engine.close()

    def test_hatch_flips_workers_to_native_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_INTERPRETED", "1")
        monkeypatch.setenv("REPRO_PARALLEL_NATIVE_INTERPRETED", "1")
        g = random_graph(300, 0.02, seed=67)
        scores = random_scores(300, seed=71)
        ref = _net(g, scores, "numpy")
        net = _net(g, scores, "parallel")
        engine = net.parallel(workers=WORKERS, min_nodes=0)
        try:
            assert engine._workers_native() is True
            assert net.topk("s", 9).entries == ref.topk("s", 9).entries
            assert (
                net.topk_weighted("s", 9).entries
                == ref.topk_weighted("s", 9).entries
            )
            b = net.query("s").limit(9).algorithm("backward").run()
            rb = ref.query("s").limit(9).algorithm("backward").run()
            assert b.entries == rb.entries
        finally:
            engine.close()
