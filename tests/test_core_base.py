"""Tests for the Base algorithm against hand-computed and oracle answers."""

from __future__ import annotations

import pytest

from repro.aggregates.functions import AggregateKind
from repro.core.base import base_topk
from repro.core.evaluate import evaluate_node, exact_sum_and_size
from repro.core.query import QuerySpec
from tests.conftest import random_graph, random_scores, ref_topk_values, rounded


class TestHandComputed:
    def test_path_sum_one_hop(self, path_graph):
        scores = [1.0, 0.0, 1.0, 0.0, 1.0]
        result = base_topk(path_graph, scores, QuerySpec(k=1, hops=1))
        # F(1) = f(0)+f(1)+f(2) = 2; F(3) = f(2)+f(3)+f(4) = 2; F(2) = 1 ...
        assert result.values == [2.0]
        assert result.nodes[0] in (1, 3)

    def test_star_sum(self, star_graph):
        scores = [0.0, 1.0, 1.0, 1.0, 0.0, 0.0]
        result = base_topk(star_graph, scores, QuerySpec(k=2, hops=1))
        # center sees all three 1s; each leaf sees itself + center.
        assert result.entries[0] == (0, 3.0)
        assert result.entries[1][1] == 1.0

    def test_avg_prefers_dense_small_ball(self, two_components):
        scores = [1.0, 1.0, 1.0, 1.0, 1.0, 0.0]
        result = base_topk(
            two_components, scores, QuerySpec(k=1, hops=1, aggregate="avg")
        )
        # The triangle and the edge pair both average 1.0; first node wins tie.
        assert result.values == [1.0]

    def test_count_aggregate(self, path_graph):
        scores = [0.5, 0.0, 0.0, 0.0, 0.7]
        result = base_topk(
            path_graph, scores, QuerySpec(k=5, hops=1, aggregate="count")
        )
        assert result.value_of(0) == 1.0
        assert result.value_of(2) == 0.0

    def test_max_aggregate(self, path_graph):
        scores = [0.9, 0.1, 0.2, 0.1, 0.3]
        result = base_topk(
            path_graph, scores, QuerySpec(k=1, hops=1, aggregate="max")
        )
        assert result.values == [0.9]
        assert result.nodes[0] in (0, 1)

    def test_min_aggregate(self, triangle_graph):
        scores = [0.5, 0.6, 0.7]
        result = base_topk(
            triangle_graph, scores, QuerySpec(k=3, hops=1, aggregate="min")
        )
        assert result.values == [0.5, 0.5, 0.5]

    def test_zero_hops_closed_is_own_score(self, path_graph):
        scores = [0.1, 0.9, 0.2, 0.3, 0.4]
        result = base_topk(path_graph, scores, QuerySpec(k=1, hops=0))
        assert result.entries == [(1, 0.9)]

    def test_open_ball_excludes_self(self, star_graph):
        scores = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        spec = QuerySpec(k=6, hops=1, include_self=False)
        result = base_topk(star_graph, scores, spec)
        # each leaf sees only the center (score 1); center sees only zeros.
        assert result.value_of(0) == 0.0
        assert result.value_of(3) == 1.0

    def test_isolated_node_avg_is_zero_open_ball(self, two_components):
        scores = [0.0] * 5 + [1.0]
        spec = QuerySpec(k=6, hops=2, aggregate="avg", include_self=False)
        result = base_topk(two_components, scores, spec)
        assert result.value_of(5) == 0.0


class TestAgainstOracle:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count", "max", "min"])
    @pytest.mark.parametrize("hops", [1, 2])
    def test_random_graphs(self, aggregate, hops):
        g = random_graph(40, 0.1, seed=21)
        scores = random_scores(40, seed=22)
        result = base_topk(g, scores, QuerySpec(k=7, hops=hops, aggregate=aggregate))
        assert rounded(result.values) == rounded(
            ref_topk_values(g, scores, 7, hops, aggregate)
        )

    def test_k_larger_than_graph(self, triangle_graph):
        result = base_topk(triangle_graph, [0.1, 0.2, 0.3], QuerySpec(k=50))
        assert len(result) == 3

    def test_stats_populated(self, path_graph):
        result = base_topk(path_graph, [0.5] * 5, QuerySpec(k=2))
        stats = result.stats
        assert stats.algorithm == "base"
        assert stats.nodes_evaluated == 5
        assert stats.balls_expanded == 5
        assert stats.edges_scanned > 0
        assert stats.elapsed_sec >= 0.0

    def test_custom_node_order_same_values(self, medium_graph):
        scores = random_scores(60, seed=23)
        spec = QuerySpec(k=6)
        forward_order = base_topk(medium_graph, scores, spec)
        reverse_order = base_topk(
            medium_graph, scores, spec, node_order=list(reversed(range(60)))
        )
        assert rounded(forward_order.values) == rounded(reverse_order.values)


class TestEvaluateHelpers:
    def test_exact_sum_and_size(self, path_graph):
        total, size = exact_sum_and_size(path_graph, [1.0] * 5, 2, 2)
        assert (total, size) == (5.0, 5)

    def test_evaluate_node_all_kinds(self, star_graph):
        scores = [0.2, 1.0, 0.0, 0.0, 0.0, 0.4]
        for kind, expected in [
            (AggregateKind.SUM, 1.6),
            (AggregateKind.AVG, 1.6 / 6),
            (AggregateKind.COUNT, 3.0),
            (AggregateKind.MAX, 1.0),
            (AggregateKind.MIN, 0.0),
        ]:
            assert evaluate_node(star_graph, scores, 0, 1, kind) == pytest.approx(
                expected
            )
