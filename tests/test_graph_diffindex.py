"""Tests for the differential index against brute-force set computation."""

from __future__ import annotations

import pytest

from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.graph.diffindex import build_differential_index
from repro.graph.graph import Graph
from tests.conftest import random_graph, ref_ball


def brute_delta(graph: Graph, u: int, v: int, hops: int, include_self: bool = True) -> int:
    ball_u = ref_ball(graph, u, hops, include_self=include_self)
    ball_v = ref_ball(graph, v, hops, include_self=include_self)
    return len(ball_v - ball_u)


class TestDeltaValues:
    def test_path_graph_one_hop(self, path_graph):
        idx = build_differential_index(path_graph, 1)
        # For arc 2 -> 3: S(3) = {2,3,4}, S(2) = {1,2,3}; delta = |{4}| = 1.
        assert idx.delta(path_graph, 2, 3) == 1
        # For arc 0 -> 1: S(1) = {0,1,2}, S(0) = {0,1}; delta = 1.
        assert idx.delta(path_graph, 0, 1) == 1

    def test_star_center_vs_leaf(self, star_graph):
        idx = build_differential_index(star_graph, 1)
        # S(leaf) = {leaf, 0} subset of S(0) = everything: delta(leaf-0) = 0.
        assert idx.delta(star_graph, 0, 1) == 0
        # S(0) has 4 nodes not in S(leaf).
        assert idx.delta(star_graph, 1, 0) == 4

    def test_clique_deltas_zero(self, triangle_graph):
        idx = build_differential_index(triangle_graph, 1)
        for u, v in triangle_graph.arcs():
            assert idx.delta(triangle_graph, u, v) == 0

    @pytest.mark.parametrize("hops", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, hops, seed):
        g = random_graph(30, 0.12, seed=seed)
        idx = build_differential_index(g, hops)
        for u, v in g.arcs():
            assert idx.delta(g, u, v) == brute_delta(g, u, v, hops)

    def test_directed_graph(self, directed_cycle):
        idx = build_differential_index(directed_cycle, 1)
        # Arc 0 -> 1: S(1) = {1, 2}, S(0) = {0, 1}: delta = 1.
        assert idx.delta(directed_cycle, 0, 1) == 1

    def test_open_ball_deltas(self):
        g = random_graph(25, 0.15, seed=7)
        idx = build_differential_index(g, 2, include_self=False)
        for u, v in list(g.arcs())[:50]:
            assert idx.delta(g, u, v) == brute_delta(g, u, v, 2, include_self=False)


class TestIndexStructure:
    def test_rows_align_with_adjacency(self, path_graph):
        idx = build_differential_index(path_graph, 1)
        for u in path_graph.nodes():
            assert len(idx.delta_row(u)) == path_graph.degree(u)

    def test_sizes_are_exact(self, path_graph):
        idx = build_differential_index(path_graph, 2)
        assert idx.sizes.is_exact
        assert [idx.sizes.value(u) for u in range(5)] == [3, 4, 5, 4, 3]

    def test_bounded_memory_mode_matches_full(self):
        g = random_graph(25, 0.15, seed=11)
        full = build_differential_index(g, 2)
        bounded = build_differential_index(g, 2, max_resident_balls=4)
        for u in g.nodes():
            assert list(full.delta_row(u)) == list(bounded.delta_row(u))

    def test_delta_unknown_arc(self, path_graph):
        idx = build_differential_index(path_graph, 1)
        with pytest.raises(IndexNotBuiltError):
            idx.delta(path_graph, 0, 4)

    def test_invalid_parameters(self, path_graph):
        with pytest.raises(InvalidParameterError):
            build_differential_index(path_graph, -1)
        with pytest.raises(InvalidParameterError):
            build_differential_index(path_graph, 1, max_resident_balls=0)


class TestCompatibility:
    def test_check_compatible_passes(self, path_graph):
        idx = build_differential_index(path_graph, 2)
        idx.check_compatible(path_graph, 2, True)

    def test_wrong_hops(self, path_graph):
        idx = build_differential_index(path_graph, 2)
        with pytest.raises(IndexNotBuiltError):
            idx.check_compatible(path_graph, 1, True)

    def test_wrong_ball_convention(self, path_graph):
        idx = build_differential_index(path_graph, 2)
        with pytest.raises(IndexNotBuiltError):
            idx.check_compatible(path_graph, 2, False)

    def test_wrong_graph_size(self, path_graph, star_graph):
        idx = build_differential_index(path_graph, 2)
        with pytest.raises(IndexNotBuiltError):
            idx.check_compatible(star_graph, 2, True)
