"""Public-API snapshot: surface changes must be deliberate.

Pins (1) ``repro.__all__`` — the package's exported names — and (2) the
fluent :class:`~repro.session.QueryBuilder` / :class:`~repro.session.Network`
method surfaces, including parameter names.  A failing test here means the
public contract moved: update the snapshot *in the same change, on
purpose*, and call it out in the changelog.  CI runs this module in every
matrix cell (and as a dedicated lint-adjacent step), so an accidental
rename or removal cannot slip through.
"""

from __future__ import annotations

import inspect

import repro
from repro.session import Network, QueryBuilder

EXPECTED_ALL = [
    "__version__",
    "ReproError",
    "Graph",
    "GraphBuilder",
    "build_differential_index",
    "DynamicGraph",
    "MaintainedAggregateView",
    "Network",
    "QueryBuilder",
    "QueryService",
    "QueryHandle",
    "ServiceConfig",
    "ParallelConfig",
    "RemoteNetwork",
    "RetryPolicy",
    "FaultPlan",
    "error_from_wire",
    "QueryRequest",
    "StreamUpdate",
    "BatchQuery",
    "BatchResult",
    "BatchTopKEngine",
    "combine_query_stats",
    "TopKEngine",
    "QuerySpec",
    "TopKResult",
    "QueryStats",
    "AggregateKind",
    "base_topk",
    "forward_topk",
    "backward_topk",
    "topk_sum",
    "topk_avg",
    "ScoreVector",
    "MixtureRelevance",
    "BinaryRelevance",
    "RandomAssignmentRelevance",
    "RandomWalkRelevance",
    "IterativeClassifierRelevance",
    "uniform_scores",
    "indicator_scores",
]

#: method name -> parameter names after self (None = property).
BUILDER_SURFACE = {
    "limit": ["k"],
    "k": ["k"],
    "hops": ["hops"],
    "aggregate": ["aggregate"],
    "where": ["predicate_or_nodes"],
    "algorithm": ["algorithm"],
    "backend": ["backend"],
    "gamma": ["gamma"],
    "distribution_fraction": ["fraction"],
    "exact_sizes": ["exact"],
    "ordering": ["ordering"],
    "seed": ["seed"],
    "priority": ["priority"],
    "deadline": ["seconds"],
    "request": [],
    "spec": [],
    "run": [],
    "submit": ["priority", "deadline", "stream", "cached"],
    "stream": [],
    "explain": ["amortize_index"],
}

NETWORK_SURFACE = {
    "add_scores": ["name", "relevance"],
    "score_names": [],
    "scores_of": ["name"],
    "query": ["score"],
    "service": ["config", "options"],
    "parallel": ["config", "options"],
    "close": [],
    "topk": ["score", "k", "aggregate", "builder_options"],
    "topk_weighted": ["score", "k", "profile", "algorithm", "options"],
    "batch": ["queries"],
    "build_indexes": [],
    "save_index": ["path"],
    "load_index": ["path"],
    "maintain": ["score"],
    "view": ["score"],
    "add_edge": ["u", "v"],
    "remove_edge": ["u", "v"],
    "update_score": ["score", "node", "value"],
}


def test_package_all_is_pinned():
    assert list(repro.__all__) == EXPECTED_ALL


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ exports missing name {name}"


def _parameters(cls, name):
    method = inspect.getattr_static(cls, name)
    signature = inspect.signature(method)
    return [p for p in signature.parameters if p != "self"]


def test_query_builder_surface():
    public = {
        name
        for name, member in inspect.getmembers(QueryBuilder)
        if not name.startswith("_")
        and (inspect.isfunction(member) or isinstance(
            inspect.getattr_static(QueryBuilder, name), property
        ))
    }
    assert public == set(BUILDER_SURFACE) | {"score"}
    for name, params in BUILDER_SURFACE.items():
        assert _parameters(QueryBuilder, name) == params, (
            f"QueryBuilder.{name} signature moved"
        )


def test_network_surface():
    for name, params in NETWORK_SURFACE.items():
        assert _parameters(Network, name) == params, (
            f"Network.{name} signature moved"
        )


def test_builder_methods_return_new_builders():
    net = Network(repro.Graph.from_edges([(0, 1), (1, 2)]), hops=1)
    net.add_scores("s", [0.1, 0.2, 0.3])
    builder = net.query("s")
    for name in (
        "limit",
        "aggregate",
        "algorithm",
        "backend",
        "gamma",
        "distribution_fraction",
        "exact_sizes",
        "ordering",
        "seed",
        "priority",
        "deadline",
    ):
        argument = {
            "limit": 2,
            "aggregate": "avg",
            "algorithm": "base",
            "backend": "python",
            "gamma": 0.5,
            "distribution_fraction": 0.2,
            "exact_sizes": True,
            "ordering": "degree",
            "seed": 1,
            "priority": 3,
            "deadline": 1.5,
        }[name]
        out = getattr(builder, name)(argument)
        assert isinstance(out, QueryBuilder) and out is not builder


def test_version_is_stringy():
    assert isinstance(repro.__version__, str) and repro.__version__
