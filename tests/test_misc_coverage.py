"""Fill-in tests for smaller public surfaces not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.bench.harness import run_figure
from repro.bench.workloads import FIGURES
from repro.graph.csr import degree_array
from repro.graph.graph import Graph
from repro.graph.io import iter_edge_lines, parse_edge_list
from tests.conftest import random_graph


class TestIOIterators:
    def test_iter_edge_lines(self):
        g = parse_edge_list("a b\nb c\n")
        lines = list(iter_edge_lines(g))
        assert lines == ["a b", "b c"]

    def test_iter_edge_lines_unlabeled(self, path_graph):
        lines = list(iter_edge_lines(path_graph))
        assert lines[0] == "0 1"
        assert len(lines) == 4


class TestCSRHelpers:
    def test_degree_array(self):
        numpy = pytest.importorskip("numpy")
        g = random_graph(20, 0.2, seed=311)
        degrees = degree_array(g)
        assert degrees.shape == (20,)
        assert int(degrees[0]) == g.degree(0)
        assert int(degrees.sum()) == 2 * g.num_edges


class TestHarnessVerification:
    def test_verification_catches_divergence(self, monkeypatch):
        """If an algorithm returned wrong values, run_figure must raise."""
        from repro.bench import harness as harness_module

        original = harness_module._run_algorithm

        def corrupted(algorithm, *args, **kwargs):
            result = original(algorithm, *args, **kwargs)
            if algorithm == "backward":
                broken = [(n, v + 1.0) for n, v in result.entries]
                result.entries = broken
            return result

        monkeypatch.setattr(harness_module, "_run_algorithm", corrupted)
        with pytest.raises(AssertionError):
            run_figure(FIGURES["fig1"], scale=0.03, ks=[3])

    def test_verification_can_be_disabled(self, monkeypatch):
        from repro.bench import harness as harness_module

        original = harness_module._run_algorithm

        def corrupted(algorithm, *args, **kwargs):
            result = original(algorithm, *args, **kwargs)
            if algorithm == "backward":
                result.entries = [(n, v + 1.0) for n, v in result.entries]
            return result

        monkeypatch.setattr(harness_module, "_run_algorithm", corrupted)
        run = run_figure(FIGURES["fig1"], scale=0.03, ks=[3], verify=False)
        assert len(run.measurements) == 3


class TestGraphEdgeCases:
    def test_single_node_graph_queries(self):
        from repro.core.base import base_topk
        from repro.core.backward import backward_topk
        from repro.core.forward import forward_topk
        from repro.core.query import QuerySpec

        g = Graph([[]])
        spec = QuerySpec(k=1, hops=2)
        for func in (base_topk, forward_topk, backward_topk):
            result = func(g, [0.7], spec)
            assert result.entries == [(0, 0.7)]

    def test_empty_graph_queries(self):
        from repro.core.base import base_topk
        from repro.core.query import QuerySpec

        g = Graph([])
        result = base_topk(g, [], QuerySpec(k=3))
        assert result.entries == []

    def test_two_node_directed_asymmetry(self):
        from repro.core.base import base_topk
        from repro.core.query import QuerySpec

        g = Graph.from_edges([(0, 1)], num_nodes=2, directed=True)
        result = base_topk(g, [0.0, 1.0], QuerySpec(k=2, hops=1))
        # 0 sees {0, 1} = 1.0; 1 sees only itself = 1.0.
        assert result.values == [1.0, 1.0]
