"""Tests for the relational physical operators."""

from __future__ import annotations

import pytest

from repro.errors import PlanError, SchemaError
from repro.relational.operators import (
    OperatorStats,
    append_constant,
    distinct,
    filter_rows,
    group_aggregate,
    hash_join,
    order_by_limit,
    union_all,
)
from repro.relational.table import Table


@pytest.fixture
def stats():
    return OperatorStats()


class TestFilterAndDistinct:
    def test_filter(self, stats):
        t = Table({"a": [1, 2, 3, 4]})
        out = filter_rows(t, lambda row: row[0] % 2 == 0, stats)
        assert out.column("a") == [2, 4]
        assert stats.rows_scanned == 4
        assert stats.rows_output == 2

    def test_distinct(self, stats):
        t = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        out = distinct(t, stats)
        assert out.to_rows() == [(1, "x"), (2, "y")]

    def test_distinct_keeps_first_occurrence_order(self, stats):
        t = Table({"a": [3, 1, 3, 2]})
        out = distinct(t, stats)
        assert out.column("a") == [3, 1, 2]


class TestHashJoin:
    def test_inner_join(self, stats):
        left = Table({"src": [0, 1, 2], "dst": [1, 2, 3]})
        right = Table({"node": [1, 2], "score": [0.5, 0.7]})
        out = hash_join(left, right, left_key="dst", right_key="node", stats=stats)
        assert sorted(out.to_rows()) == [(0, 1, 0.5), (1, 2, 0.7)]
        assert out.column_names == ["src", "dst", "score"]

    def test_join_multiplicity(self, stats):
        left = Table({"k": [1, 1]})
        right = Table({"k": [1, 1], "v": ["a", "b"]})
        out = hash_join(left, right, left_key="k", right_key="k", stats=stats)
        assert out.num_rows == 4
        assert stats.join_matches == 4
        assert stats.join_probes == 2

    def test_join_no_match(self, stats):
        left = Table({"k": [9]})
        right = Table({"k": [1], "v": [2]})
        out = hash_join(left, right, left_key="k", right_key="k", stats=stats)
        assert out.num_rows == 0

    def test_join_column_collision_suffix(self, stats):
        left = Table({"k": [1], "v": [10]})
        right = Table({"k2": [1], "v": [20]})
        out = hash_join(left, right, left_key="k", right_key="k2", stats=stats)
        assert out.column_names == ["k", "v", "v_r"]
        assert out.row(0) == (1, 10, 20)

    def test_join_missing_key(self, stats):
        left = Table({"a": [1]})
        right = Table({"b": [1]})
        with pytest.raises(SchemaError):
            hash_join(left, right, left_key="zzz", right_key="b", stats=stats)


class TestGroupAggregate:
    def test_sum_and_count(self, stats):
        t = Table({"g": [1, 1, 2], "v": [1.0, 2.0, 5.0]})
        out = group_aggregate(
            t,
            key="g",
            aggregations={"total": ("sum", "v"), "n": ("count", "v")},
            stats=stats,
        )
        rows = {row[0]: row[1:] for row in out.to_rows()}
        assert rows[1] == (3.0, 2)
        assert rows[2] == (5.0, 1)

    def test_avg_min_max(self, stats):
        t = Table({"g": ["a", "a", "b"], "v": [2.0, 4.0, 7.0]})
        out = group_aggregate(
            t,
            key="g",
            aggregations={
                "mean": ("avg", "v"),
                "lo": ("min", "v"),
                "hi": ("max", "v"),
            },
            stats=stats,
        )
        rows = {row[0]: row[1:] for row in out.to_rows()}
        assert rows["a"] == (3.0, 2.0, 4.0)
        assert rows["b"] == (7.0, 7.0, 7.0)

    def test_unknown_function(self, stats):
        t = Table({"g": [1], "v": [1.0]})
        with pytest.raises(PlanError):
            group_aggregate(
                t, key="g", aggregations={"x": ("median", "v")}, stats=stats
            )

    def test_unknown_column(self, stats):
        t = Table({"g": [1], "v": [1.0]})
        with pytest.raises(SchemaError):
            group_aggregate(
                t, key="g", aggregations={"x": ("sum", "zzz")}, stats=stats
            )


class TestOrderByLimitAndUnion:
    def test_top_k_descending(self, stats):
        t = Table({"n": [0, 1, 2, 3], "v": [5.0, 9.0, 1.0, 7.0]})
        out = order_by_limit(t, column="v", k=2, stats=stats)
        assert out.to_rows() == [(1, 9.0), (3, 7.0)]

    def test_ascending(self, stats):
        t = Table({"n": [0, 1, 2], "v": [5.0, 9.0, 1.0]})
        out = order_by_limit(t, column="v", k=1, descending=False, stats=stats)
        assert out.to_rows() == [(2, 1.0)]

    def test_tie_column(self, stats):
        t = Table({"n": [9, 3], "v": [1.0, 1.0]})
        out = order_by_limit(t, column="v", k=1, tie_column="n", stats=stats)
        assert out.to_rows() == [(3, 1.0)]

    def test_limit_validation(self, stats):
        t = Table({"v": [1.0]})
        with pytest.raises(PlanError):
            order_by_limit(t, column="v", k=0, stats=stats)

    def test_union_all(self, stats):
        a = Table({"x": [1]})
        b = Table({"x": [2, 3]})
        out = union_all([a, b], stats)
        assert out.column("x") == [1, 2, 3]

    def test_union_schema_mismatch(self, stats):
        with pytest.raises(SchemaError):
            union_all([Table({"x": [1]}), Table({"y": [1]})], stats)

    def test_union_empty_list(self, stats):
        with pytest.raises(PlanError):
            union_all([], stats)

    def test_append_constant(self, stats):
        t = Table({"x": [1, 2]})
        out = append_constant(t, "w", 0.5, stats)
        assert out.column("w") == [0.5, 0.5]
        with pytest.raises(SchemaError):
            append_constant(out, "w", 1.0, stats)

    def test_stats_as_dict(self, stats):
        t = Table({"x": [1, 2]})
        distinct(t, stats)
        flat = stats.as_dict()
        assert flat["rows_scanned"] == 2.0
        assert "rows_distinct" in flat
