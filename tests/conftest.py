"""Shared fixtures and reference implementations for the test suite.

The reference implementations here are deliberately *independent* of the
library code paths they check: ``ref_ball`` uses a dict-based Dijkstra-style
expansion rather than the library's BFS, and ``ref_topk_values`` aggregates
by brute force.  Tests compare library output against these oracles so a
bug cannot hide in shared code.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Set

import pytest

from repro.graph.graph import Graph


# ---------------------------------------------------------------------------
# Independent reference implementations (oracles)
# ---------------------------------------------------------------------------
def ref_ball(graph: Graph, center: int, hops: int, *, include_self: bool = True) -> Set[int]:
    """Reference h-hop ball: repeated one-step neighbor expansion over sets."""
    current = {center}
    reached = {center}
    for _ in range(hops):
        nxt = set()
        for u in current:
            nxt.update(graph.neighbors(u))
        nxt -= reached
        reached |= nxt
        current = nxt
    if not include_self:
        reached.discard(center)
    return reached


def ref_aggregate(
    graph: Graph,
    scores: Sequence[float],
    node: int,
    hops: int,
    kind: str,
    *,
    include_self: bool = True,
) -> float:
    """Reference aggregate of one node by brute force."""
    ball = ref_ball(graph, node, hops, include_self=include_self)
    values = [scores[v] for v in ball]
    if kind == "sum":
        return sum(values)
    if kind == "avg":
        return sum(values) / len(values) if values else 0.0
    if kind == "count":
        return float(sum(1 for v in values if v > 0.0))
    if kind == "max":
        return max(values) if values else 0.0
    if kind == "min":
        return min(values) if values else 0.0
    raise ValueError(kind)


def ref_topk_values(
    graph: Graph,
    scores: Sequence[float],
    k: int,
    hops: int,
    kind: str,
    *,
    include_self: bool = True,
) -> List[float]:
    """The exact multiset of top-k values, descending (the oracle answer)."""
    all_values = [
        ref_aggregate(graph, scores, u, hops, kind, include_self=include_self)
        for u in graph.nodes()
    ]
    return sorted(all_values, reverse=True)[:k]


def rounded(values: Sequence[float], places: int = 9) -> List[float]:
    """Round a value list for float-tolerant comparison."""
    return [round(v, places) for v in values]


def random_graph(
    n: int, edge_prob: float, seed: int, *, directed: bool = False
) -> Graph:
    """A small uniform random graph for property-style tests."""
    rng = random.Random(seed)
    edges = []
    for u in range(n):
        for v in range(n):
            if directed:
                if u != v and rng.random() < edge_prob:
                    edges.append((u, v))
            else:
                if u < v and rng.random() < edge_prob:
                    edges.append((u, v))
    return Graph.from_edges(edges, num_nodes=n, directed=directed)


def random_scores(n: int, seed: int, *, density: float = 0.5) -> List[float]:
    """Random score vector in [0, 1] with roughly the given density."""
    rng = random.Random(seed)
    return [
        rng.random() if rng.random() < density else 0.0 for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# Fixture graphs
# ---------------------------------------------------------------------------
@pytest.fixture
def path_graph() -> Graph:
    """0 - 1 - 2 - 3 - 4."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture
def star_graph() -> Graph:
    """Center 0 with leaves 1..5."""
    return Graph.from_edges([(0, i) for i in range(1, 6)])


@pytest.fixture
def triangle_graph() -> Graph:
    """3-clique."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_components() -> Graph:
    """A triangle (0,1,2) and an edge (3,4), plus isolated node 5."""
    return Graph.from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4)], num_nodes=6
    )


@pytest.fixture
def directed_cycle() -> Graph:
    """0 -> 1 -> 2 -> 3 -> 0."""
    return Graph.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 0)], directed=True
    )


@pytest.fixture
def medium_graph() -> Graph:
    """A 60-node random graph used by the cross-algorithm agreement tests."""
    return random_graph(60, 0.08, seed=99)
