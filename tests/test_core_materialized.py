"""Tests for the materialized aggregate view."""

from __future__ import annotations

import pytest

from repro.core.base import base_topk
from repro.core.materialized import MaterializedView
from repro.core.query import QuerySpec
from repro.errors import InvalidParameterError
from tests.conftest import random_graph, random_scores, rounded


@pytest.fixture
def view_setup():
    g = random_graph(40, 0.12, seed=81)
    scores = random_scores(40, seed=82)
    return g, scores, MaterializedView(g, scores, hops=2)


class TestCorrectness:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count"])
    def test_matches_base(self, view_setup, aggregate):
        g, scores, view = view_setup
        expected = base_topk(g, scores, QuerySpec(k=7, aggregate=aggregate))
        actual = view.topk(7, aggregate)
        assert rounded(actual.values) == rounded(expected.values)

    def test_open_ball_view(self):
        g = random_graph(30, 0.15, seed=83)
        scores = random_scores(30, seed=84)
        view = MaterializedView(g, scores, hops=2, include_self=False)
        expected = base_topk(g, scores, QuerySpec(k=5, include_self=False))
        assert rounded(view.topk(5, "sum").values) == rounded(expected.values)

    def test_value_accessor(self, view_setup):
        g, scores, view = view_setup
        from repro.aggregates.functions import AggregateKind

        base = base_topk(g, scores, QuerySpec(k=40))
        for node, value in base.entries:
            assert view.value(node, AggregateKind.SUM) == pytest.approx(value)

    def test_max_rejected(self, view_setup):
        _g, _scores, view = view_setup
        from repro.aggregates.functions import AggregateKind

        with pytest.raises(InvalidParameterError):
            view.value(0, AggregateKind.MAX)


class TestStaleness:
    def test_fresh_scores_pass(self, view_setup):
        _g, scores, view = view_setup
        view.check_fresh(scores)
        view.topk(3, "sum", scores=scores)

    def test_stale_scores_raise(self, view_setup):
        _g, scores, view = view_setup
        changed = list(scores)
        changed[0] = 0.123456
        with pytest.raises(InvalidParameterError):
            view.check_fresh(changed)
        with pytest.raises(InvalidParameterError):
            view.topk(3, "sum", scores=changed)

    def test_stats_report_build_cost(self, view_setup):
        _g, _scores, view = view_setup
        result = view.topk(3, "sum")
        assert result.stats.algorithm == "materialized"
        assert result.stats.index_build_sec > 0.0
        assert result.stats.nodes_evaluated == 0
