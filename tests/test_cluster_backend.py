"""Socket-cluster backend: parity, wire protocol, comm policies, resilience.

The contract mirrors the parallel backend's
(``tests/test_parallel_backend.py``): ``backend="cluster"`` must return
entry-for-entry the numpy answer on every route it covers — base (all
aggregates), forward, backward, weighted, filtered, batch — while actually
running the partition-aware kernels in socket-connected ``cluster-worker``
processes.  Beyond parity, this module pins the communication policies
(θ-shipping prunes, adaptive quotas bound round-1 volume, ``ship_policy=
"all"`` is the exact naive baseline), the delta re-export after dynamic
mutations, and worker-failure recovery (kill a remote worker mid-stream →
the coordinator re-issues to a respawned or standby worker).

The graphs here are far below the engine's production ``min_nodes`` floor,
so every fixture forces the cluster path with ``min_nodes=0``; the decline
rule itself is tested explicitly.
"""

from __future__ import annotations

import random

import pytest

from repro.config import ClusterConfig, ServiceConfig
from repro.core.backends import BACKENDS
from repro.core.request import QueryRequest
from repro.errors import ClusterError, InvalidParameterError
from repro.graph.graph import Graph
from repro.session import Network
from tests.conftest import random_graph

np = pytest.importorskip("numpy")

from repro.cluster.frames import decode_payload, encode_frame  # noqa: E402

#: Spawned cluster-worker count for the test engines; the CI cluster-smoke
#: job exercises externally-started workers via addresses instead.
WORKERS = 2


def _entries(result):
    return [(node, round(value, 9)) for node, value in result.entries]


def _dense_scores(n, seed):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


def _sparse_scores(n, seed, nonzero=0.03):
    rng = random.Random(seed)
    values = [0.0] * n
    for u in rng.sample(range(n), max(1, int(nonzero * n))):
        values[u] = rng.random()
    return values


@pytest.fixture(scope="module")
def cluster_net():
    g = random_graph(400, 0.015, seed=42)
    net = Network(g, hops=2)
    net.add_scores("dense", _dense_scores(400, 1))
    net.add_scores("sparse", _sparse_scores(400, 2))
    net.add_scores("binary", [1.0 if u % 9 == 0 else 0.0 for u in range(400)])
    net.cluster(workers=WORKERS, min_nodes=0)
    yield net
    net.close()


class TestRegistrationAndConfig:
    def test_cluster_is_a_backend(self):
        assert "cluster" in BACKENDS

    def test_request_accepts_cluster(self):
        request = QueryRequest(k=3, backend="cluster")
        assert request.spec().backend == "cluster"

    def test_cluster_config_normalizes_addresses(self):
        cfg = ClusterConfig(workers=["a:1", "b:2"])
        assert cfg.workers == ("a:1", "b:2")
        assert cfg.as_dict()["workers"] == ["a:1", "b:2"]
        assert cfg.to_engine_kwargs()["workers"] == ("a:1", "b:2")

    def test_cluster_config_validates(self):
        with pytest.raises(InvalidParameterError):
            ClusterConfig(workers=0)
        with pytest.raises(InvalidParameterError):
            ClusterConfig(workers=[])
        with pytest.raises(InvalidParameterError):
            ClusterConfig(ship_policy="sometimes")
        with pytest.raises(InvalidParameterError):
            ClusterConfig(timeout=0)

    def test_service_rejects_processes_and_cluster_together(self):
        with pytest.raises(InvalidParameterError, match="mutually exclusive"):
            ServiceConfig(processes=True, cluster=True)

    def test_configuring_engine_spawns_nothing(self):
        g = random_graph(100, 0.03, seed=77)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(100, 3))
        engine = net.cluster(workers=WORKERS, min_nodes=0)
        try:
            stats = engine.stats()
            assert stats["started"] is False
            assert stats["alive_peers"] == 0
        finally:
            net.close()


class TestFrameCodec:
    def test_header_round_trip(self):
        frame = encode_frame({"type": "hello", "rounds": 3})
        # First 4 bytes are the total-length prefix the socket readers use.
        assert int.from_bytes(frame[:4], "big") == len(frame) - 4
        header, arrays = decode_payload(frame[4:])
        assert header["type"] == "hello"
        assert header["rounds"] == 3
        assert arrays == {}

    def test_arrays_round_trip(self):
        nodes = np.asarray([3, 1, 4], dtype=np.int64)
        values = np.asarray([0.5, -1.5, 2.25], dtype=np.float64)
        frame = encode_frame(
            {"type": "result"}, {"nodes": nodes, "values": values}
        )
        header, arrays = decode_payload(frame[4:])
        assert header["type"] == "result"
        assert arrays["nodes"].tolist() == [3, 1, 4]
        assert arrays["values"].tolist() == [0.5, -1.5, 2.25]
        assert arrays["nodes"].dtype == np.int64

    def test_empty_arrays_round_trip(self):
        frame = encode_frame(
            {"type": "result"}, {"nodes": np.empty(0, dtype=np.int64)}
        )
        _, arrays = decode_payload(frame[4:])
        assert arrays["nodes"].size == 0


class TestScanParity:
    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count", "max", "min"])
    def test_base_all_aggregates(self, cluster_net, aggregate):
        run = lambda backend: (  # noqa: E731
            cluster_net.query("dense")
            .limit(10)
            .aggregate(aggregate)
            .algorithm("base")
            .backend(backend)
            .run()
        )
        got, ref = run("cluster"), run("numpy")
        assert _entries(got) == _entries(ref)
        assert got.stats.backend == "cluster"
        assert got.stats.extra["shards"] == float(WORKERS)
        assert got.stats.extra["comm_rounds"] >= 1.0

    def test_forward(self, cluster_net):
        got = (
            cluster_net.query("dense").limit(8)
            .algorithm("forward").backend("cluster").run()
        )
        ref = (
            cluster_net.query("dense").limit(8)
            .algorithm("forward").backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)
        assert got.stats.algorithm == "forward"

    @pytest.mark.parametrize("score", ["sparse", "dense"])
    def test_backward(self, cluster_net, score):
        got = (
            cluster_net.query(score).limit(7)
            .algorithm("backward").backend("cluster").run()
        )
        ref = (
            cluster_net.query(score).limit(7)
            .algorithm("backward").backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)
        assert got.stats.backend == "cluster"
        assert got.stats.extra["gamma"] == ref.stats.extra["gamma"]
        assert got.stats.extra["rest_bound"] == ref.stats.extra["rest_bound"]

    def test_backward_avg(self, cluster_net):
        got = (
            cluster_net.query("sparse").limit(5).aggregate("avg")
            .algorithm("backward").backend("cluster").run()
        )
        ref = (
            cluster_net.query("sparse").limit(5).aggregate("avg")
            .algorithm("backward").backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)

    def test_backward_binary_shortcut_declines(self, cluster_net):
        # Same decline rule as the parallel engine: the exact-shortcut
        # regime's answers are order-sensitive partial sums, so the engine
        # hands the query back to the in-process backend.
        got = (
            cluster_net.query("binary").limit(7)
            .algorithm("backward").backend("cluster").run()
        )
        ref = (
            cluster_net.query("binary").limit(7)
            .algorithm("backward").backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)
        assert got.stats.backend == "numpy"
        assert got.stats.extra["exact_shortcut"] == 1.0

    def test_count_ties_at_rank_k(self, cluster_net):
        # COUNT over a regular-ish graph produces heavy value ties around
        # rank k; θ must ship every >=θ candidate (strictly-below prune)
        # so node-id tie resolution matches the reference exactly.
        got = (
            cluster_net.query("binary").limit(9).aggregate("count")
            .algorithm("base").backend("cluster").run()
        )
        ref = (
            cluster_net.query("binary").limit(9).aggregate("count")
            .algorithm("base").backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)

    def test_filtered_where(self, cluster_net):
        candidates = tuple(range(0, 400, 3))
        got = (
            cluster_net.query("dense").limit(6)
            .where(candidates).backend("cluster").run()
        )
        ref = (
            cluster_net.query("dense").limit(6)
            .where(candidates).backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)
        assert got.stats.extra["candidates"] == float(len(candidates))

    def test_weighted(self, cluster_net):
        from repro.core import executor

        spec_got = QueryRequest(k=6, backend="cluster").spec()
        spec_ref = QueryRequest(k=6, backend="numpy").spec()
        got = executor.execute_weighted(
            cluster_net._ctx, cluster_net.scores_of("dense"), spec_got
        )
        ref = executor.execute_weighted(
            cluster_net._ctx, cluster_net.scores_of("dense"), spec_ref
        )
        assert _entries(got) == _entries(ref)
        assert got.stats.backend == "cluster"

    def test_batch_coalesced_parity(self, cluster_net):
        from repro.core.batch import BatchQuery

        queries = [
            BatchQuery(scores=cluster_net.scores_of("dense"), k=6),
            BatchQuery(
                scores=cluster_net.scores_of("dense"), k=4, aggregate="avg"
            ),
        ]
        got = cluster_net._run_batch(queries, backend="cluster")
        ref = cluster_net._run_batch(queries, backend="numpy")
        for g_, r in zip(got, ref):
            assert _entries(g_) == _entries(r)
        assert got[0].stats.backend == "cluster"
        assert got[0].stats.extra["batch_size"] == 2.0

    def test_directed_graph_backward(self, tmp_path):
        rng = random.Random(5)
        edges = {(rng.randrange(120), rng.randrange(120)) for _ in range(400)}
        g = Graph.from_edges(
            sorted((u, v) for u, v in edges if u != v),
            num_nodes=120,
            directed=True,
        )
        net = Network(g, hops=2)
        net.add_scores("s", _sparse_scores(120, 9))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            got = (
                net.query("s").limit(5)
                .algorithm("backward").backend("cluster").run()
            )
            ref = (
                net.query("s").limit(5)
                .algorithm("backward").backend("numpy").run()
            )
            assert _entries(got) == _entries(ref)
        finally:
            net.close()


class TestCommPolicies:
    def test_theta_shipping_prunes_candidates(self, cluster_net):
        result = (
            cluster_net.query("dense").limit(5)
            .algorithm("base").backend("cluster").run()
        )
        extra = result.stats.extra
        naive = float(WORKERS * 5)
        assert extra["candidates_shipped"] + extra["candidates_pruned"] >= naive
        assert extra["candidates_shipped"] < naive * 2  # quotas bound volume
        assert extra["shipped_candidate_bytes"] == extra[
            "candidates_shipped"
        ] * 16.0

    def test_ship_all_is_exact_and_unpruned(self):
        g = random_graph(300, 0.02, seed=55)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 12))
        net.cluster(workers=WORKERS, min_nodes=0, ship_policy="all")
        try:
            got = net.query("s").limit(6).backend("cluster").run()
            ref = net.query("s").limit(6).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            assert got.stats.extra["candidates_pruned"] == 0.0
        finally:
            net.close()

    def test_measured_comm_surfaces_in_engine_stats(self, cluster_net):
        cluster_net.query("dense").limit(4).backend("cluster").run()
        stats = cluster_net.cluster().stats()
        assert stats["last_comm"] is not None
        assert stats["last_comm"]["comm_rounds"] >= 1.0
        assert stats["comm"]["bytes_sent"] > 0
        assert stats["queries_served"] >= 1

    def test_worker_stats_round_trip(self, cluster_net):
        cluster_net.query("dense").limit(4).backend("cluster").run()
        rows = cluster_net.cluster().worker_stats()
        assert len(rows) == WORKERS
        for row in rows:
            assert row["alive"] is True
            assert row["tasks"] >= 1

    def test_plan_carries_comm_forecast(self, cluster_net):
        plan = (
            cluster_net.query("dense").limit(10)
            .backend("cluster").explain()
        )
        comm = plan.as_dict()["comm"]
        assert comm["shards"] == float(WORKERS)
        assert comm["predicted_candidates"] == float(WORKERS * 10)
        assert comm["predicted_candidate_bytes"] == float(WORKERS * 10 * 16)
        text = plan.explain()
        assert "socket cluster" in text
        assert "communication" in text


class TestShardEdgeCases:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_graphs_smaller_than_the_shard_count(self, n):
        # With 2 shards over <=2 nodes some shards are empty; empty owned
        # arrays must flow through scan/merge without special-casing.
        rng = random.Random(100 + n)
        edges = [(u, u + 1) for u in range(n - 1)]
        g = Graph.from_edges(edges, num_nodes=n)
        net = Network(g, hops=2)
        net.add_scores("s", [rng.random() for _ in range(n)])
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            got = net.query("s").limit(3).backend("cluster").run()
            ref = net.query("s").limit(3).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            assert got.stats.backend == "cluster"
        finally:
            net.close()

    def test_more_shards_than_workers(self):
        g = random_graph(300, 0.02, seed=60)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 13))
        net.cluster(workers=WORKERS, shards=4, min_nodes=0)
        try:
            got = net.query("s").limit(6).backend("cluster").run()
            ref = net.query("s").limit(6).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            assert got.stats.extra["shards"] == 4.0
        finally:
            net.close()

    def test_more_workers_than_shards_keeps_standby(self):
        g = random_graph(300, 0.02, seed=61)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 14))
        net.cluster(workers=3, shards=2, min_nodes=0)
        try:
            got = net.query("s").limit(6).backend("cluster").run()
            ref = net.query("s").limit(6).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            engine = net.cluster()
            assert engine.stats()["alive_peers"] == 3
        finally:
            net.close()


class TestDynamicInvalidation:
    def test_delta_reexport_after_add_edge(self):
        from repro.dynamic.graph import DynamicGraph

        g = DynamicGraph.from_graph(random_graph(200, 0.02, seed=12))
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(200, 5))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            engine = net.cluster()
            first = net.query("s").limit(5).backend("cluster").run()
            old_version = engine.stats()["store_version"]
            net.add_edge(0, 199)
            got = net.query("s").limit(5).backend("cluster").run()
            ref = net.query("s").limit(5).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            # Only graph-derived stores were re-exported (new version
            # stamp); score stores persisted across the mutation.
            assert engine.stats()["store_version"] != old_version
            assert first.entries  # sanity: pre-mutation answer existed
        finally:
            net.close()

    def test_score_update_flows_to_workers(self):
        from repro.dynamic.graph import DynamicGraph

        g = DynamicGraph.from_graph(random_graph(200, 0.02, seed=13))
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(200, 6))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            probe = lambda: (  # noqa: E731 - F(7) includes f(7) itself
                net.query("s").limit(1).where([7]).backend("cluster").run()
            )
            before = probe()
            net.update_score("s", 7, 1.0)
            got = net.query("s").limit(5).backend("cluster").run()
            ref = net.query("s").limit(5).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            after = probe()
            assert _entries(after) != _entries(before)
        finally:
            net.close()


class TestResilience:
    def test_worker_kill_respawns_and_answers_exactly(self):
        g = random_graph(300, 0.02, seed=20)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 15))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            engine = net.cluster()
            net.query("s").limit(3).backend("cluster").run()
            transport = engine._resources["transport"]
            victim = transport.peers[0]
            victim.proc.terminate()
            victim.proc.wait(timeout=10)
            got = net.query("s").limit(3).backend("cluster").run()
            ref = net.query("s").limit(3).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            # The dead slot was refilled (stores re-shipped to the fresh
            # worker on demand) and the whole peer set is serving again.
            assert transport.respawns == 1
            assert transport.alive_peers == WORKERS
        finally:
            net.close()

    def test_standby_worker_absorbs_kill_without_respawn_budget(self):
        # 3 workers over 2 shards: kill a shard owner mid-stream and
        # exhaust the respawn budget first — the round must re-issue the
        # orphaned task to the standby worker.
        g = random_graph(300, 0.02, seed=21)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 16))
        net.cluster(workers=3, shards=2, min_nodes=0)
        try:
            engine = net.cluster()
            net.query("s").limit(3).backend("cluster").run()
            transport = engine._resources["transport"]
            transport.respawn_budget = 0
            victim = transport.peers[0]
            victim.proc.terminate()
            victim.proc.wait(timeout=10)
            got = net.query("s").limit(3).backend("cluster").run()
            ref = net.query("s").limit(3).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            assert transport.respawns == 0
            assert transport.alive_peers == 2
        finally:
            net.close()

    def test_worker_kill_mid_weighted_respawns_and_answers_exactly(self):
        from repro.core import executor

        g = random_graph(300, 0.02, seed=24)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 25))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            engine = net.cluster()
            spec_got = QueryRequest(k=6, backend="cluster").spec()
            spec_ref = QueryRequest(k=6, backend="numpy").spec()
            executor.execute_weighted(
                net._ctx, net.scores_of("s"), spec_got
            )
            transport = engine._resources["transport"]
            victim = transport.peers[0]
            victim.proc.terminate()
            victim.proc.wait(timeout=10)
            got = executor.execute_weighted(
                net._ctx, net.scores_of("s"), spec_got
            )
            ref = executor.execute_weighted(
                net._ctx, net.scores_of("s"), spec_ref
            )
            assert _entries(got) == _entries(ref)
            assert got.stats.backend == "cluster"
            assert transport.respawns == 1
            assert transport.alive_peers == WORKERS
        finally:
            net.close()

    def test_worker_kill_mid_batch_respawns_and_answers_exactly(self):
        from repro.core.batch import BatchQuery

        g = random_graph(300, 0.02, seed=26)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 27))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            engine = net.cluster()
            queries = [
                BatchQuery(scores=net.scores_of("s"), k=6),
                BatchQuery(scores=net.scores_of("s"), k=4, aggregate="avg"),
            ]
            net._run_batch(queries, backend="cluster")
            transport = engine._resources["transport"]
            victim = transport.peers[0]
            victim.proc.terminate()
            victim.proc.wait(timeout=10)
            got = net._run_batch(queries, backend="cluster")
            ref = net._run_batch(queries, backend="numpy")
            for g_, r in zip(got, ref):
                assert _entries(g_) == _entries(r)
            assert got[0].stats.backend == "cluster"
            assert transport.respawns == 1
            assert transport.alive_peers == WORKERS
        finally:
            net.close()

    def test_all_workers_dead_raises_cluster_error(self):
        g = random_graph(300, 0.02, seed=22)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 17))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            engine = net.cluster()
            net.query("s").limit(3).backend("cluster").run()
            transport = engine._resources["transport"]
            transport.respawn_budget = 0
            for peer in transport.peers:
                peer.proc.terminate()
                peer.proc.wait(timeout=10)
            with pytest.raises(ClusterError):
                net.query("s").limit(3).backend("cluster").run()
        finally:
            net.close()

    def test_engine_close_is_idempotent(self):
        g = random_graph(100, 0.03, seed=23)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(100, 18))
        engine = net.cluster(workers=WORKERS, min_nodes=0)
        net.query("s").limit(3).backend("cluster").run()
        net.close()
        net.close()
        assert engine.closed
        with pytest.raises(ClusterError):
            engine.execute_scan(
                net.scores_of("s"), QueryRequest(k=3).spec(), "base"
            )


class TestAddressedWorkers:
    def test_connect_to_externally_started_workers(self):
        # The multi-machine form: workers started out-of-band (here via
        # spawn_local_worker, exactly what `repro.cli cluster-worker`
        # runs), the engine given only their host:port addresses.
        from repro.cluster import spawn_local_worker

        ext = [spawn_local_worker(100), spawn_local_worker(101)]
        g = random_graph(300, 0.02, seed=30)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(300, 19))
        net.cluster(workers=[p.address for p in ext], min_nodes=0)
        try:
            got = net.query("s").limit(5).backend("cluster").run()
            ref = net.query("s").limit(5).backend("numpy").run()
            assert _entries(got) == _entries(ref)
            assert got.stats.backend == "cluster"
        finally:
            net.close()
            for peer in ext:
                peer.close()


class TestSocketTimeouts:
    """Address-connect mode never hangs: every connect/read is bounded.

    The multi-machine form takes raw ``host:port`` addresses, so a down
    or wedged remote worker must surface as a typed :class:`ClusterError`
    within the configured timeout — not stall the coordinator for the
    whole round budget (satellite of the resilience work; the timeouts
    themselves are ``connect_timeout``/``io_timeout`` on
    :class:`~repro.config.ClusterConfig`)."""

    def _closed_port(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_down_address_raises_typed_error_promptly(self):
        import time

        from repro.cluster.transport import ClusterTransport

        address = f"127.0.0.1:{self._closed_port()}"
        transport = ClusterTransport([address, address], connect_timeout=2.0)
        started = time.monotonic()
        with pytest.raises(ClusterError, match="could not start"):
            transport.start()
        assert time.monotonic() - started < 5.0

    def test_engine_surfaces_down_address_promptly(self):
        import time

        address = f"127.0.0.1:{self._closed_port()}"
        g = random_graph(120, 0.03, seed=63)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(120, 20))
        net.cluster(workers=[address, address], min_nodes=0,
                    connect_timeout=2.0)
        try:
            started = time.monotonic()
            with pytest.raises(ClusterError):
                net.query("s").limit(3).backend("cluster").run()
            assert time.monotonic() - started < 10.0
        finally:
            net.close()

    def test_silent_server_read_is_bounded(self):
        import socket
        import threading
        import time

        from repro.cluster.transport import ClusterPeer

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []

        def absorb():
            try:
                conn, _ = listener.accept()
                accepted.append(conn)  # accept, then never reply
            except OSError:
                pass

        thread = threading.Thread(target=absorb, daemon=True)
        thread.start()
        peer = ClusterPeer(0, "127.0.0.1", port, io_timeout=0.5)
        try:
            peer.connect(2.0)
            started = time.monotonic()
            with pytest.raises((ConnectionError, ClusterError)):
                peer.request({"type": "hello"})
            assert time.monotonic() - started < 5.0
            assert peer.alive is False
        finally:
            peer.close()
            for conn in accepted:
                conn.close()
            listener.close()


class TestDeclineRule:
    def test_small_graph_declines_without_spawning(self):
        g = random_graph(100, 0.04, seed=40)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(100, 8))
        engine = net.cluster(workers=WORKERS)  # default min_nodes floor
        try:
            result = net.query("s").limit(4).backend("cluster").run()
            ref = net.query("s").limit(4).backend("numpy").run()
            assert _entries(result) == _entries(ref)
            # Declined: ran in-process; no worker process ever spawned.
            assert result.stats.backend == "numpy"
            assert engine.stats()["declined"] >= 1
            assert engine.stats()["started"] is False
        finally:
            net.close()

    def test_single_worker_declines(self):
        g = random_graph(100, 0.04, seed=41)
        net = Network(g, hops=2)
        net.add_scores("s", _dense_scores(100, 9))
        net.cluster(workers=1, min_nodes=0)
        try:
            result = net.query("s").limit(4).backend("cluster").run()
            assert result.stats.backend == "numpy"
        finally:
            net.close()

    def test_planner_charges_cluster_fixed_cost(self):
        from repro.core.planner import BACKEND_FIXED_COSTS, QueryPlanner
        from repro.core.query import QuerySpec

        g = random_graph(120, 0.03, seed=42)
        scores = _dense_scores(120, 10)
        clu = QueryPlanner(g, scores, hops=2, backend="cluster").plan(
            QuerySpec(k=5)
        )
        par = QueryPlanner(g, scores, hops=2, backend="parallel").plan(
            QuerySpec(k=5)
        )
        fixed = BACKEND_FIXED_COSTS["cluster"]
        assert fixed > BACKEND_FIXED_COSTS["parallel"]
        for algorithm in ("base", "backward"):
            assert clu.estimate_for(algorithm).fixed_cost == fixed
        # Socket rounds cost strictly more than queue IPC on this tiny
        # graph, mirroring the runtime decline rules.
        assert (
            clu.estimate_for("base").total_amortized()
            > par.estimate_for("base").total_amortized()
        )
        assert "socket cluster" in clu.explain()


class TestServiceClusterMode:
    def test_service_runs_queries_on_cluster_backend(self):
        g = random_graph(300, 0.02, seed=50)
        net = Network(g, hops=2)
        net.add_scores("a", _dense_scores(300, 11))
        net.add_scores("b", _dense_scores(300, 12))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            net.service(workers=2, cluster=True)
            handles = [
                net.query(s).limit(5).submit(cached=False)
                for s in ("a", "b", "a", "b")
            ]
            results = [h.result(timeout=120) for h in handles]
            backends = {r.stats.backend for r in results}
            assert backends <= {"cluster"}
            refs = [
                net.query(s).limit(5).backend("numpy").run()
                for s in ("a", "b", "a", "b")
            ]
            for got, ref in zip(results, refs):
                assert _entries(got) == _entries(ref)
            stats = net.service().stats()
            assert stats["cluster_mode"] is True
            assert stats["cluster"]["last_comm"] is not None
            assert stats["cluster"]["comm"]["bytes_sent"] > 0
        finally:
            net.close()

    def test_pinned_backend_survives_cluster_mode(self):
        g = random_graph(300, 0.02, seed=51)
        net = Network(g, hops=2)
        net.add_scores("a", _dense_scores(300, 13))
        net.cluster(workers=WORKERS, min_nodes=0)
        try:
            net.service(workers=2, cluster=True)
            result = (
                net.query("a").limit(5).backend("numpy")
                .submit(cached=False).result(timeout=120)
            )
            assert result.stats.backend == "numpy"
        finally:
            net.close()


class TestWorkerDeadline:
    """Deadline budgets ship with task frames and fire inside workers.

    The coordinator has no way to interrupt a remote kernel; instead
    :func:`repro.cluster.transport._remaining_budget` ships the active
    deadline's remaining seconds in every task frame, the worker installs
    a local :func:`~repro.core.deadline.deadline_scope`, and the shared
    task handlers' block-boundary ``check_deadline()`` polls observe it
    (repro-check rule RC001).
    """

    @staticmethod
    def _worker_with_store():
        from repro.cluster.worker import ClusterWorker

        worker = ClusterWorker()
        worker.handle(
            {"type": "put", "store": "csr", "kind": "csr", "version": 0},
            {
                "indptr": np.array([0, 1, 2], dtype=np.int64),
                "indices": np.array([1, 0], dtype=np.int64),
            },
        )
        worker.handle(
            {"type": "put", "store": "s"},
            {"data": np.array([1.0, 2.0], dtype=np.float64)},
        )
        return worker

    @staticmethod
    def _scan_task():
        return {
            "kind": "scan",
            "csr": {"store": "csr", "version": 0},
            "scores": {"store": "s"},
            "centers": [0, 1],
            "aggregate": "sum",
            "hops": 1,
            "include_self": True,
            "block": 1,
            "k": 2,
        }

    def test_zero_budget_task_reports_deadline_status(self):
        worker = self._worker_with_store()
        header, arrays = worker.handle(
            {
                "type": "task",
                "task_id": "t-dl",
                "task": self._scan_task(),
                "ship": {"mode": "all"},
                "deadline": 0.0,
            },
            {},
        )
        assert header["status"] == "deadline"
        assert header["error"]["code"] == "deadline_exceeded"
        assert not arrays

    def test_task_without_budget_runs_to_completion(self):
        worker = self._worker_with_store()
        header, arrays = worker.handle(
            {
                "type": "task",
                "task_id": "t-ok",
                "task": self._scan_task(),
                "ship": {"mode": "all"},
            },
            {},
        )
        assert header["status"] == "ok"
        got = sorted(zip(arrays["nodes"].tolist(), arrays["values"].tolist()))
        assert got == [(0, 3.0), (1, 3.0)]

    def test_shipped_budget_enforced_end_to_end(self, cluster_net, monkeypatch):
        from repro.cluster import transport
        from repro.errors import DeadlineExceededError

        monkeypatch.setattr(transport, "_remaining_budget", lambda: 0.0)
        with pytest.raises(DeadlineExceededError):
            (
                cluster_net.query("dense").limit(5)
                .algorithm("base").backend("cluster").run()
            )

    def test_round_abort_recovers(self, cluster_net):
        # Runs after the aborted round above (same module-scoped engine):
        # abandoned task ids must not poison the next round.
        got = (
            cluster_net.query("dense").limit(6)
            .algorithm("base").backend("cluster").run()
        )
        ref = (
            cluster_net.query("dense").limit(6)
            .algorithm("base").backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)

    def test_parity_under_generous_deadline(self, cluster_net):
        import time

        from repro.core.deadline import deadline_scope

        with deadline_scope(time.monotonic() + 60.0):
            got = (
                cluster_net.query("dense").limit(6)
                .algorithm("backward").backend("cluster").run()
            )
        ref = (
            cluster_net.query("dense").limit(6)
            .algorithm("backward").backend("numpy").run()
        )
        assert _entries(got) == _entries(ref)
