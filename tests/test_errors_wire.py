"""Runtime mirror of repro-check RC004: the wire-error contract.

The static rule checks the error taxonomy *as written*; these tests check
the same properties on the *imported* hierarchy — every exception class
has its own unique wire code, the registry decodes each code back to
exactly its class, and the serving status map covers the whole family so
no library error ever serves as the generic 500 fallback.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.errors import (
    ERROR_CODES,
    DeadlineExceededError,
    NodeNotFoundError,
    ProtocolError,
    ReproError,
    error_from_wire,
)


def _all_error_classes():
    """Every ReproError subclass defined in repro.errors (transitively)."""
    seen = []
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            if sub.__module__ == "repro.errors" and sub not in seen:
                seen.append(sub)
                stack.append(sub)
    return sorted(seen, key=lambda cls: cls.__name__)


ALL_CLASSES = _all_error_classes()


class TestCodes:
    def test_hierarchy_is_nontrivial(self):
        assert len(ALL_CLASSES) >= 20

    @pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
    def test_every_class_declares_its_own_code(self, cls):
        # `code` must live in the class's own __dict__, not be inherited:
        # an inherited code decodes back to the parent class.
        assert "code" in vars(cls), f"{cls.__name__} inherits its code"
        assert isinstance(vars(cls)["code"], str)

    def test_codes_are_unique(self):
        codes = [cls.code for cls in ALL_CLASSES] + [ReproError.code]
        assert len(codes) == len(set(codes))

    @pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
    def test_registry_maps_each_code_to_its_class(self, cls):
        assert ERROR_CODES[cls.code] is cls


class TestRoundTrip:
    @pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
    def test_code_decodes_to_exact_class(self, cls):
        err = error_from_wire({"code": cls.code, "message": "boom"})
        assert type(err) is cls
        assert str(err) == "boom"

    def test_extras_survive_the_round_trip(self):
        err = error_from_wire(NodeNotFoundError(7).to_wire())
        assert type(err) is NodeNotFoundError
        assert err.node == 7

    def test_deadline_error_round_trips(self):
        wire = DeadlineExceededError("deadline exceeded mid-scan").to_wire()
        err = error_from_wire(wire)
        assert type(err) is DeadlineExceededError
        assert "mid-scan" in str(err)

    def test_unknown_code_degrades_to_base_class(self):
        err = error_from_wire({"code": "from_the_future", "message": "m"})
        assert type(err) is ReproError

    def test_malformed_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError):
            error_from_wire({"message": "no code"})
        with pytest.raises(ProtocolError):
            error_from_wire("not a dict")


class TestRetryability:
    """``retryable`` is the server's verdict and must survive the wire.

    Client retry loops (:class:`repro.client.RetryPolicy`) consult the
    *decoded* attribute, never the local class default — so the payload
    value wins even if it disagrees with what this client's version of
    the taxonomy would assume."""

    @pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
    def test_every_payload_carries_retryable(self, cls):
        err = error_from_wire({"code": cls.code, "message": "m"})
        assert err.to_wire()["retryable"] == bool(cls.retryable)

    def test_retryable_round_trips(self):
        wire = errors.ServiceOverloadedError(
            "backlogged", retry_after=0.5
        ).to_wire()
        assert wire["retryable"] is True
        err = error_from_wire(wire)
        assert err.retryable is True
        assert err.retry_after == 0.5

    def test_non_retryable_round_trips(self):
        wire = errors.InvalidParameterError("k must be positive").to_wire()
        assert wire["retryable"] is False
        assert error_from_wire(wire).retryable is False

    def test_wire_verdict_overrides_local_class_default(self):
        # A newer server may mark an error retryable that this client's
        # taxonomy says is not (or vice versa): the payload is authoritative.
        err = error_from_wire(
            {"code": "invalid_parameter", "message": "m", "retryable": True}
        )
        assert err.retryable is True

    @pytest.mark.parametrize(
        "cls",
        [
            errors.ServiceOverloadedError,
            errors.QuotaExceededError,
            errors.RateLimitedError,
            errors.StaleShardError,
            errors.ClusterError,
            errors.FaultInjectedError,
        ],
        ids=lambda c: c.__name__,
    )
    def test_transient_family_is_retryable(self, cls):
        assert cls.retryable is True

    @pytest.mark.parametrize(
        "cls",
        [
            errors.InvalidParameterError,
            errors.NodeNotFoundError,
            errors.ProtocolError,
            errors.DeadlineExceededError,
        ],
        ids=lambda c: c.__name__,
    )
    def test_caller_fault_family_is_not_retryable(self, cls):
        assert cls.retryable is False

    def test_fault_injected_error_code_and_status(self):
        from repro.serving.protocol import status_for

        err = errors.FaultInjectedError("injected transient at p")
        decoded = error_from_wire(err.to_wire())
        assert type(decoded) is errors.FaultInjectedError
        assert decoded.retryable is True
        assert status_for(err) == 503


class TestStatusMap:
    @pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda c: c.__name__)
    def test_every_class_is_deliberately_mapped(self, cls):
        from repro.serving.protocol import _STATUS_BY_CLASS

        err = error_from_wire({"code": cls.code, "message": "m"})
        matched = [
            status for mapped, status in _STATUS_BY_CLASS
            if isinstance(err, mapped)
        ]
        assert matched, (
            f"{cls.__name__} hits the generic 500 fallback — add it (or an "
            f"ancestor) to _STATUS_BY_CLASS"
        )

    def test_deadline_maps_to_504(self):
        from repro.serving.protocol import status_for

        assert status_for(DeadlineExceededError("late")) == 504

    def test_distributed_failures_are_deliberate_500s(self):
        from repro.serving.protocol import status_for

        assert status_for(errors.DistributedError("shard fault")) == 500
        assert status_for(errors.PartitionError("bad cut")) == 500
