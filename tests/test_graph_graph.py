"""Unit tests for the Graph/GraphBuilder storage layer."""

from __future__ import annotations

import pytest

from repro.errors import (
    EdgeNotFoundError,
    GraphBuildError,
    NodeNotFoundError,
)
from repro.graph.graph import Graph, GraphBuilder


class TestGraphBuilder:
    def test_empty_build(self):
        g = GraphBuilder().build()
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_add_edge_grows_nodes(self):
        b = GraphBuilder()
        b.add_edge(0, 5)
        g = b.build()
        assert g.num_nodes == 6
        assert g.num_edges == 1

    def test_undirected_symmetry(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        g = b.build()
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]

    def test_directed_one_way(self):
        b = GraphBuilder(directed=True)
        b.add_edge(0, 1)
        g = b.build()
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == []

    def test_self_loop_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphBuildError):
            b.add_edge(3, 3)

    def test_duplicate_edge_rejected(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        with pytest.raises(GraphBuildError):
            b.add_edge(1, 0)  # same undirected edge

    def test_duplicate_allowed_when_opted_in(self):
        b = GraphBuilder(allow_duplicates=True)
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        g = b.build()
        assert g.num_edges == 1

    def test_directed_reverse_is_distinct_edge(self):
        b = GraphBuilder(directed=True)
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        g = b.build()
        assert g.num_edges == 2

    def test_negative_node_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphBuildError):
            b.add_edge(-1, 2)

    def test_build_twice_rejected(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.build()
        with pytest.raises(GraphBuildError):
            b.build()

    def test_add_after_build_rejected(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.build()
        with pytest.raises(GraphBuildError):
            b.add_edge(1, 2)

    def test_labeled_edges_intern(self):
        b = GraphBuilder()
        b.add_labeled_edge("alice", "bob")
        b.add_labeled_edge("bob", "carol")
        g = b.build()
        assert g.num_nodes == 3
        assert g.has_labels
        assert g.label_of(g.id_of("alice")) == "alice"
        assert g.id_of("carol") == 2

    def test_weighted_edges(self):
        b = GraphBuilder(weighted=True)
        b.add_edge(0, 1, weight=2.5)
        g = b.build()
        assert g.weighted
        assert g.edge_weight(0, 1) == 2.5
        assert g.edge_weight(1, 0) == 2.5

    def test_ensure_node_creates_isolated(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.ensure_node(4)
        g = b.build()
        assert g.num_nodes == 5
        assert g.degree(4) == 0


class TestGraphAccessors:
    def test_from_edges(self, path_graph):
        assert path_graph.num_nodes == 5
        assert path_graph.num_edges == 4
        assert not path_graph.directed

    def test_from_edges_num_nodes_pads(self):
        g = Graph.from_edges([(0, 1)], num_nodes=4)
        assert g.num_nodes == 4

    def test_len_and_contains(self, path_graph):
        assert len(path_graph) == 5
        assert 4 in path_graph
        assert 5 not in path_graph
        assert "x" not in path_graph

    def test_degree(self, star_graph):
        assert star_graph.degree(0) == 5
        assert star_graph.degree(1) == 1

    def test_degree_unknown_node(self, star_graph):
        with pytest.raises(NodeNotFoundError):
            star_graph.degree(77)

    def test_edges_undirected_yielded_once(self, triangle_graph):
        edges = sorted(triangle_graph.edges())
        assert edges == [(0, 1), (0, 2), (1, 2)]

    def test_arcs_both_directions(self, triangle_graph):
        arcs = sorted(triangle_graph.arcs())
        assert len(arcs) == 6
        assert (1, 0) in arcs and (0, 1) in arcs

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(1, 2)
        assert path_graph.has_edge(2, 1)
        assert not path_graph.has_edge(0, 4)

    def test_edge_weight_default_unweighted(self, path_graph):
        assert path_graph.edge_weight(0, 1) == 1.0

    def test_edge_weight_missing_edge(self, path_graph):
        with pytest.raises(EdgeNotFoundError):
            path_graph.edge_weight(0, 4)
        assert path_graph.edge_weight(0, 4, default=0.0) == 0.0

    def test_neighbor_weights_unweighted(self, star_graph):
        assert list(star_graph.neighbor_weights(0)) == [1.0] * 5

    def test_from_weighted_edges(self):
        g = Graph.from_weighted_edges([(0, 1, 0.5), (1, 2, 1.5)])
        assert g.edge_weight(1, 2) == 1.5
        assert list(g.neighbor_weights(1)) == [0.5, 1.5]

    def test_label_passthrough_when_unlabeled(self, path_graph):
        assert path_graph.label_of(3) == 3
        assert path_graph.id_of(3) == 3
        with pytest.raises(NodeNotFoundError):
            path_graph.id_of("nope")


class TestGraphViews:
    def test_reversed_directed(self, directed_cycle):
        r = directed_cycle.reversed()
        assert list(r.neighbors(0)) == [3]
        assert list(r.neighbors(1)) == [0]

    def test_reversed_undirected_is_self(self, path_graph):
        assert path_graph.reversed() is path_graph

    def test_as_undirected(self, directed_cycle):
        u = directed_cycle.as_undirected()
        assert not u.directed
        assert u.num_edges == 4
        assert sorted(u.neighbors(0)) == [1, 3]

    def test_as_undirected_merges_antiparallel(self):
        g = Graph.from_edges([(0, 1), (1, 0)], directed=True)
        u = g.as_undirected()
        assert u.num_edges == 1

    def test_subgraph(self, two_components):
        sub, mapping = two_components.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3
        assert mapping == [0, 1, 2]

    def test_subgraph_drops_external_edges(self, path_graph):
        sub, mapping = path_graph.subgraph([1, 2])
        assert sub.num_edges == 1
        assert mapping == [1, 2]

    def test_subgraph_invalid_node(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            path_graph.subgraph([0, 9])

    def test_adjacency_copy_is_deep(self, path_graph):
        copy = path_graph.adjacency_copy()
        copy[0].append(99)
        assert 99 not in path_graph.neighbors(0)

    def test_label_uniqueness_enforced(self):
        with pytest.raises(GraphBuildError):
            Graph([[1], [0]], labels=["same", "same"])

    def test_label_length_enforced(self):
        with pytest.raises(GraphBuildError):
            Graph([[1], [0]], labels=["only-one"])
