"""Tests for structural graph statistics."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.graph.generators import barabasi_albert, erdos_renyi, ring_lattice
from repro.graph.graph import Graph
from repro.graph.metrics import (
    average_clustering,
    ball_size_stats,
    clustering_coefficient,
    component_stats,
    degree_stats,
    profile_graph,
    sample_ball_sizes,
)


class TestDegreeStats:
    def test_path(self, path_graph):
        stats = degree_stats(path_graph)
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert stats.mean == pytest.approx(8 / 5)
        assert stats.median == 2.0

    def test_star_heavy_tail_detection(self):
        hub = Graph.from_edges([(0, i) for i in range(1, 60)])
        assert degree_stats(hub).is_heavy_tailed()
        assert not degree_stats(ring_lattice(30, 2)).is_heavy_tailed()

    def test_gini_uniform_is_zero(self):
        stats = degree_stats(ring_lattice(20, 2))
        assert stats.gini == pytest.approx(0.0, abs=1e-9)

    def test_gini_increases_with_skew(self):
        uniform = degree_stats(ring_lattice(100, 3)).gini
        skewed = degree_stats(barabasi_albert(100, 3, seed=1)).gini
        assert skewed > uniform

    def test_empty_graph(self):
        stats = degree_stats(Graph([]))
        assert stats.mean == 0.0


class TestClustering:
    def test_triangle_is_fully_clustered(self, triangle_graph):
        assert clustering_coefficient(triangle_graph, 0) == 1.0

    def test_star_center_unclustered(self, star_graph):
        assert clustering_coefficient(star_graph, 0) == 0.0

    def test_leaf_degenerate(self, path_graph):
        assert clustering_coefficient(path_graph, 0) == 0.0

    def test_average_full_vs_sample(self, triangle_graph):
        assert average_clustering(triangle_graph) == 1.0
        assert average_clustering(triangle_graph, sample=2, seed=1) == 1.0

    def test_sample_validation(self, triangle_graph):
        with pytest.raises(InvalidParameterError):
            average_clustering(triangle_graph, sample=0)


class TestBallStats:
    def test_sample_covers_whole_small_graph(self, path_graph):
        sizes = sample_ball_sizes(path_graph, 1, sample=100, seed=1)
        assert sorted(sizes) == [2, 2, 3, 3, 3]

    def test_stats_fields(self):
        g = erdos_renyi(80, 160, seed=2)
        stats = ball_size_stats(g, 2, sample=40, seed=3)
        assert stats.hops == 2
        assert stats.sample_size == 40
        assert stats.minimum <= stats.median <= stats.maximum
        assert 0.0 <= stats.gini <= 1.0

    def test_sample_validation(self, path_graph):
        with pytest.raises(InvalidParameterError):
            sample_ball_sizes(path_graph, 1, sample=0)


class TestProfile:
    def test_component_stats(self, two_components):
        count, largest, fraction = component_stats(two_components)
        assert count == 3
        assert largest == 3
        assert fraction == pytest.approx(0.5)

    def test_profile_describe(self):
        g = erdos_renyi(50, 100, seed=4)
        profile = profile_graph(g, hops=2, sample=25, seed=5)
        text = profile.describe()
        assert "nodes=50" in text
        assert "2-hop balls" in text
        assert profile.num_components >= 1
