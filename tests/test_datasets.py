"""Tests for the dataset registry and the structural stand-ins."""

from __future__ import annotations

import pytest

from repro.datasets import available, load, spec_of
from repro.datasets.registry import DatasetSpec, register
from repro.errors import InvalidParameterError
from repro.graph.validation import validate_graph


class TestRegistry:
    def test_three_datasets_registered(self):
        names = available()
        assert "collaboration_like" in names
        assert "citation_like" in names
        assert "intrusion_like" in names

    def test_spec_metadata(self):
        spec = spec_of("collaboration_like")
        assert spec.paper_nodes == 40_000
        assert spec.paper_edges == 180_000
        assert "cond-mat" in spec.paper_name

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError):
            load("facebook_like")

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            load("collaboration_like", scale=0.0)

    def test_duplicate_registration_rejected(self):
        spec = spec_of("collaboration_like")
        clone = DatasetSpec(
            name=spec.name,
            paper_name=spec.paper_name,
            paper_nodes=1,
            paper_edges=1,
            description="dup",
            builder=spec.builder,
        )
        with pytest.raises(InvalidParameterError):
            register(clone)


class TestStructure:
    @pytest.mark.parametrize("name", ["collaboration_like", "citation_like", "intrusion_like"])
    def test_valid_simple_graphs(self, name):
        g = load(name, scale=0.1, seed=1)
        validate_graph(g)
        assert g.num_nodes > 0

    @pytest.mark.parametrize("name", ["collaboration_like", "citation_like", "intrusion_like"])
    def test_deterministic_by_seed(self, name):
        a = load(name, scale=0.1, seed=7)
        b = load(name, scale=0.1, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_scale_changes_size(self):
        small = load("collaboration_like", scale=0.1, seed=2)
        big = load("collaboration_like", scale=0.3, seed=2)
        assert big.num_nodes > small.num_nodes

    def test_collaboration_profile(self):
        g = load("collaboration_like", scale=0.5, seed=3)
        avg_degree = 2 * g.num_edges / g.num_nodes
        assert 5.0 <= avg_degree <= 14.0
        assert not g.directed

    def test_citation_profile(self):
        g = load("citation_like", scale=0.5, seed=4)
        # undirected view of the DAG (see dataset docstring)
        assert not g.directed
        avg_degree = 2 * g.num_edges / g.num_nodes
        assert 6.0 <= avg_degree <= 16.0

    def test_intrusion_profile(self):
        g = load("intrusion_like", scale=0.5, seed=5)
        avg_degree = 2 * g.num_edges / g.num_nodes
        assert avg_degree <= 5.0  # very sparse, like IP traffic
        degrees = sorted((g.degree(u) for u in g.nodes()), reverse=True)
        assert degrees[0] > 10 * max(degrees[len(degrees) // 2], 1)

    def test_tiny_scale_clamped(self):
        g = load("collaboration_like", scale=0.0001, seed=6)
        assert g.num_nodes >= 16
