"""Property-based tests (hypothesis) on the library's core invariants.

Four families:

1. **Bound soundness** — the paper's Eq. 1 / Eq. 3 / static / AVG bounds are
   genuine upper bounds for every random graph and score vector.
2. **Algorithm agreement** — Base, Forward, Backward, the relational plan,
   and the distributed BSP execution return identical top-k value multisets.
3. **Traversal** — the library BFS equals an independent set-expansion
   reference under composed parameters.
4. **Accumulator model** — the bounded heap matches a sort-based model under
   arbitrary offer sequences.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backward import backward_topk
from repro.core.base import base_topk
from repro.core.bounds import avg_bound, backward_sum_bound, static_sum_bound
from repro.core.forward import forward_topk
from repro.core.query import QuerySpec
from repro.core.topk import TopKAccumulator
from repro.distributed.coordinator import DistributedTopKEngine
from repro.graph.diffindex import build_differential_index
from repro.graph.graph import Graph
from repro.graph.neighborhood import NeighborhoodSizeIndex, lower_estimate, upper_estimate
from repro.graph.traversal import hop_ball
from repro.relational.engine import relational_topk
from tests.conftest import ref_aggregate, ref_ball, rounded

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def graphs(draw, max_nodes: int = 18, directed: bool = False):
    """Small random simple graphs (possibly disconnected, possibly empty)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    possible = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if (u < v if not directed else u != v)
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=3 * n)
        if possible
        else st.just([])
    )
    return Graph.from_edges(edges, num_nodes=n, directed=directed)


@st.composite
def graph_and_scores(draw, directed: bool = False):
    g = draw(graphs(directed=directed))
    scores = draw(
        st.lists(
            st.one_of(
                st.just(0.0),
                st.just(1.0),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=g.num_nodes,
            max_size=g.num_nodes,
        )
    )
    return g, scores


# ---------------------------------------------------------------------------
# 1. Bound soundness
# ---------------------------------------------------------------------------
class TestBoundSoundness:
    @given(data=graph_and_scores(), hops=st.integers(min_value=0, max_value=3))
    def test_static_bound_sound(self, data, hops):
        g, scores = data
        for v in g.nodes():
            ball = ref_ball(g, v, hops)
            exact = sum(scores[w] for w in ball)
            assert static_sum_bound(len(ball), scores[v]) >= exact - 1e-9

    @given(data=graph_and_scores(), hops=st.integers(min_value=1, max_value=2))
    def test_eq1_differential_bound_sound(self, data, hops):
        g, scores = data
        idx = build_differential_index(g, hops)
        exact = {
            u: ref_aggregate(g, scores, u, hops, "sum") for u in g.nodes()
        }
        for u in g.nodes():
            row = idx.delta_row(u)
            for i, v in enumerate(g.neighbors(u)):
                bound = exact[u] + row[i]
                assert bound >= exact[v] - 1e-9

    @given(
        data=graph_and_scores(),
        gamma=st.floats(min_value=0.0, max_value=1.2, allow_nan=False),
        hops=st.integers(min_value=0, max_value=2),
    )
    def test_eq3_backward_bound_sound(self, data, gamma, hops):
        g, scores = data
        n = g.num_nodes
        distributed = [u for u in range(n) if scores[u] > 0 and scores[u] >= gamma]
        rest = max(
            (scores[u] for u in range(n) if u not in set(distributed)),
            default=0.0,
        )
        partial = [0.0] * n
        covered = [0] * n
        for u in distributed:
            for v in ref_ball(g, u, hops):
                partial[v] += scores[u]
                covered[v] += 1
        for v in range(n):
            exact = ref_aggregate(g, scores, v, hops, "sum")
            bound = backward_sum_bound(
                partial[v],
                covered[v],
                len(ref_ball(g, v, hops)),
                scores[v],
                rest,
                self_distributed=v in set(distributed),
            )
            assert bound >= exact - 1e-9

    @given(data=graph_and_scores(), hops=st.integers(min_value=0, max_value=3))
    def test_size_estimates_bracket_exact(self, data, hops):
        g, _scores = data
        upper = upper_estimate(g, hops)
        lower = lower_estimate(g, hops)
        for v in g.nodes():
            exact = len(ref_ball(g, v, hops))
            assert lower[v] <= exact <= upper[v]

    @given(
        data=graph_and_scores(directed=True),
        hops=st.integers(min_value=0, max_value=3),
    )
    def test_size_estimates_bracket_exact_directed(self, data, hops):
        g, _scores = data
        upper = upper_estimate(g, hops)
        lower = lower_estimate(g, hops)
        for v in g.nodes():
            exact = len(ref_ball(g, v, hops))
            assert lower[v] <= exact <= upper[v]

    @given(data=graph_and_scores(), hops=st.integers(min_value=1, max_value=2))
    def test_avg_bound_sound_with_estimates(self, data, hops):
        g, scores = data
        lower = lower_estimate(g, hops)
        for v in g.nodes():
            ball = ref_ball(g, v, hops)
            exact_avg = ref_aggregate(g, scores, v, hops, "avg")
            sum_upper = static_sum_bound(len(ball), scores[v])
            assert avg_bound(sum_upper, lower[v]) >= exact_avg - 1e-9


# ---------------------------------------------------------------------------
# 2. Algorithm agreement
# ---------------------------------------------------------------------------
class TestAlgorithmAgreement:
    @given(
        data=graph_and_scores(),
        k=st.integers(min_value=1, max_value=8),
        hops=st.integers(min_value=0, max_value=2),
        aggregate=st.sampled_from(["sum", "avg", "count"]),
        include_self=st.booleans(),
    )
    def test_three_lona_paths_agree(self, data, k, hops, aggregate, include_self):
        g, scores = data
        spec = QuerySpec(
            k=k, hops=hops, aggregate=aggregate, include_self=include_self
        )
        base = base_topk(g, scores, spec)
        fwd = forward_topk(g, scores, spec)
        bwd = backward_topk(g, scores, spec)
        assert rounded(fwd.values) == rounded(base.values)
        assert rounded(bwd.values) == rounded(base.values)

    @given(
        data=graph_and_scores(directed=True),
        k=st.integers(min_value=1, max_value=6),
        aggregate=st.sampled_from(["sum", "avg"]),
    )
    def test_directed_agreement(self, data, k, aggregate):
        g, scores = data
        spec = QuerySpec(k=k, hops=2, aggregate=aggregate)
        base = base_topk(g, scores, spec)
        fwd = forward_topk(g, scores, spec)
        bwd = backward_topk(g, scores, spec)
        assert rounded(fwd.values) == rounded(base.values)
        assert rounded(bwd.values) == rounded(base.values)

    @given(
        data=graph_and_scores(),
        k=st.integers(min_value=1, max_value=6),
        gamma=st.floats(min_value=0.0, max_value=1.1, allow_nan=False),
    )
    def test_backward_correct_for_any_gamma(self, data, k, gamma):
        g, scores = data
        spec = QuerySpec(k=k, hops=2)
        base = base_topk(g, scores, spec)
        bwd = backward_topk(g, scores, spec, gamma=gamma)
        assert rounded(bwd.values) == rounded(base.values)

    @given(
        data=graph_and_scores(),
        k=st.integers(min_value=1, max_value=6),
        exact_sizes=st.booleans(),
    )
    def test_backward_sizes_mode_irrelevant_to_answer(self, data, k, exact_sizes):
        g, scores = data
        spec = QuerySpec(k=k, hops=2)
        sizes = (
            NeighborhoodSizeIndex.exact(g, 2)
            if exact_sizes
            else NeighborhoodSizeIndex.estimated(g, 2)
        )
        base = base_topk(g, scores, spec)
        bwd = backward_topk(g, scores, spec, sizes=sizes)
        assert rounded(bwd.values) == rounded(base.values)

    @given(
        data=graph_and_scores(),
        k=st.integers(min_value=1, max_value=5),
        aggregate=st.sampled_from(["sum", "avg"]),
    )
    def test_relational_plan_agrees(self, data, k, aggregate):
        g, scores = data
        spec = QuerySpec(k=k, hops=2, aggregate=aggregate)
        base = base_topk(g, scores, spec)
        rel = relational_topk(g, scores, spec)
        assert rounded(rel.values) == rounded(base.values)

    @given(
        data=graph_and_scores(),
        k=st.integers(min_value=1, max_value=5),
        num_parts=st.integers(min_value=1, max_value=4),
    )
    def test_distributed_agrees(self, data, k, num_parts):
        g, scores = data
        spec = QuerySpec(k=k, hops=2)
        base = base_topk(g, scores, spec)
        engine = DistributedTopKEngine(
            g, scores, hops=2, num_parts=num_parts, partitioner="hash"
        )
        dist = engine.topk(k, "sum")
        assert rounded(dist.values) == rounded(base.values)


    @given(
        data=graph_and_scores(),
        k=st.integers(min_value=1, max_value=5),
        factor=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    )
    def test_weighted_backward_agrees_with_weighted_scan(self, data, k, factor):
        from repro.aggregates.weighted import exponential_decay
        from repro.core.weighted import weighted_backward_topk, weighted_base_topk

        g, scores = data
        profile = exponential_decay(factor)
        spec = QuerySpec(k=k, hops=2)
        expected = weighted_base_topk(g, scores, spec, profile)
        actual = weighted_backward_topk(g, scores, spec, profile)
        assert rounded(actual.values) == rounded(expected.values)

    @given(
        data=graph_and_scores(),
        ks=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4),
    )
    def test_batch_scan_agrees_with_individual_runs(self, data, ks):
        from repro.core.batch import BatchQuery, batch_base_topk
        from repro.relevance.base import ScoreVector

        g, scores = data
        vector = ScoreVector(scores)
        queries = [BatchQuery(vector, k=k) for k in ks]
        results = batch_base_topk(g, queries, hops=2)
        for k, result in zip(ks, results):
            expected = base_topk(g, scores, QuerySpec(k=k, hops=2))
            assert rounded(result.values) == rounded(expected.values)

    @given(
        data=graph_and_scores(),
        mutations=st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "score"]),
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=10_000),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            max_size=8,
        ),
    )
    def test_maintained_view_tracks_mutations(self, data, mutations):
        from repro.dynamic import DynamicGraph, MaintainedAggregateView

        g, scores = data
        graph = DynamicGraph.from_graph(g)
        view = MaintainedAggregateView(graph, scores, hops=2)
        n = graph.num_nodes
        for op, raw_u, raw_v, value in mutations:
            u, v = raw_u % n, raw_v % n
            if op == "add" and u != v and not graph.has_edge(u, v):
                view.add_edge(u, v)
            elif op == "remove" and graph.has_edge(u, v):
                view.remove_edge(u, v)
            elif op == "score":
                view.update_score(u, value)
        expected = base_topk(graph, view.scores, QuerySpec(k=n, hops=2))
        assert rounded(view.topk(n, "sum").values) == rounded(expected.values)


# ---------------------------------------------------------------------------
# 3. Traversal
# ---------------------------------------------------------------------------
class TestTraversalProperties:
    @given(
        data=graph_and_scores(),
        hops=st.integers(min_value=0, max_value=4),
        include_self=st.booleans(),
    )
    def test_hop_ball_matches_reference(self, data, hops, include_self):
        g, _scores = data
        for center in g.nodes():
            assert hop_ball(g, center, hops, include_self=include_self) == ref_ball(
                g, center, hops, include_self=include_self
            )

    @given(data=graph_and_scores(), hops=st.integers(min_value=0, max_value=3))
    def test_balls_monotone_in_hops(self, data, hops):
        g, _scores = data
        for center in g.nodes():
            smaller = hop_ball(g, center, hops)
            bigger = hop_ball(g, center, hops + 1)
            assert smaller <= bigger


# ---------------------------------------------------------------------------
# 4. Accumulator model
# ---------------------------------------------------------------------------
class TestAccumulatorModel:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_matches_sorted_model(self, values, k):
        acc = TopKAccumulator(k)
        for node, value in enumerate(values):
            acc.offer(node, value)
        assert acc.values() == sorted(values, reverse=True)[:k]

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_threshold_equals_kth_or_neg_inf(self, values, k):
        acc = TopKAccumulator(k)
        for node, value in enumerate(values):
            acc.offer(node, value)
        if len(values) < k:
            assert acc.threshold == -math.inf
        else:
            assert acc.threshold == sorted(values, reverse=True)[k - 1]
