"""The network front door: wire protocol, routing, admission, client parity.

Four layers, tested mostly through real sockets:

* **Protocol** — results, stream updates, requests, and errors round-trip
  losslessly through :mod:`repro.serving.protocol`; every admission
  rejection maps onto the right HTTP status.
* **Routing** — the replica router is deterministic, shape-affine (score
  and k do not move a request between lanes), and spreads distinct shapes.
* **Admission** — token buckets, tenant quotas, and cost-based shedding
  reject with *typed, coded* errors carrying ``retry_after``; rejections
  never leak quota slots.
* **Client parity** — :class:`repro.RemoteNetwork` answers are
  entry-for-entry identical to local ``Network`` answers across the base /
  forward / backward / weighted / batch routes, and remote errors are the
  same exception classes a local caller sees.
"""

from __future__ import annotations

import json
import math
import time

import pytest

import repro
from repro.core.deadline import active_deadline, check_deadline, deadline_scope
from repro.core.request import QueryRequest
from repro.core.results import QueryStats, StreamUpdate, TopKResult
from repro.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ProtocolError,
    QuotaExceededError,
    RateLimitedError,
    ReproError,
    ServiceOverloadedError,
    error_from_wire,
)
from repro.serving import (
    AdmissionController,
    QueryServer,
    ReplicaSet,
    ServerConfig,
    TokenBucket,
    decode_result,
    decode_update,
    encode_error,
    encode_result,
    encode_update,
    status_for,
)
from repro.session import Network
from tests.conftest import random_graph
from tests.test_service import quantized_scores


@pytest.fixture(scope="module")
def net():
    graph = random_graph(60, 0.12, seed=611)
    session = Network(graph, hops=2)
    # Dyadic scores (see test_service): aggregation order cannot produce
    # last-ULP drift, so remote answers — which may ride a coalesced shared
    # scan on a lane — must be entry-for-entry identical to local ones.
    session.add_scores("s", quantized_scores(60, seed=612, density=0.9))
    session.add_scores("t", quantized_scores(60, seed=613, density=0.4))
    yield session
    session.close()


@pytest.fixture(scope="module")
def server(net):
    srv = QueryServer(net, ServerConfig(replicas=3)).start()
    yield srv
    srv.close()


@pytest.fixture(scope="module")
def client(server):
    with repro.RemoteNetwork(server.url) as remote:
        yield remote


# ---------------------------------------------------------------------------
# Protocol round trips
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_result_round_trip_is_lossless(self):
        stats = QueryStats(
            algorithm="backward",
            aggregate="sum",
            backend="python",
            hops=2,
            k=3,
            elapsed_sec=0.25,
            nodes_evaluated=17,
            early_terminated=True,
        )
        stats.extra["gamma"] = 0.4
        result = TopKResult(entries=[(4, 2.5), (1, 1.0)], stats=stats)
        back = decode_result(json.loads(json.dumps(encode_result(result))))
        assert back.entries == result.entries
        assert back.stats.as_dict() == result.stats.as_dict()

    def test_result_decode_tolerates_unknown_stats_fields(self):
        payload = encode_result(TopKResult(entries=[(0, 1.0)], stats=QueryStats()))
        payload["stats"]["a_future_counter"] = 9
        assert decode_result(payload).entries == [(0, 1.0)]

    @pytest.mark.parametrize(
        "payload", [None, [], {"stats": {}}, {"entries": [["x", "y", "z"]]}]
    )
    def test_result_decode_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            decode_result(payload)

    def test_update_round_trip_including_infinite_bound(self):
        update = StreamUpdate(
            node=7,
            value=3.5,
            bound=-math.inf,
            entries=((7, 3.5), (2, 1.0)),
            evaluated=5,
            total=60,
            done=True,
            k=2,
        )
        back = decode_update(json.loads(json.dumps(encode_update(update)))
        )
        assert back == update

    def test_request_round_trip_preserves_identity_and_metadata(self):
        request = QueryRequest(
            k=5,
            score="s",
            aggregate="avg",
            algorithm="backward",
            candidates=(3, 1, 2),
            gamma=0.5,
            priority=7,
            deadline=1.5,
            pinned=frozenset({"gamma", "algorithm"}),
        )
        back = QueryRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert back == request
        assert back.priority == 7 and back.deadline == 1.5
        assert back.pinned == request.pinned
        assert back.canonical_key() == request.canonical_key()

    def test_request_decode_ignores_unknown_fields(self):
        payload = QueryRequest(k=3).to_dict()
        payload["a_future_knob"] = "x"
        assert QueryRequest.from_dict(payload) == QueryRequest(k=3)

    def test_request_decode_rejects_newer_schema(self):
        payload = QueryRequest(k=3).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ProtocolError):
            QueryRequest.from_dict(payload)

    def test_shape_key_ignores_score_and_k_only(self):
        a = QueryRequest(k=3, score="s")
        b = QueryRequest(k=9, score="t")
        c = QueryRequest(k=3, score="s", hops=1)
        assert a.shape_key() == b.shape_key()
        assert a.shape_key() != c.shape_key()

    def test_error_wire_round_trip_keeps_class_and_extras(self):
        original = ServiceOverloadedError(
            "too hot", retry_after=0.5, estimated_cost=12.0, cost_limit=3.0
        )
        payload = json.loads(json.dumps(encode_error(original)))
        back = error_from_wire(payload["error"])
        assert type(back) is ServiceOverloadedError
        assert back.retry_after == 0.5
        assert back.estimated_cost == 12.0
        assert str(back) == "too hot"

    def test_foreign_exception_degrades_to_base_code(self):
        payload = encode_error(RuntimeError("boom"))
        back = error_from_wire(payload["error"])
        assert type(back) is ReproError
        assert "boom" in str(back)

    @pytest.mark.parametrize(
        "error,status",
        [
            (RateLimitedError("x"), 429),
            (QuotaExceededError("x"), 429),
            (ServiceOverloadedError("x"), 429),
            (DeadlineExceededError("x"), 504),
            (ProtocolError("x"), 400),
            (InvalidParameterError("x"), 400),
            (RuntimeError("x"), 500),
        ],
    )
    def test_status_mapping(self, error, status):
        assert status_for(error) == status


# ---------------------------------------------------------------------------
# Replica routing
# ---------------------------------------------------------------------------
class TestRouting:
    def test_routing_is_shape_affine(self, net):
        replicas = ReplicaSet(net, repro.ServiceConfig(workers=0), replicas=4)
        try:
            base = replicas.route(QueryRequest(k=3, score="s"))[0]
            # Score and k are *not* shape: cache/coalescer locality demands
            # every variant of one shape lands on one lane.
            for request in (
                QueryRequest(k=50, score="s"),
                QueryRequest(k=3, score="t"),
                QueryRequest(k=7, score="t", aggregate="sum"),
            ):
                assert replicas.route(request)[0] == base
        finally:
            replicas.close()

    def test_distinct_shapes_spread_and_deterministically(self, net):
        first = ReplicaSet(net, repro.ServiceConfig(workers=0), replicas=4)
        second = ReplicaSet(net, repro.ServiceConfig(workers=0), replicas=4)
        try:
            shapes = [QueryRequest(k=3, hops=h) for h in range(8)]
            lanes_a = [first.route(r)[0] for r in shapes]
            lanes_b = [second.route(r)[0] for r in shapes]
            assert lanes_a == lanes_b  # crc32, not salted hash()
            assert len(set(lanes_a)) >= 2
        finally:
            first.close()
            second.close()

    def test_lanes_register_with_session_and_unregister_on_close(self, net):
        before = len(net._services())
        replicas = ReplicaSet(net, repro.ServiceConfig(workers=0), replicas=2)
        assert len(net._services()) == before + 2
        replicas.close()
        assert len(net._services()) == before


# ---------------------------------------------------------------------------
# Admission
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_token_bucket_burst_then_refuses_with_eta(self):
        bucket = TokenBucket(rate=0.001, burst=2)
        assert bucket.take() is None
        assert bucket.take() is None
        eta = bucket.take()
        assert eta is not None and eta > 0

    def test_rate_limit_is_per_tenant(self):
        controller = AdmissionController(rate=0.001, burst=1)
        controller.admit(QueryRequest(k=1), tenant="a")()
        with pytest.raises(RateLimitedError) as info:
            controller.admit(QueryRequest(k=1), tenant="a")
        assert info.value.retry_after > 0
        controller.admit(QueryRequest(k=1), tenant="b")()  # unaffected

    def test_quota_bounds_inflight_and_release_is_idempotent(self):
        controller = AdmissionController(quota=1)
        release = controller.admit(QueryRequest(k=1), tenant="a")
        with pytest.raises(QuotaExceededError):
            controller.admit(QueryRequest(k=1), tenant="a")
        release()
        release()  # double release must not mint a second slot
        second = controller.admit(QueryRequest(k=1), tenant="a")
        with pytest.raises(QuotaExceededError):
            controller.admit(QueryRequest(k=1), tenant="a")
        second()

    def test_shedding_admits_cheap_rejects_expensive(self):
        controller = AdmissionController(
            cost_of=lambda request: float(request.k),
            load_of=lambda: 0.9,
            shed_watermark=0.5,
            cost_limit=100.0,
        )
        # budget = 100 * (1 - 0.9) / (1 - 0.5) = 20
        controller.admit(QueryRequest(k=10))()
        with pytest.raises(ServiceOverloadedError) as info:
            controller.admit(QueryRequest(k=30))
        assert info.value.estimated_cost == 30.0
        assert info.value.cost_limit == pytest.approx(20.0)
        assert info.value.retry_after > 0
        assert controller.counters["shed"] == 1

    def test_shedding_prices_backend_fixed_cost(self):
        # Satellite of the cluster backend: the shed comparison adds the
        # backend's fixed overhead, so a query that passes in-process is
        # rejected when routed to a backend whose dispatch tax alone
        # overflows the budget.
        controller = AdmissionController(
            cost_of=lambda request: float(request.k),
            fixed_cost_of=lambda request: (
                15.0 if request.backend == "cluster" else 0.0
            ),
            load_of=lambda: 0.9,
            shed_watermark=0.5,
            cost_limit=100.0,
        )
        # budget = 100 * (1 - 0.9) / (1 - 0.5) = 20; k=10 in-process passes
        controller.admit(QueryRequest(k=10))()
        # ... but the same k pinned to cluster pays 10 + 15 = 25 > 20.
        with pytest.raises(ServiceOverloadedError) as info:
            controller.admit(QueryRequest(k=10, backend="cluster"))
        assert info.value.estimated_cost == 25.0
        assert controller.counters["shed"] == 1

    def test_no_shedding_below_watermark(self):
        controller = AdmissionController(
            cost_of=lambda request: 1e9,
            load_of=lambda: 0.4,
            shed_watermark=0.5,
            cost_limit=1.0,
        )
        controller.admit(QueryRequest(k=1))()

    def test_rejections_do_not_leak_quota_slots(self):
        controller = AdmissionController(rate=0.001, burst=1, quota=5)
        controller.admit(QueryRequest(k=1), tenant="a")
        for _ in range(3):
            with pytest.raises(RateLimitedError):
                controller.admit(QueryRequest(k=1), tenant="a")
        assert controller.stats()["tenants_inflight"] == {"a": 1}


# ---------------------------------------------------------------------------
# Cooperative deadlines inside execution
# ---------------------------------------------------------------------------
class TestExecutionDeadlines:
    def test_scope_nests_and_restores(self):
        assert active_deadline() is None
        with deadline_scope(123.0):
            assert active_deadline() == 123.0
            with deadline_scope(456.0):
                assert active_deadline() == 456.0
            assert active_deadline() == 123.0
        assert active_deadline() is None

    def test_check_raises_only_past_deadline(self):
        with deadline_scope(time.monotonic() + 60):
            check_deadline()
        with deadline_scope(time.monotonic() - 1):
            with pytest.raises(DeadlineExceededError):
                check_deadline()

    @pytest.mark.parametrize("backend", ["python", "auto"])
    @pytest.mark.parametrize("algorithm", ["base", "forward", "backward"])
    def test_kernels_abort_mid_execution(self, net, algorithm, backend):
        # An already-expired scope: the kernel's first cooperative check
        # fires, proving enforcement happens *during* execution, not just
        # while queued.
        from repro.core import executor

        with deadline_scope(time.monotonic() - 1):
            with pytest.raises(DeadlineExceededError):
                executor.execute(
                    net._ctx,
                    net.scores_of("s"),
                    QueryRequest(k=3, algorithm=algorithm, backend=backend),
                )

    def test_deadline_fails_query_through_the_service(self, net):
        handle = net.query("s").limit(3).deadline(1e-6).submit(cached=False)
        with pytest.raises(DeadlineExceededError):
            handle.result(timeout=10)


# ---------------------------------------------------------------------------
# Server configuration
# ---------------------------------------------------------------------------
class TestServerConfig:
    def test_nested_sections_coerce_from_mappings(self):
        cfg = ServerConfig.from_options(
            {
                "replicas": 4,
                "service": {"workers": 2, "coalesce_limit": 8},
                "parallel": {"workers": 2, "partitioner": "hash"},
            }
        )
        assert cfg.replicas == 4
        assert isinstance(cfg.service, repro.ServiceConfig)
        assert cfg.service.workers == 2
        assert isinstance(cfg.parallel, repro.ParallelConfig)
        assert cfg.parallel.partitioner == "hash"

    def test_unknown_keys_rejected_at_every_level(self):
        with pytest.raises(InvalidParameterError, match="replica_count"):
            ServerConfig.from_options({"replica_count": 3})
        with pytest.raises(InvalidParameterError, match="wrokers"):
            ServerConfig.from_options({"service": {"wrokers": 2}})

    def test_config_file_round_trip(self, tmp_path):
        path = tmp_path / "server.json"
        path.write_text(
            json.dumps(
                {
                    "port": 0,
                    "replicas": 2,
                    "quota": 8,
                    "service": {"workers": 1},
                }
            )
        )
        cfg = ServerConfig.from_file(path)
        assert cfg.replicas == 2 and cfg.quota == 8
        assert cfg.service.workers == 1

    def test_config_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ProtocolError):
            ServerConfig.from_file(path)


# ---------------------------------------------------------------------------
# Client parity: remote answers == local answers
# ---------------------------------------------------------------------------
class TestClientParity:
    @pytest.mark.parametrize("algorithm", ["base", "forward", "backward", "auto"])
    def test_algorithms_entry_for_entry(self, net, client, algorithm):
        local = net.query("s").limit(5).algorithm(algorithm).run()
        remote = client.query("s").limit(5).algorithm(algorithm).run()
        assert remote.entries == local.entries
        assert remote.stats.algorithm == local.stats.algorithm

    @pytest.mark.parametrize("aggregate", ["sum", "avg", "count", "max", "min"])
    def test_aggregates_entry_for_entry(self, net, client, aggregate):
        local = net.topk("t", 4, aggregate)
        remote = client.topk("t", 4, aggregate)
        assert remote.entries == local.entries

    def test_refinements_cross_the_wire(self, net, client):
        nodes = [0, 3, 5, 7, 11, 13]
        local = net.query("s").limit(3).where(nodes).run()
        remote = client.query("s").limit(3).where(nodes).run()
        assert remote.entries == local.entries
        local = net.query("s").limit(3).algorithm("backward").gamma(0.5).run()
        remote = client.query("s").limit(3).algorithm("backward").gamma(0.5).run()
        assert remote.entries == local.entries

    def test_weighted_entry_for_entry(self, net, client):
        local = net.topk_weighted("s", 4)
        remote = client.topk_weighted("s", 4)
        assert remote.entries == local.entries

    def test_batch_entry_for_entry(self, net, client):
        # Local batch tuples take score *vectors*; remote tuples take score
        # *names* (the wire has no vectors).  Builders are the shared form.
        local = net.batch(
            [
                net.query("s").limit(3),
                net.query("t").limit(4).aggregate("count"),
                net.query("s").limit(2).aggregate("avg"),
            ]
        )
        remote = client.batch([("s", 3), ("t", 4, "count"), ("s", 2, "avg")])
        assert [r.entries for r in remote] == [r.entries for r in local.results]

    def test_submit_poll_result(self, client, net):
        handle = client.query("s").limit(4).submit()
        remote = handle.result(timeout=30)
        assert handle.done() and handle.state == "done"
        assert remote.entries == net.query("s").limit(4).run().entries

    def test_stream_refines_to_the_final_answer(self, net, client):
        updates = list(client.query("s").limit(3).stream())
        assert updates, "stream produced no updates"
        assert updates[-1].done
        local = net.query("s").limit(3).run()
        assert list(updates[-1].entries) == local.entries

    def test_remote_validation_error_is_typed(self, client):
        with pytest.raises(InvalidParameterError):
            client.query("s").limit(0).run()

    def test_unknown_score_is_typed(self, client):
        with pytest.raises(ReproError, match="no_such_score"):
            client.topk("no_such_score", 3)

    def test_unknown_query_id_is_protocol_error(self, client):
        with pytest.raises(ProtocolError):
            client._call("GET", "/v1/result/q999999")

    def test_health_and_stats_surfaces(self, client, server, net):
        health = client.health()
        assert health["ok"] and health["protocol"] == 1
        assert health["graph"]["nodes"] == net.graph.num_nodes
        assert client.score_names() == net.score_names()
        stats = client.stats()
        assert stats["admission"]["admitted"] > 0
        assert stats["replicas"]["replicas"] == 3

    def test_cancel_pending_remote_query(self, net):
        # A dedicated zero-worker... not possible remotely; instead submit
        # against a quota-free server and cancel immediately — the handle
        # must end in a typed cancelled/done state, never hang.
        handle_server = QueryServer(net, replicas=1).start()
        try:
            with repro.RemoteNetwork(handle_server.url) as remote:
                handle = remote.query("s").limit(3).submit()
                handle.cancel()  # may race completion; both ends are valid
                assert handle.state in {"pending", "running", "cancelled", "done"}
        finally:
            handle_server.close()


# ---------------------------------------------------------------------------
# Admission over the wire
# ---------------------------------------------------------------------------
class TestWireAdmission:
    def test_rate_limited_client_sees_typed_retry_after(self, net):
        server = QueryServer(
            net, replicas=1, tenant_rate=0.001, tenant_burst=1
        ).start()
        try:
            with repro.RemoteNetwork(server.url, tenant="hot") as remote:
                remote.topk("s", 2)
                with pytest.raises(RateLimitedError) as info:
                    remote.topk("s", 2)
                assert info.value.retry_after > 0
            with repro.RemoteNetwork(server.url, tenant="calm") as other:
                other.topk("s", 2)  # different tenant, own bucket
        finally:
            server.close()

    def test_quota_zero_rejects_with_typed_error(self, net):
        server = QueryServer(net, replicas=1, quota=0).start()
        try:
            with repro.RemoteNetwork(server.url) as remote:
                with pytest.raises(QuotaExceededError):
                    remote.topk("s", 2)
        finally:
            server.close()

    def test_shedding_over_the_wire_is_cost_selective(self, net):
        server = QueryServer(
            net, replicas=1, shed_watermark=0.5, cost_limit=1e-9
        ).start()
        try:
            # retry=None: the default policy would re-submit each shed
            # request (retry_after here is within its patience), turning
            # the exact admission-counter arithmetic below into a moving
            # target.
            with repro.RemoteNetwork(server.url, retry=None) as remote:
                remote.topk("s", 2)  # idle: below watermark, no shedding
                # Force the load reading past the watermark: any nonzero
                # planner cost now exceeds the vanishing budget.
                server.admission._load_of = lambda: 0.9
                with pytest.raises(ServiceOverloadedError) as info:
                    remote.topk("s", 2)
                assert info.value.estimated_cost is not None
                assert info.value.retry_after > 0
                assert server.admission.counters["shed"] == 1
        finally:
            server.close()


# ---------------------------------------------------------------------------
# Concurrent remote clients (CI serving-smoke sizes this up via env)
# ---------------------------------------------------------------------------
class TestConcurrentClients:
    def test_many_clients_all_get_local_answers(self, net, server):
        import os
        import threading

        clients = int(os.environ.get("REPRO_SERVING_CLIENTS", "4"))
        rounds = int(os.environ.get("REPRO_SERVING_ROUNDS", "3"))
        expected = {
            ("s", 5): net.query("s").limit(5).run().entries,
            ("t", 3): net.query("t").limit(3).run().entries,
            ("s", 2): net.query("s").limit(2).aggregate("avg").run().entries,
        }
        failures = []

        def worker(index: int) -> None:
            try:
                with repro.RemoteNetwork(server.url, tenant=f"c{index}") as remote:
                    for _ in range(rounds):
                        got = remote.query("s").limit(5).run().entries
                        assert got == expected[("s", 5)], got
                        got = remote.query("t").limit(3).run().entries
                        assert got == expected[("t", 3)], got
                        got = (
                            remote.query("s").limit(2).aggregate("avg")
                            .run().entries
                        )
                        assert got == expected[("s", 2)], got
            except Exception as exc:  # surfaced below with the thread index
                failures.append((index, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
