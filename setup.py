"""Legacy setup shim.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments without the `wheel` package (pip falls back to
`setup.py develop` when pyproject.toml has no [build-system] table).
All metadata lives in pyproject.toml; this file only locates packages.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LONA: top-k neighborhood aggregation queries over large networks "
        "(reproduction of Yan et al., ICDE 2010)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={
        # Everything runs dependency-free on the python backend; numpy
        # unlocks the vectorized/parallel/cluster tiers and numba the
        # compiled kernel tier (backend="native").
        "numpy": ["numpy"],
        "native": ["numpy", "numba"],
    },
)
